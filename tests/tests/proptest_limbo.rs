//! Property-based tests (proptest) for the limbo bag's retire-coalescing
//! staging layer (ISSUE 9).
//!
//! NBR+'s prefix bookmark and the interval schemes' era sweeps both assume
//! the limbo bag yields records **in retire order** — the staging buffer in
//! front of the segments must be a pure batching optimization, invisible to
//! everything downstream. These properties pin that down against arbitrary
//! batch capacities and arbitrary interleavings of stages and drains:
//!
//! 1. `drain()` returns every record exactly once, in exact retire order,
//!    no matter where the batch boundaries fell;
//! 2. `len()` always counts staged + flushed records (the watermark trigger
//!    reads it, so an undercount would defer scans unboundedly);
//! 3. `stage()` reports a flush exactly at batch-capacity boundaries (and on
//!    every record when coalescing is off, i.e. cap ≤ 1).

use proptest::collection::vec;
use proptest::prelude::*;
use smr_common::recycle::alloc_node_raw;
use smr_common::{LimboBag, NodeHeader, Retired, RETIRE_BATCH_CAP};

struct Node {
    header: NodeHeader,
    #[allow(dead_code)]
    key: u64,
}
smr_common::impl_smr_node!(Node);

/// A freshly allocated record stamped with `era` as its retire era; the
/// stamp doubles as the record's sequence number in the properties below.
fn retired(era: u64) -> Retired {
    let raw = alloc_node_raw(Node {
        header: NodeHeader::new(),
        key: era,
    });
    // SAFETY: `raw` was just allocated with the node-heap ABI and is not
    // linked anywhere; it is retired exactly once.
    unsafe { Retired::new(raw, era) }
}

fn reclaim_all(records: Vec<Retired>) {
    for r in records {
        // SAFETY: the record left the bag and no thread ever saw the node.
        unsafe { r.reclaim() };
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// One uninterrupted run of stages followed by a single drain: output
    /// order equals retire order for every batch capacity, including the
    /// degenerate cap ≤ 1 (coalescing disabled) and caps larger than the
    /// default `RETIRE_BATCH_CAP`.
    #[test]
    fn drain_preserves_retire_order(
        cap in 0usize..=2 * RETIRE_BATCH_CAP,
        n in 0usize..96,
    ) {
        let mut bag = LimboBag::with_batch(cap);
        for i in 0..n {
            bag.stage(retired(i as u64));
            assert_eq!(bag.len(), i + 1, "len must count staged records");
        }
        let out = bag.drain();
        let eras: Vec<u64> = out.iter().map(|r| r.retire_era()).collect();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(eras, expected, "cap {cap}: drain must preserve retire order");
        assert!(bag.is_empty());
        reclaim_all(out);
    }

    /// Arbitrary interleaving of stages and mid-sequence drains: the
    /// concatenation of all drained outputs is still the exact retire
    /// sequence — a drain may cut a batch anywhere without reordering or
    /// dropping the staged suffix.
    #[test]
    fn interleaved_drains_concatenate_to_the_retire_sequence(
        cap in 0usize..=RETIRE_BATCH_CAP + 2,
        // 1 = stage the next record, 0 = drain the bag
        script in vec(0u8..2, 0..128),
    ) {
        let mut bag = LimboBag::with_batch(cap);
        let mut next_era = 0u64;
        let mut collected = Vec::new();
        for do_stage in script {
            if do_stage == 1 {
                bag.stage(retired(next_era));
                next_era += 1;
            } else {
                collected.extend(bag.drain());
                assert_eq!(bag.len(), 0, "drain must empty the bag, stage included");
            }
        }
        collected.extend(bag.drain());
        let eras: Vec<u64> = collected.iter().map(|r| r.retire_era()).collect();
        let expected: Vec<u64> = (0..next_era).collect();
        assert_eq!(
            eras, expected,
            "cap {cap}: drains must neither reorder, drop nor duplicate records"
        );
        reclaim_all(collected);
    }

    /// The flush signal drives every watermark check in the schemes, so its
    /// cadence is part of the contract: with coalescing on, `stage` reports
    /// a flush exactly when the staged count reaches the capacity; with cap
    /// ≤ 1 every stage is an immediate flush.
    #[test]
    fn flush_signal_fires_exactly_at_batch_boundaries(
        cap in 0usize..=RETIRE_BATCH_CAP + 2,
        n in 1usize..96,
    ) {
        let mut bag = LimboBag::with_batch(cap);
        for i in 0..n {
            let flushed = bag.stage(retired(i as u64));
            let expected = if cap <= 1 { true } else { (i + 1) % cap == 0 };
            assert_eq!(
                flushed, expected,
                "cap {cap}: flush signal wrong after {} stages",
                i + 1
            );
            assert_eq!(bag.staged_len(), if cap <= 1 { 0 } else { (i + 1) % cap });
        }
        reclaim_all(bag.drain());
    }
}
