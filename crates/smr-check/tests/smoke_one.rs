//! Minimal integration smoke: one schedule per scheme on the Harris list,
//! fixed seed. The full seeded sweep lives in `explore_matrix.rs`; this test
//! exists so a broken mirror/hook fails in seconds with a tight repro.

use smr_check::{replay_banner, run_matrix_one, Params, Scheme, Strategy, Structure};

#[test]
fn one_schedule_per_scheme_list() {
    let params = Params::default();
    for scheme in Scheme::all() {
        let strategy = Strategy::Random { switch_one_in: 3 };
        let seed = 0xC0FFEE;
        let report = run_matrix_one(scheme, Structure::List, strategy, seed, &params);
        assert!(
            report.clean(),
            "{}",
            replay_banner(scheme.label(), "harris-list", strategy, seed, &report)
        );
    }
}
