//! DEBRA-style epoch-based reclamation (Brown, PODC 2015).
//!
//! DEBRA is, per the paper, "to the best of our knowledge the fastest EBR
//! algorithm" and the primary competitor NBR+ is measured against. The scheme:
//!
//! * A global epoch counter.
//! * Each thread announces `(epoch, active)` when it begins an operation and
//!   clears the active bit when it ends one.
//! * Records retired while the thread's local epoch is `e` go into the bag for
//!   epoch `e`; once the global epoch has advanced to `e + 2` every operation
//!   that could have seen those records has finished, so the bag is freed.
//! * The global epoch advances only when every *active* thread has announced
//!   the current epoch — so a single stalled or delayed thread stops all
//!   reclamation (the *delayed thread vulnerability* discussed in Section 7 and
//!   demonstrated in experiment E2).
//!
//! Epoch-advance attempts are amortized over `epoch_freq` operations, mirroring
//! DEBRA's amortized incremental scanning.

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState, Shared,
    Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

const ACTIVE_BIT: u64 = 1;
const QUIESCENT: u64 = u64::MAX;

/// Number of epoch bags per thread (records retired in epoch `e` are freed
/// once the thread observes epoch `e + 2`).
const BAGS: usize = 3;

struct EpochSlot {
    /// `epoch << 1 | active`, or `QUIESCENT` when the thread is between
    /// operations.
    announced: AtomicU64,
}

/// Per-thread context for [`Debra`].
pub struct DebraCtx {
    tid: usize,
    bags: [LimboBag; BAGS],
    bag_epochs: [u64; BAGS],
    local_epoch: u64,
    ops_since_advance: usize,
    scan: ScanState,
    mag: Magazine,
    stats: ThreadStats,
}

/// The DEBRA epoch-based reclaimer.
pub struct Debra {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    epoch: EraClock,
    slots: Vec<CachePadded<EpochSlot>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
}

impl Debra {
    fn announce(&self, tid: usize, epoch: u64, active: bool) {
        if active {
            self.slots[tid]
                .announced
                .store((epoch << 1) | ACTIVE_BIT, Ordering::SeqCst);
        } else {
            // Going quiescent only *permits* more reclamation, so Release
            // suffices: the finished operation's reads stay ordered before
            // the store, and the next begin_op re-announces active with
            // SeqCst before any shared read.
            self.slots[tid]
                .announced
                .store(QUIESCENT, Ordering::Release);
        }
    }

    /// Attempts to advance the global epoch: every active (non-quiescent)
    /// thread must have announced the current epoch. Single-fence scan (see
    /// DESIGN.md): one SeqCst fence, then Acquire loads — a stale read only
    /// under-reports a thread's progress and blocks the advance
    /// (conservative).
    fn try_advance(&self, ctx: &mut DebraCtx) {
        fence(Ordering::SeqCst);
        let current = self.epoch.now();
        for tid in self.registry.active_tids() {
            let a = self.slots[tid].announced.load(Ordering::Acquire);
            if a == QUIESCENT {
                continue;
            }
            let announced_epoch = a >> 1;
            if announced_epoch < current {
                return; // someone is still executing in an older epoch
            }
        }
        if self.epoch.advance_from(current) {
            ctx.stats.epoch_advances += 1;
            trace::emit(ctx.tid, TraceKind::EraAdvance, current + 1, 0);
        }
    }

    /// Called whenever the thread observes a (possibly) new global epoch:
    /// frees every bag whose epoch is at least two behind and retargets the
    /// current bag.
    fn sync_local_epoch(&self, ctx: &mut DebraCtx, observed: u64) {
        if observed == ctx.local_epoch {
            return;
        }
        ctx.local_epoch = observed;
        let reclaimable =
            (0..BAGS).any(|i| !ctx.bags[i].is_empty() && ctx.bag_epochs[i] + 2 <= observed);
        let sw = if reclaimable {
            let limbo: usize = ctx.bags.iter().map(|b| b.len()).sum();
            trace::emit(ctx.tid, TraceKind::ScanBegin, limbo as u64, 0);
            telemetry::stopwatch_if(self.config.telemetry)
        } else {
            None
        };
        let frees_before = ctx.stats.frees;
        for i in 0..BAGS {
            if !ctx.bags[i].is_empty() && ctx.bag_epochs[i] + 2 <= observed {
                // SAFETY: the global epoch advanced at least twice since every
                // record in this bag was retired; every operation that could
                // have held a reference has completed (classic EBR argument).
                unsafe { ctx.bags[i].reclaim_all(&mut ctx.stats, &mut ctx.mag) };
            }
        }
        if reclaimable {
            trace::emit(
                ctx.tid,
                TraceKind::ScanEnd,
                ctx.stats.frees - frees_before,
                0,
            );
            if let Some(sw) = sw {
                ctx.stats.tel.scan.record(sw.elapsed_ns());
            }
        }
        // Point the "current" bag at the slot for the new epoch; it is either
        // empty or was just reclaimed above.
        let idx = (observed as usize) % BAGS;
        if ctx.bags[idx].is_empty() {
            ctx.bag_epochs[idx] = observed;
        }
        // Survivor adoption: departed threads' orphans join the current
        // bag and wait two further advances like any fresh retire
        // (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
            let idx = (observed as usize) % BAGS;
            for r in orphaned {
                ctx.bags[idx].push(r);
            }
        }
    }

    fn current_bag_index(ctx: &DebraCtx) -> usize {
        (ctx.local_epoch as usize) % BAGS
    }
}

impl Smr for Debra {
    type ThreadCtx = DebraCtx;

    const NAME: &'static str = "DEBRA";

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(EpochSlot {
                    announced: AtomicU64::new(QUIESCENT),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            epoch: EraClock::new(),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> DebraCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.slots[tid].announced.store(QUIESCENT, Ordering::SeqCst);
        let now = self.epoch.now();
        let cap = self.config.retire_batch_cap();
        DebraCtx {
            tid,
            bags: [
                LimboBag::with_batch(cap),
                LimboBag::with_batch(cap),
                LimboBag::with_batch(cap),
            ],
            bag_epochs: [now; BAGS],
            local_epoch: now,
            ops_since_advance: 0,
            scan: ScanState::new(),
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut DebraCtx) {
        smr_common::check::unpin_epoch(ctx.tid);
        self.announce(ctx.tid, 0, false);
        let mut leftovers = Vec::new();
        for bag in ctx.bags.iter_mut() {
            leftovers.extend(bag.drain());
        }
        self.orphans.adopt(leftovers);
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut DebraCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_op(&self, ctx: &mut DebraCtx) {
        let e = self.epoch.now();
        self.announce(ctx.tid, e, true);
        // Oracle: active at epoch `e` — no record retired at epoch ≥ e may
        // be freed while this op runs (the bag rule frees at retire + 2,
        // and the advance to retire + 2 needs every active announcement to
        // be past the retire epoch).
        smr_common::check::pin_epoch(ctx.tid, e);
        self.sync_local_epoch(ctx, e);
        ctx.ops_since_advance += 1;
        if ctx.ops_since_advance >= self.config.epoch_freq {
            ctx.ops_since_advance = 0;
            self.try_advance(ctx);
            // The epoch-paced advance is DEBRA's regular scan: restart the
            // heartbeat window so the op-exit trigger only fires when this
            // path has been starved (ScanState::tick_op's pacing contract).
            ctx.scan.note_scan();
        }
    }

    #[inline]
    fn end_op(&self, ctx: &mut DebraCtx) {
        // Unpin before going quiescent — and before the scans below, which
        // may free this thread's own current-epoch retires.
        smr_common::check::unpin_epoch(ctx.tid);
        self.announce(ctx.tid, 0, false);
        let pending = self.limbo_len(ctx);
        if ctx.scan.tick_op(&self.policy, pending) {
            ctx.stats.heartbeat_scans += 1;
            ctx.scan.note_scan();
            // Heartbeat: nudge the epoch forward and free every bag two
            // grace periods old, so a slow-retiring thread still returns
            // memory between watermark-paced advances.
            self.try_advance(ctx);
            self.sync_local_epoch(ctx, self.epoch.now());
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut DebraCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Stamp with the epoch read *now*, not the one announced at
        // `begin_op`: the global epoch can advance mid-operation (this
        // thread's announcement of `e` only blocks the advance past `e+1`),
        // and a reader that began in epoch `e+1` before this record was
        // unlinked may hold a pointer to it. Bagging under the stale
        // `begin_op` epoch `e` would free at `e+2` — exactly when that
        // reader can still be active. Re-reading makes the classic argument
        // go through: the `e'+1 → e'+2` advance (with `e'` the retire-time
        // epoch) requires every active thread to have begun after the epoch
        // reached `e'+1`, which is after this retire, which is after the
        // unlink. Found by smr-check (use-after-free/deref on the Harris
        // list; replay: strategy=random/1 within the seeded sweep).
        self.sync_local_epoch(ctx, self.epoch.now());
        let idx = Self::current_bag_index(ctx);
        // Retire coalescing: the record stages in the current epoch's bag
        // (stamped before staging, so a mid-batch epoch advance retargets
        // later retires without disturbing the staged ones); the peak-limbo
        // bookkeeping is amortized to batch flushes.
        let flushed = ctx.bags[idx].stage(Retired::new(ptr.as_raw(), ctx.local_epoch));
        ctx.stats.retires += 1;
        if flushed {
            let total: usize = ctx.bags.iter().map(|b| b.len()).sum();
            ctx.stats.observe_limbo(total);
        }
    }

    #[inline]
    fn validation_stamp(&self, ctx: &mut DebraCtx) -> Option<u64> {
        // Sound for DEBRA: `local_epoch` re-syncs to the global epoch at
        // every `begin_op`, so stamp equality between two operations means
        // the global epoch never advanced in between — and a record retired
        // at epoch `e` is only freed once the global epoch reaches `e + 2`.
        if self.config.memo {
            Some(ctx.local_epoch)
        } else {
            None
        }
    }

    fn flush(&self, ctx: &mut DebraCtx) {
        // Drive the epoch forward (as far as other threads allow) and free
        // whatever becomes safe.
        for _ in 0..3 {
            self.try_advance(ctx);
            let e = self.epoch.now();
            self.sync_local_epoch(ctx, e);
        }
    }

    fn thread_stats(&self, ctx: &DebraCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut DebraCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &DebraCtx) -> usize {
        ctx.bags.iter().map(|b| b.len()).sum()
    }
}

impl Drop for Debra {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn retire_one(smr: &Debra, ctx: &mut DebraCtx, key: u64) {
        let p = smr.alloc(
            ctx,
            Node {
                header: NodeHeader::new(),
                key,
            },
        );
        unsafe { smr.retire(ctx, p) };
    }

    #[test]
    fn single_thread_reclaims_after_epoch_advances() {
        let smr = Debra::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..100 {
            smr.begin_op(&mut ctx);
            retire_one(&smr, &mut ctx, i);
            smr.end_op(&mut ctx);
        }
        smr.flush(&mut ctx);
        let s = smr.thread_stats(&ctx);
        assert!(s.frees > 0, "epochs must advance and free old bags");
        assert!(s.epoch_advances > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn stalled_thread_blocks_reclamation() {
        // The delayed-thread vulnerability: a thread stuck inside an operation
        // pins the epoch and no bag can ever be freed (contrast with NBR's
        // bounded garbage — experiment E2).
        let smr = Debra::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut stalled = smr.register(1);
        smr.begin_op(&mut stalled); // never ends its operation

        for i in 0..200 {
            smr.begin_op(&mut worker);
            retire_one(&smr, &mut worker, i);
            smr.end_op(&mut worker);
        }
        smr.flush(&mut worker);
        assert_eq!(
            smr.thread_stats(&worker).frees,
            0,
            "a stalled thread must pin every epoch bag"
        );
        assert_eq!(smr.limbo_len(&worker), 200);

        // Once the stalled thread finishes, reclamation resumes.
        smr.end_op(&mut stalled);
        for i in 0..50 {
            smr.begin_op(&mut worker);
            retire_one(&smr, &mut worker, i);
            smr.end_op(&mut worker);
        }
        smr.flush(&mut worker);
        assert!(smr.thread_stats(&worker).frees > 0);

        smr.unregister(&mut stalled);
        smr.unregister(&mut worker);
    }

    #[test]
    fn quiescent_threads_do_not_block_advance() {
        let smr = Debra::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let _idle = smr.register(1); // registered but never begins an op
        for i in 0..100 {
            smr.begin_op(&mut worker);
            retire_one(&smr, &mut worker, i);
            smr.end_op(&mut worker);
        }
        smr.flush(&mut worker);
        assert!(smr.thread_stats(&worker).frees > 0);
        smr.unregister(&mut worker);
    }

    #[test]
    fn records_survive_until_two_epochs_pass() {
        let smr = Debra::new(SmrConfig::for_tests().with_epoch_freqs(1, 1));
        let mut ctx = smr.register(0);
        smr.begin_op(&mut ctx);
        retire_one(&smr, &mut ctx, 1);
        smr.end_op(&mut ctx);
        // Immediately after retiring, nothing can have been freed.
        assert_eq!(smr.thread_stats(&ctx).frees, 0);
        smr.flush(&mut ctx);
        assert_eq!(smr.thread_stats(&ctx).frees, 1);
        smr.unregister(&mut ctx);
    }
}
