//! The seeded exploration sweep: every scheme × structure cell runs a batch
//! of deterministic schedules (a mix of random-switch and PCT strategies)
//! and must come out oracle-clean.
//!
//! Knobs (environment):
//!
//! * `SMR_CHECK_SCHEDULES` — schedules per cell (default 100; the 24-cell
//!   matrix then runs 2400 schedules).
//! * `SMR_CHECK_SEED` — base seed (default `0x5EED_CAFE`; accepts `0x...`).
//!   To replay a reported failure, set this to the printed seed and
//!   `SMR_CHECK_SCHEDULES=1`.
//! * `SMR_CHECK_CELL_SECS` — wall-clock budget per cell (default 30s);
//!   a cell that runs out of time stops early and reports how far it got
//!   rather than blowing the CI budget.

use smr_check::{replay_banner, run_matrix_one, Params, Scheme, SplitMix64, Strategy, Structure};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v} is not a u64"))
        }
        Err(_) => default,
    }
}

/// The strategy rotation: frequent and rare random switching plus shallow
/// and deep PCT. Different strategies expose different bug shapes — dense
/// switching finds short races, PCT finds low-preemption-count windows that
/// uniform switching almost never hits.
fn strategy_for(i: u64) -> Strategy {
    match i % 5 {
        0 => Strategy::Random { switch_one_in: 1 },
        1 => Strategy::Random { switch_one_in: 3 },
        2 => Strategy::Random { switch_one_in: 8 },
        3 => Strategy::Pct { depth: 3 },
        _ => Strategy::Pct { depth: 10 },
    }
}

fn sweep_cell(scheme: Scheme, structure: Structure) {
    let schedules = env_u64("SMR_CHECK_SCHEDULES", 100);
    let base_seed = env_u64("SMR_CHECK_SEED", 0x5EED_CAFE);
    let cell_budget = Duration::from_secs(env_u64("SMR_CHECK_CELL_SECS", 30));
    let params = Params::default();

    let start = Instant::now();
    let mut seeds = SplitMix64(base_seed ^ ((scheme as u64) << 8) ^ structure as u64);
    let mut ran = 0u64;
    let mut exhausted = 0u64;
    for i in 0..schedules {
        if start.elapsed() > cell_budget {
            break;
        }
        let seed = seeds.next_u64();
        let strategy = strategy_for(i);
        let report = run_matrix_one(scheme, structure, strategy, seed, &params);
        assert!(
            report.clean(),
            "{}",
            replay_banner(scheme.label(), structure.label(), strategy, seed, &report)
        );
        ran += 1;
        exhausted += report.budget_exhausted as u64;
    }
    println!(
        "{}/{}: {ran}/{schedules} schedules clean in {:?} ({exhausted} budget-exhausted)",
        scheme.label(),
        structure.label(),
        start.elapsed()
    );
    assert!(ran > 0, "cell ran no schedules at all");
    // A sweep that mostly times out explores almost nothing deterministically.
    assert!(
        exhausted * 2 <= ran,
        "{}/{}: {exhausted}/{ran} schedules exhausted the step budget",
        scheme.label(),
        structure.label()
    );
}

macro_rules! sweep {
    ($name:ident, $scheme:ident, $structure:ident) => {
        #[test]
        fn $name() {
            sweep_cell(Scheme::$scheme, Structure::$structure);
        }
    };
}

sweep!(nbr_plus_list, NbrPlus, List);
sweep!(nbr_plus_hash, NbrPlus, HashMap);
sweep!(nbr_list, Nbr, List);
sweep!(nbr_hash, Nbr, HashMap);
sweep!(debra_list, Debra, List);
sweep!(debra_hash, Debra, HashMap);
sweep!(qsbr_list, Qsbr, List);
sweep!(qsbr_hash, Qsbr, HashMap);
sweep!(rcu_list, Rcu, List);
sweep!(rcu_hash, Rcu, HashMap);
sweep!(ibr_list, Ibr, List);
sweep!(ibr_hash, Ibr, HashMap);
sweep!(he_list, He, List);
sweep!(he_hash, He, HashMap);
sweep!(wfe_list, Wfe, List);
sweep!(wfe_hash, Wfe, HashMap);
sweep!(hp_list, Hp, List);
sweep!(hp_hash, Hp, HashMap);
sweep!(epoch_pop_list, EpochPop, List);
sweep!(epoch_pop_hash, EpochPop, HashMap);
sweep!(hp_pop_list, HpPop, List);
sweep!(hp_pop_hash, HpPop, HashMap);
sweep!(leaky_list, Leaky, List);
sweep!(leaky_hash, Leaky, HashMap);
