//! The neutralization substrate: per-thread signal slots and the
//! reader/writer/reclaimer handshakes of Sections 4.2–4.3.
//!
//! # Substitution for POSIX signals (DESIGN.md, S1)
//!
//! The paper delivers neutralization with `pthread_kill` + a handler that
//! `siglongjmp`s back to the start of the read phase. Jumping over Rust frames
//! is undefined behaviour unless every skipped frame is a plain-old-frame, and
//! an async signal handler cannot be expressed safely in Rust, so this
//! reproduction delivers neutralization **cooperatively**:
//!
//! * "Sending a signal" to thread `t` = `pending[t].fetch_max(seq, SeqCst)`.
//! * "Receiving the signal" = thread `t` observing `pending[t] > acked[t]` at a
//!   *checkpoint* — data structures place a checkpoint after every shared
//!   pointer load inside a read phase, before the loaded pointer is
//!   dereferenced. On receipt the thread stores `acked[t] = pending[t]` and
//!   restarts its read phase from the root (structured control flow instead of
//!   `siglongjmp`).
//! * A reclaimer may treat thread `t` as neutralized once it observes either
//!   `restartable[t] == false` (t is in a write phase or quiescent — its
//!   *reservations* are honoured, exactly as in Algorithm 1) or
//!   `acked[t] >= seq` (t has discarded every read-phase pointer it obtained
//!   before the signal).
//!
//! The pending/acked handshake itself is the reusable
//! [`PingChannel`](smr_common::PingChannel) in `smr-common`: neutralization
//! layers the `restartable` exemption and the restart semantics on top of it,
//! and the Publish-on-Ping reclaimers (`smr-pop`) layer
//! publish-private-reservations semantics on the very same channel.
//!
//! This preserves Assumption 4 of the paper ("a signalled thread executes its
//! handler before dereferencing any reference field") *by construction*: a
//! reader never dereferences a pointer loaded in a read phase without first
//! passing a checkpoint, and the reclaimer never frees until the handshake
//! above has been observed for every registered thread. The cost of the
//! substitution is that a reclaimer may have to *skip* a reclamation round if
//! some reader has not reached a checkpoint within a bounded spin window
//! (`SmrConfig::ack_spin_limit`); with real signals the kernel would preempt
//! that reader instead. Safety is unaffected; the garbage bound holds as long
//! as readers keep executing checkpoints, which they do on every pointer hop.
//!
//! # Memory-ordering notes (Algorithm 1, lines 8 and 12)
//!
//! The paper uses CAS-as-fence on x86 to order (a) the `restartable := true`
//! write before any subsequent read of shared records, and (b) the reservation
//! writes before `restartable := false`. Here both transitions are `SeqCst`
//! read-modify-writes (`swap`); the reservation stores themselves are only
//! `Release`, because the reclaimer trusts them solely after observing
//! `restartable[t] == false`, and that observation synchronizes with the
//! `SeqCst` swap sequenced after them — so a reclaimer that reads
//! `restartable[t] == false` also observes every reservation `t` published
//! before flipping the flag. A reader that acknowledges a signal has a
//! happens-before edge from the reclaimer's unlinks to its restarted
//! traversal (it read the reclaimer's `pending` store). The reclaimer's
//! reservation scan itself issues one `SeqCst` fence and then per-slot
//! `Acquire` loads (see DESIGN.md, "Memory-ordering argument for single-fence
//! scans").

use smr_common::{CachePadded, PingChannel, PingOutcome, Registry, ScanCombiner, SmrConfig};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Per-thread shared neutralization state (single-writer for `restartable`,
/// `reservations`, `announce_ts`). The pending/acked signal handshake itself
/// lives in the shared [`PingChannel`] owned by [`NeutralizationCore`].
#[derive(Debug)]
pub struct SignalSlot {
    /// True while the owning thread is inside a read phase (Φ_read) and may be
    /// neutralized (Algorithm 1, line 3).
    restartable: AtomicBool,
    /// NBR+ announcement timestamp (Algorithm 2): odd while the owner is
    /// broadcasting signals, even otherwise; two completed increments after a
    /// snapshot ⇒ a relaxed grace period elapsed.
    announce_ts: AtomicU64,
    /// The records the owner will access in its write phase (Algorithm 1,
    /// line 5: the SWMR reservations array). A zero entry is empty.
    reservations: Box<[AtomicUsize]>,
}

impl SignalSlot {
    fn new(max_reservations: usize) -> Self {
        Self {
            restartable: AtomicBool::new(false),
            announce_ts: AtomicU64::new(0),
            reservations: (0..max_reservations).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// The owner's announcement timestamp (NBR+).
    #[inline]
    pub fn announce_ts(&self) -> u64 {
        self.announce_ts.load(Ordering::SeqCst)
    }
}

/// The shared core used by both `Nbr` and `NbrPlus`: thread registry, signal
/// slots, the global signal sequence, and the orphan pool for records whose
/// retiring thread deregistered before they became safe.
pub struct NeutralizationCore {
    config: SmrConfig,
    registry: Registry,
    slots: Vec<CachePadded<SignalSlot>>,
    /// The pending/acked handshake, shared with the Publish-on-Ping
    /// reclaimers (`smr-pop`) via `smr-common`.
    ping: PingChannel,
    /// Flat-combined scan publication for this ping domain: NBR and NBR+
    /// threads whose HiWatermark fires mid-broadcast publish here instead
    /// of stacking a second signal storm.
    combiner: ScanCombiner,
    orphans: std::sync::Mutex<Vec<smr_common::Retired>>,
}

impl std::fmt::Debug for NeutralizationCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeutralizationCore")
            .field("threads", &self.registry.registered())
            .field("signal_seq", &self.ping.current_seq())
            .finish()
    }
}

/// Outcome of a reclaimer's attempt to observe neutralization of all threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeOutcome {
    /// Every registered thread was observed neutralized (acknowledged the
    /// signal) or non-restartable; reclamation may proceed.
    AllNeutralized,
    /// Some thread stayed in a read phase without acknowledging within the
    /// bounded spin window; the reclaimer must skip this round.
    TimedOut,
}

impl NeutralizationCore {
    /// Creates the shared state for `config.max_threads` threads.
    pub fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| CachePadded::new(SignalSlot::new(config.max_reservations)))
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            slots,
            ping: PingChannel::new(config.max_threads, config.signal_cost_ns),
            combiner: ScanCombiner::new(config.max_threads),
            orphans: std::sync::Mutex::new(Vec::new()),
            config,
        }
    }

    /// The flat-combining domain shared by every thread on this core's
    /// [`PingChannel`].
    #[inline]
    pub fn combiner(&self) -> &ScanCombiner {
        &self.combiner
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The thread registry.
    #[inline]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The signal slot of thread `tid`.
    #[inline]
    pub fn slot(&self, tid: usize) -> &SignalSlot {
        &self.slots[tid]
    }

    /// Registers the calling thread under slot `tid`, resetting its slot.
    pub fn register(&self, tid: usize) {
        assert!(
            self.registry.register_tid(tid),
            "thread slot {tid} already registered"
        );
        let slot = self.slot(tid);
        slot.restartable.store(false, Ordering::SeqCst);
        // Catch up with the global sequence: this thread holds no pointers, so
        // it trivially acknowledges everything that has been sent so far.
        self.ping.reset_slot(tid);
        for r in slot.reservations.iter() {
            r.store(0, Ordering::SeqCst);
        }
    }

    /// Deregisters a thread slot.
    pub fn deregister(&self, tid: usize) {
        smr_common::check::clear_claims(tid);
        let slot = self.slot(tid);
        slot.restartable.store(false, Ordering::SeqCst);
        for r in slot.reservations.iter() {
            r.store(0, Ordering::SeqCst);
        }
        // Mark the ping slot departed *before* leaving the registry, closing
        // the window where a reclaimer that snapshotted the active set is
        // still spinning on this thread's ack: the departed flag wakes it
        // immediately instead of costing the remaining allowance.
        self.ping.mark_departed(tid);
        self.registry.deregister(tid);
    }

    /// Moves records that could not be reclaimed before deregistration into
    /// the orphan pool; they are destroyed when the reclaimer itself drops.
    pub fn adopt_orphans(&self, records: Vec<smr_common::Retired>) {
        if records.is_empty() {
            return;
        }
        self.orphans.lock().unwrap().extend(records);
    }

    /// Takes every orphaned record, transferring ownership to a surviving
    /// thread, which folds them into its own limbo bag so they flow through
    /// the ordinary reservation-checked reclamation path. Non-blocking: if
    /// the pool is contended the caller gets nothing this round.
    pub fn take_orphans(&self) -> Vec<smr_common::Retired> {
        match self.orphans.try_lock() {
            Ok(mut records) => std::mem::take(&mut *records),
            Err(_) => Vec::new(),
        }
    }

    /// Frees every orphaned record. Only called from `Drop` of the owning
    /// reclaimer, at which point no thread can hold references.
    pub(crate) fn drain_orphans(&self) {
        let mut orphans = self.orphans.lock().unwrap();
        for r in orphans.drain(..) {
            // SAFETY: the reclaimer is being dropped; all threads have
            // deregistered, so no references to retired records remain.
            unsafe { r.reclaim() };
        }
    }

    /// Number of records currently parked in the orphan pool.
    pub fn orphan_count(&self) -> usize {
        self.orphans.lock().unwrap().len()
    }

    // ------------------------------------------------------------------
    // Reader-side protocol.
    // ------------------------------------------------------------------

    /// Begins a read phase for `tid` (Algorithm 1, lines 6–9): clears the
    /// reservations, trivially acknowledges any pending signal (the thread
    /// holds no shared pointers at this boundary), and becomes restartable.
    #[inline]
    pub fn begin_read_phase(&self, tid: usize) {
        // Oracle mirror: retract the mirrored reservations before the real
        // slots are cleared, so the mirror stays a subset of what reclaimers
        // can actually observe.
        smr_common::check::clear_claims(tid);
        let slot = self.slot(tid);
        for r in slot.reservations.iter() {
            if r.load(Ordering::Relaxed) != 0 {
                // Release is enough: the clear becomes visible to a reclaimer
                // no later than the SeqCst swap below, and a reclaimer that
                // still sees the stale reservation only keeps a record longer
                // (conservative).
                r.store(0, Ordering::Release);
            }
        }
        if let Some(seq) = self.ping.poll(tid) {
            // Only ack when something is pending: `acked` is single-writer,
            // so the unconditional store the seed performed here was an XCHG
            // on every operation; skipping it when nothing is pending keeps
            // the per-op fast path store-free.
            self.ping.ack(tid, seq);
        }
        // SeqCst RMW: the paper's CAS-as-fence (line 8). Ensures no read of a
        // shared record in the upcoming Φ_read can be ordered before the
        // thread became restartable.
        slot.restartable.swap(true, Ordering::SeqCst);
    }

    /// Neutralization checkpoint for `tid`. Returns `true` if a signal arrived
    /// since the last acknowledgement; the caller must then discard all
    /// read-phase pointers and restart from the root. The acknowledgement is
    /// published here, which is what un-blocks the signalling reclaimer.
    #[inline]
    pub fn checkpoint(&self, tid: usize) -> bool {
        if let Some(seq) = self.ping.poll(tid) {
            self.ping.ack(tid, seq);
            true
        } else {
            false
        }
    }

    /// Ends the read phase (Algorithm 1, lines 10–13): publishes the records
    /// the write phase will access and becomes non-restartable. The `SeqCst`
    /// swap guarantees every reservation is visible to any reclaimer that
    /// subsequently observes `restartable == false`.
    #[inline]
    pub fn end_read_phase(&self, tid: usize, reservations: &[usize]) {
        let slot = self.slot(tid);
        assert!(
            reservations.len() <= slot.reservations.len(),
            "too many reservations: {} > max_reservations {}",
            reservations.len(),
            slot.reservations.len()
        );
        // Release stores suffice for the reservation values: the reclaimer
        // only trusts them after observing `restartable == false`, and that
        // observation synchronizes with the SeqCst swap below, which is
        // sequenced after every store here. The seed published all `R` slots
        // with SeqCst stores (R XCHGs per operation); skipping the slots that
        // stay zero and downgrading the rest to Release leaves the per-op
        // cost at the single swap the paper's Algorithm 1 line 12 requires.
        for (i, r) in slot.reservations.iter().enumerate() {
            let val = reservations.get(i).copied().unwrap_or(0);
            if val != 0 || r.load(Ordering::Relaxed) != 0 {
                r.store(val, Ordering::Release);
            }
        }
        // SeqCst RMW: the paper's CAS-as-fence (line 12).
        slot.restartable.swap(false, Ordering::SeqCst);
        // Oracle mirror (after the swap): the reservations only become binding
        // on reclaimers once `restartable == false` is observable, so claiming
        // here never over-claims.
        smr_common::check::claim_reservations(tid, reservations);
    }

    /// Leaves any phase (end of operation): the thread is quiescent.
    #[inline]
    pub fn quiesce(&self, tid: usize) {
        let slot = self.slot(tid);
        if slot.restartable.load(Ordering::Relaxed) {
            slot.restartable.swap(false, Ordering::SeqCst);
        }
    }

    // ------------------------------------------------------------------
    // Reclaimer-side protocol.
    // ------------------------------------------------------------------

    /// Sends a neutralization signal to every registered thread except
    /// `sender` (Algorithm 1, line 16). Returns the sequence number of this
    /// broadcast and the number of signals sent. Delivery (including the
    /// simulated per-signal `pthread_kill` cost, `SmrConfig::signal_cost_ns`)
    /// is the shared [`PingChannel`]'s `ping_all`.
    pub fn signal_all(&self, sender: usize) -> (u64, u64) {
        self.ping.ping_all(sender, &self.registry)
    }

    /// Waits (bounded) until every registered thread other than `sender` is
    /// observed neutralized with respect to `seq`: either non-restartable or
    /// having acknowledged `seq`.
    ///
    /// The wait (the shared [`PingChannel`]'s `await_acks`) backs off from
    /// spinning to yielding so that, on oversubscribed machines, a
    /// descheduled reader gets the CPU it needs to reach its next checkpoint
    /// (with real signals the kernel would deliver the handler regardless of
    /// scheduling; the yield is the cooperative substitute). The total number
    /// of iterations is bounded by `SmrConfig::ack_spin_limit`; on expiry the
    /// round is conceded and the caller skips reclamation.
    pub fn await_neutralization(&self, sender: usize, seq: u64) -> HandshakeOutcome {
        let outcome = self.ping.await_acks(
            sender,
            seq,
            &self.registry,
            self.config.ack_spin_limit,
            // A non-restartable thread (write phase or quiescent) needs no
            // acknowledgement: its published reservations are honoured,
            // exactly as in Algorithm 1.
            |tid| !self.slot(tid).restartable.load(Ordering::SeqCst),
            || {},
        );
        match outcome {
            PingOutcome::AllAcked => HandshakeOutcome::AllNeutralized,
            PingOutcome::TimedOut => HandshakeOutcome::TimedOut,
        }
    }

    /// Collects every reservation currently announced by any registered thread
    /// other than `collector` (Algorithm 1, line 22) into `reserved`, sorted
    /// and deduplicated — at most `R × N` entries, gathered with one `SeqCst`
    /// fence plus per-slot `Acquire` loads (single-fence scan, DESIGN.md).
    pub fn collect_reservations_into(&self, collector: usize, reserved: &mut Vec<usize>) {
        reserved.clear();
        fence(Ordering::SeqCst);
        for tid in self.registry.active_tids() {
            if tid == collector {
                continue;
            }
            for r in self.slot(tid).reservations.iter() {
                let addr = r.load(Ordering::Acquire);
                if addr != 0 {
                    reserved.push(addr);
                }
            }
        }
        reserved.sort_unstable();
        reserved.dedup();
    }

    /// Allocating convenience wrapper around
    /// [`NeutralizationCore::collect_reservations_into`].
    pub fn collect_reservations(&self, collector: usize) -> Vec<usize> {
        let mut reserved =
            Vec::with_capacity(self.config.max_reservations * self.registry.registered());
        self.collect_reservations_into(collector, &mut reserved);
        reserved
    }

    // ------------------------------------------------------------------
    // NBR+ announcement timestamps.
    // ------------------------------------------------------------------

    /// Marks the beginning of a relaxed grace period by `tid` (odd timestamp,
    /// Algorithm 2 line 7).
    #[inline]
    pub fn announce_rgp_begin(&self, tid: usize) {
        self.slot(tid).announce_ts.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks the end of a *verified* relaxed grace period by `tid` (even
    /// timestamp, Algorithm 2 line 9). In the cooperative substitution the end
    /// is only announced once `await_neutralization` succeeded, so observers
    /// may rely on "advanced to the next even value ⇒ every thread was
    /// neutralized in between".
    #[inline]
    pub fn announce_rgp_end(&self, tid: usize) {
        self.slot(tid).announce_ts.fetch_add(1, Ordering::SeqCst);
    }

    /// Rolls back an announced-but-unverified grace period (the cooperative
    /// handshake timed out). `announce_ts` is single-writer, so the subtraction
    /// cannot race with other increments by the same thread.
    #[inline]
    pub fn announce_rgp_abort(&self, tid: usize) {
        self.slot(tid).announce_ts.fetch_sub(1, Ordering::SeqCst);
    }

    /// Snapshot of every thread's announcement timestamp (Algorithm 2,
    /// line 15). Index = tid; inactive slots report their last value, which is
    /// harmless (they cannot regress).
    pub fn snapshot_announcements(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.snapshot_announcements_into(&mut out);
        out
    }

    /// [`NeutralizationCore::snapshot_announcements`] into a reusable buffer
    /// (the LoWatermark path re-enters per retire burst; a fresh vector per
    /// snapshot would put malloc back on the reclamation path).
    pub fn snapshot_announcements_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.slots.iter().map(|s| s.announce_ts()));
    }

    /// True if, relative to `snapshot`, some *other* thread has completed an
    /// entire relaxed grace period (begun **and** verified after the snapshot
    /// was taken) — Algorithm 2, lines 17–23.
    pub fn rgp_elapsed_since(&self, observer: usize, snapshot: &[u64]) -> bool {
        for tid in self.registry.active_tids() {
            if tid == observer || tid >= snapshot.len() {
                continue;
            }
            let snap = snapshot[tid];
            // If the snapshot caught an odd value (mid-broadcast), the RGP that
            // was in flight may have begun before our bookmark, so we need the
            // *next* full RGP: require one more increment than the paper's
            // "+2" (which assumes an even snapshot).
            let required = if snap % 2 == 0 { snap + 2 } else { snap + 3 };
            if self.slot(tid).announce_ts() >= required {
                return true;
            }
        }
        false
    }

    /// True if any *other* thread's announcement timestamp has advanced past
    /// `snapshot` at all — a grace period has at least *begun* since the
    /// snapshot (it may still be mid-handshake, i.e. not yet creditable by
    /// [`NeutralizationCore::rgp_elapsed_since`]). NBR+ uses this at the
    /// HiWatermark to defer its own broadcast instead of stacking `n−1`
    /// redundant signals onto a grace period that is about to complete.
    /// An aborted broadcast rolls its timestamp back, so a timed-out peer
    /// stops registering here and the deferring thread falls through to its
    /// own broadcast.
    pub fn rgp_in_flight_since(&self, observer: usize, snapshot: &[u64]) -> bool {
        for tid in self.registry.active_tids() {
            if tid == observer || tid >= snapshot.len() {
                continue;
            }
            if self.slot(tid).announce_ts() > snapshot[tid] {
                return true;
            }
        }
        false
    }

    /// Current value of the global signal sequence (diagnostics/tests).
    pub fn signal_sequence(&self) -> u64 {
        self.ping.current_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_with(threads: usize) -> NeutralizationCore {
        let cfg = SmrConfig::for_tests().with_max_threads(threads);
        NeutralizationCore::new(cfg)
    }

    #[test]
    fn register_catches_up_with_sequence() {
        let core = core_with(4);
        core.register(0);
        core.signal_all(0);
        core.signal_all(0);
        // A thread registering later must not be considered a straggler for
        // signals sent before it existed.
        core.register(1);
        assert_eq!(
            core.await_neutralization(0, core.signal_sequence()),
            HandshakeOutcome::AllNeutralized
        );
    }

    #[test]
    fn checkpoint_observes_signal_once() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        core.begin_read_phase(1);
        assert!(!core.checkpoint(1), "no signal yet");
        let (seq, sent) = core.signal_all(0);
        assert_eq!(sent, 1);
        assert!(core.checkpoint(1), "signal must be observed");
        assert!(!core.checkpoint(1), "signal must be consumed by the ack");
        assert_eq!(
            core.await_neutralization(0, seq),
            HandshakeOutcome::AllNeutralized
        );
    }

    #[test]
    fn write_phase_thread_does_not_block_reclaimer() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        core.begin_read_phase(1);
        core.end_read_phase(1, &[0xdead0, 0xbeef0]);
        let (seq, _) = core.signal_all(0);
        assert_eq!(
            core.await_neutralization(0, seq),
            HandshakeOutcome::AllNeutralized,
            "a non-restartable (write-phase) thread must not block the handshake"
        );
        let reserved = core.collect_reservations(0);
        assert_eq!(reserved, vec![0xbeef0, 0xdead0]);
    }

    #[test]
    fn reader_that_never_acks_times_out() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(2);
        cfg.ack_spin_limit = 64;
        let core = NeutralizationCore::new(cfg);
        core.register(0);
        core.register(1);
        core.begin_read_phase(1);
        let (seq, _) = core.signal_all(0);
        assert_eq!(
            core.await_neutralization(0, seq),
            HandshakeOutcome::TimedOut,
            "an unacknowledged reader must force the reclaimer to concede"
        );
    }

    #[test]
    fn begin_read_phase_clears_reservations() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        core.begin_read_phase(1);
        core.end_read_phase(1, &[0x1000]);
        assert_eq!(core.collect_reservations(0), vec![0x1000]);
        core.begin_read_phase(1);
        assert!(core.collect_reservations(0).is_empty());
    }

    #[test]
    fn rgp_detection_requires_begin_and_verified_end() {
        let core = core_with(3);
        core.register(0);
        core.register(1);
        core.register(2);
        let snap = core.snapshot_announcements();
        assert!(!core.rgp_elapsed_since(2, &snap));
        core.announce_rgp_begin(0);
        assert!(
            !core.rgp_elapsed_since(2, &snap),
            "an RGP that has only begun must not be observable"
        );
        core.announce_rgp_end(0);
        assert!(core.rgp_elapsed_since(2, &snap));
        // The sender itself must not count its own RGP.
        assert!(!core.rgp_elapsed_since(0, &snap));
    }

    #[test]
    fn rgp_detection_with_odd_snapshot_needs_next_full_rgp() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        core.announce_rgp_begin(0); // observer snapshots mid-broadcast
        let snap = core.snapshot_announcements();
        core.announce_rgp_end(0);
        assert!(
            !core.rgp_elapsed_since(1, &snap),
            "completing the in-flight RGP is not enough for an odd snapshot"
        );
        core.announce_rgp_begin(0);
        assert!(!core.rgp_elapsed_since(1, &snap));
        core.announce_rgp_end(0);
        assert!(core.rgp_elapsed_since(1, &snap));
    }

    #[test]
    fn rgp_abort_is_not_observable() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        let snap = core.snapshot_announcements();
        core.announce_rgp_begin(0);
        core.announce_rgp_abort(0);
        assert!(!core.rgp_elapsed_since(1, &snap));
        // A later, successful RGP is still detected.
        core.announce_rgp_begin(0);
        core.announce_rgp_end(0);
        assert!(core.rgp_elapsed_since(1, &snap));
    }

    #[test]
    fn signal_all_skips_sender_and_inactive() {
        let core = core_with(8);
        core.register(0);
        core.register(3);
        core.register(5);
        let (_, sent) = core.signal_all(3);
        assert_eq!(sent, 2);
    }

    #[test]
    fn quiesce_clears_restartable() {
        let core = core_with(2);
        core.register(0);
        core.register(1);
        core.begin_read_phase(1);
        core.quiesce(1);
        let (seq, _) = core.signal_all(0);
        assert_eq!(
            core.await_neutralization(0, seq),
            HandshakeOutcome::AllNeutralized
        );
    }
}
