//! Adaptive reclamation-scan triggers shared by every reclaimer.
//!
//! The paper's Algorithm 1 scans when the limbo bag reaches a fixed
//! HiWatermark. That alone has a failure mode this repo's stress runs exposed
//! (ROADMAP: "HP reclaims nothing below the watermark"): a thread that retires
//! fewer than `hi_watermark` records over its whole lifetime never scans, so
//! short trials and short-lived threads return no memory at all until they
//! deregister — and frees performed during deregistration are invisible to
//! the thread's own counters.
//!
//! [`ScanPolicy`] combines three triggers:
//!
//! * **HiWatermark** (paper, Algorithm 1 line 20): retire scans once the bag
//!   reaches `hi_watermark` — the bounded-garbage backstop.
//! * **LoWatermark**: reclaimers with a cheap opportunistic path (NBR+'s RGP
//!   piggybacking) engage it once the bag reaches `lo_watermark`.
//! * **Operation heartbeat**: every `heartbeat_ops` *completed operations*
//!   (counted at operation exit — `Smr::end_op`, which the
//!   [`SmrHandle`](../../nbr/struct.SmrHandle.html)/`ReadPhase` guard calls on
//!   every `run`), a thread holding any garbage runs one scan. This is the
//!   adaptive part: a fast-retiring thread is paced by the watermarks and
//!   almost never hits the heartbeat, while a slow-retiring thread frees its
//!   garbage within a bounded number of its own operations instead of never.
//!
//! The heartbeat runs at operation exit — never inside a read phase — so it
//! composes with the NBR phase rules (a scan may broadcast signals, which is
//! write-phase behaviour). Scans triggered by the heartbeat are counted in
//! [`ThreadStats::heartbeat_scans`](crate::ThreadStats::heartbeat_scans).

use crate::smr::SmrConfig;

/// The scan-trigger parameters, derived from [`SmrConfig`].
#[derive(Debug, Clone)]
pub struct ScanPolicy {
    /// Bag size that forces a reclamation scan on retire (Algorithm 1's `S`).
    pub hi_watermark: usize,
    /// Bag size at which opportunistic reclamation engages (NBR+).
    pub lo_watermark: usize,
    /// Completed operations between heartbeat scans (0 disables the
    /// heartbeat).
    pub heartbeat_ops: u32,
}

impl ScanPolicy {
    /// Derives the policy from a config.
    pub fn from_config(config: &SmrConfig) -> Self {
        Self {
            hi_watermark: config.hi_watermark,
            lo_watermark: config.lo_watermark,
            heartbeat_ops: config.scan_heartbeat_ops.min(u32::MAX as usize) as u32,
        }
    }

    /// Retire-path trigger: must this retire run a scan?
    #[inline]
    pub fn scan_on_retire(&self, limbo_len: usize) -> bool {
        limbo_len >= self.hi_watermark
    }

    /// Retire-path trigger for the opportunistic (LoWatermark) path.
    #[inline]
    pub fn opportunistic_on_retire(&self, limbo_len: usize) -> bool {
        limbo_len >= self.lo_watermark
    }

    /// Whether a thread at/over the HiWatermark may briefly *defer* its own
    /// reclamation broadcast to ride a peer's in-flight grace period instead
    /// (NBR+'s piggybacking). Bounded: once the bag reaches
    /// `hi + lo` the thread must induce its own scan regardless, so the
    /// Lemma-10 garbage bound only gains a fixed `lo_watermark` of slack.
    #[inline]
    pub fn can_defer_broadcast(&self, limbo_len: usize) -> bool {
        limbo_len < self.hi_watermark + self.lo_watermark
    }
}

/// Per-thread heartbeat state. Lives in the reclaimer's thread context; no
/// synchronization involved.
#[derive(Debug, Default)]
pub struct ScanState {
    ops_since_scan: u32,
}

impl ScanState {
    /// Fresh state (no operations recorded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ticks the operation-exit heartbeat. Returns `true` when the caller
    /// should run a reclamation scan now: the thread has completed
    /// `heartbeat_ops` operations since its last scan while garbage is
    /// pending. Callers must invoke [`ScanState::note_scan`] after any scan
    /// (heartbeat- or watermark-triggered) so the two triggers share one
    /// pacing window.
    #[inline]
    pub fn tick_op(&mut self, policy: &ScanPolicy, limbo_len: usize) -> bool {
        if policy.heartbeat_ops == 0 {
            return false;
        }
        // Saturating: an idle thread with an empty bag must not wrap around.
        self.ops_since_scan = self.ops_since_scan.saturating_add(1);
        limbo_len > 0 && self.ops_since_scan >= policy.heartbeat_ops
    }

    /// Records that a scan ran, restarting the heartbeat window.
    #[inline]
    pub fn note_scan(&mut self) {
        self.ops_since_scan = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(hi: usize, lo: usize, hb: usize) -> ScanPolicy {
        ScanPolicy::from_config(
            &SmrConfig::default()
                .with_watermarks(hi, lo)
                .with_scan_heartbeat_ops(hb),
        )
    }

    #[test]
    fn watermark_triggers_mirror_config() {
        let p = policy(100, 25, 64);
        assert!(!p.scan_on_retire(99));
        assert!(p.scan_on_retire(100));
        assert!(!p.opportunistic_on_retire(24));
        assert!(p.opportunistic_on_retire(25));
    }

    #[test]
    fn heartbeat_fires_after_window_with_garbage() {
        let p = policy(100, 25, 4);
        let mut s = ScanState::new();
        for _ in 0..3 {
            assert!(!s.tick_op(&p, 1));
        }
        assert!(s.tick_op(&p, 1), "4th op with garbage must fire");
        s.note_scan();
        assert!(!s.tick_op(&p, 1), "window restarts after a scan");
    }

    #[test]
    fn heartbeat_never_fires_on_empty_bag_or_when_disabled() {
        let p = policy(100, 25, 2);
        let mut s = ScanState::new();
        for _ in 0..10 {
            assert!(!s.tick_op(&p, 0), "empty bag must not scan");
        }
        // The elapsed window applies as soon as garbage appears.
        assert!(s.tick_op(&p, 1));

        let off = policy(100, 25, 0);
        let mut s = ScanState::new();
        for _ in 0..10 {
            assert!(!s.tick_op(&off, 5), "heartbeat disabled");
        }
    }
}
