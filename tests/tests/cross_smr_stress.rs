//! Cross-crate stress tests: every data structure × representative reclaimers,
//! exercising the public API exactly as a downstream user would.

use conc_ds::{AbTree, DgtTree, HarrisList, HmHashMap, HmList, LazyList};
use integration_tests::{chain_unlink_stress, contended_stress, disjoint_stress, model_check};
use nbr::{Nbr, NbrPlus};
use smr_baselines::{Debra, HazardEras, HazardPointers, Ibr};
use smr_common::SmrConfig;
use smr_pop::{EpochPop, HpPop};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(128, 32)
}

// ---------------------------------------------------------------------------
// Model checks through the public API (one per structure × a couple of SMRs).
// ---------------------------------------------------------------------------

#[test]
fn model_lazy_list_nbr_plus() {
    model_check(&LazyList::<NbrPlus>::new(cfg()), 3_000, 96, 7);
}

#[test]
fn model_harris_list_nbr() {
    model_check(&HarrisList::<Nbr>::new(cfg()), 3_000, 96, 8);
}

#[test]
fn model_hm_list_debra() {
    model_check(&HmList::<Debra>::new(cfg()), 3_000, 96, 9);
}

#[test]
fn model_dgt_tree_hp() {
    model_check(&DgtTree::<HazardPointers>::new(cfg()), 3_000, 256, 10);
}

#[test]
fn model_ab_tree_ibr() {
    model_check(&AbTree::<Ibr>::new(cfg()), 3_000, 1024, 11);
}

// ---------------------------------------------------------------------------
// Concurrent disjoint-key stress (checkable return values).
// ---------------------------------------------------------------------------

#[test]
fn disjoint_lazy_list_nbr_plus() {
    disjoint_stress(Arc::new(LazyList::<NbrPlus>::new(cfg())), 4, 2_500, 400);
}

#[test]
fn disjoint_harris_list_hp() {
    disjoint_stress(
        Arc::new(HarrisList::<HazardPointers>::new(cfg())),
        4,
        2_500,
        400,
    );
}

#[test]
fn disjoint_dgt_tree_nbr() {
    disjoint_stress(Arc::new(DgtTree::<Nbr>::new(cfg())), 4, 2_500, 2_000);
}

#[test]
fn disjoint_ab_tree_nbr_plus() {
    disjoint_stress(Arc::new(AbTree::<NbrPlus>::new(cfg())), 4, 2_500, 2_000);
}

#[test]
fn disjoint_hm_list_debra() {
    disjoint_stress(Arc::new(HmList::<Debra>::new(cfg())), 4, 2_500, 400);
}

// ---------------------------------------------------------------------------
// Maximum-contention stress (all threads share a tiny key range), which is
// where reclamation races are most likely to surface as crashes or
// inconsistencies.
// ---------------------------------------------------------------------------

#[test]
fn contended_lazy_list_nbr_plus() {
    contended_stress(Arc::new(LazyList::<NbrPlus>::new(cfg())), 4, 4_000, 32);
}

#[test]
fn contended_harris_list_nbr_plus() {
    contended_stress(Arc::new(HarrisList::<NbrPlus>::new(cfg())), 4, 4_000, 32);
}

#[test]
fn contended_harris_list_ibr() {
    contended_stress(Arc::new(HarrisList::<Ibr>::new(cfg())), 4, 4_000, 32);
}

#[test]
fn contended_harris_list_he() {
    contended_stress(Arc::new(HarrisList::<HazardEras>::new(cfg())), 4, 4_000, 32);
}

// ---------------------------------------------------------------------------
// Marked-chain regression at high oversubscription: the scheduling that
// originally surfaced the interval-reclaimer traversal race (8 threads on a
// 2-core CI box) hammering the Harris batch-unlink path now that IBR and HE
// run it (`CAN_TRAVERSE_UNLINKED = true`). The deterministic root-cause
// reproducer lives in `marked_chain_race.rs`; these are the probabilistic
// canaries on top of it.
// ---------------------------------------------------------------------------

#[test]
fn oversubscribed_chain_unlink_harris_list_ibr() {
    chain_unlink_stress(Arc::new(HarrisList::<Ibr>::new(cfg())), 8, 150, 4, 8);
}

#[test]
fn oversubscribed_chain_unlink_harris_list_he() {
    chain_unlink_stress(Arc::new(HarrisList::<HazardEras>::new(cfg())), 8, 150, 4, 8);
}

#[test]
fn contended_dgt_tree_nbr_plus() {
    contended_stress(Arc::new(DgtTree::<NbrPlus>::new(cfg())), 4, 4_000, 64);
}

#[test]
fn contended_dgt_tree_debra() {
    contended_stress(Arc::new(DgtTree::<Debra>::new(cfg())), 4, 4_000, 64);
}

#[test]
fn contended_ab_tree_nbr() {
    contended_stress(Arc::new(AbTree::<Nbr>::new(cfg())), 4, 4_000, 64);
}

#[test]
fn contended_hm_list_hp() {
    contended_stress(Arc::new(HmList::<HazardPointers>::new(cfg())), 4, 4_000, 32);
}

// ---------------------------------------------------------------------------
// Publish-on-Ping reclaimers: the handshake (ping → publish → ack → sweep)
// runs constantly under contention, so these are the POP races' best canary.
// ---------------------------------------------------------------------------

#[test]
fn contended_harris_list_epoch_pop() {
    contended_stress(Arc::new(HarrisList::<EpochPop>::new(cfg())), 4, 4_000, 32);
}

#[test]
fn contended_harris_list_hp_pop() {
    contended_stress(Arc::new(HarrisList::<HpPop>::new(cfg())), 4, 4_000, 32);
}

#[test]
fn contended_dgt_tree_hp_pop() {
    contended_stress(Arc::new(DgtTree::<HpPop>::new(cfg())), 4, 4_000, 64);
}

#[test]
fn disjoint_lazy_list_epoch_pop() {
    disjoint_stress(Arc::new(LazyList::<EpochPop>::new(cfg())), 4, 2_500, 400);
}

#[test]
fn disjoint_hm_hashmap_hp_pop() {
    disjoint_stress(Arc::new(HmHashMap::<HpPop>::new(cfg())), 4, 2_500, 400);
}

#[test]
fn contended_hm_hashmap_nbr_plus() {
    contended_stress(Arc::new(HmHashMap::<NbrPlus>::new(cfg())), 4, 4_000, 32);
}
