//! WFE — Wait-Free Eras (Nikolaev & Ravindran, PPoPP 2020).
//!
//! The tree's first *robust* reclaimer: era reservations exactly like hazard
//! eras (per-thread era slots, era-hull reclamation sweep), plus a **helping
//! protocol** on the `protect` slow path so a thread whose announce-validate
//! loop keeps losing to era advances is finished by its peers instead of
//! retrying unboundedly. Garbage stays bounded regardless of stalled threads
//! — a stalled reader pins only the records whose lifetime overlaps its
//! announced hull, never the unbounded suffix an epoch-family scheme pins.
//!
//! # Substitution: lock-serialized helping instead of double-wide CAS
//!
//! The paper's slow path publishes the target cell's address and has helpers
//! install `(pointer, era)` results with double-wide CAS, making `protect`
//! wait-free. This port substitutes a cooperative serialization: a thread
//! that exhausts [`MAX_FAST_TRIES`] parks a request (source cell, era slot)
//! on its per-thread **help board**; every era *advance* is serialized
//! through the same mutex and services all pending boards while the era is
//! frozen — announce the frozen era in the requester's slot, load the cell,
//! publish the result — so fulfilment trivially validates (nothing can
//! advance the era mid-help). A parked requester that nobody helps within a
//! bounded spin window takes the lock and fulfils its own request. The
//! requester's `protect` is therefore bounded (≤ `MAX_FAST_TRIES` retries +
//! one lock acquisition); global progress degrades from the paper's
//! wait-freedom to lock-freedom across helpers, which the cooperative
//! checkpoint substitution (DESIGN.md S1) already accepts elsewhere. The
//! *robustness* property — bounded garbage under stalled threads — is
//! unaffected: it comes from the era-hull reservations, not from the helping
//! mechanics.
//!
//! The critical sections under the help lock contain **no instrumentation
//! preempt points** (raw atomics only — the source cell is loaded through
//! [`Atomic::raw_word`]), so under the deterministic explorer the lock is
//! scheduler-atomic, the same discipline as the recycling depot mutex.

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    Atomic, BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanCombiner,
    ScanPolicy, ScanState, Shared, Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Slot value meaning "no era announced".
const NONE: u64 = 0;

/// Announce-validate attempts before `protect` parks a help request. Two
/// iterations settle the common case (one announce, one validate); the rest
/// absorb bursts of era advances without touching the board.
const MAX_FAST_TRIES: usize = 8;

/// Spin iterations a parked requester grants its peers before taking the
/// help lock and fulfilling its own request (the liveness fallback).
const HELP_WAIT_SPINS: usize = 64;

struct EraSlots {
    slots: Box<[AtomicU64]>,
}

/// One thread's help-request board. Single-requester (the owner), single
/// fulfiller at a time (fulfilment only happens under the help lock).
struct HelpBoard {
    /// Parity protocol: even = idle, odd = request pending. The owner
    /// increments to publish; the fulfiller increments to complete.
    seq: AtomicU64,
    /// Address of the source cell's raw atomic word ([`Atomic::raw_word`]).
    src: AtomicUsize,
    /// Era slot index the fulfiller must announce under.
    slot: AtomicUsize,
    /// The loaded tagged-pointer word (`Shared::into_usize` encoding).
    result_ptr: AtomicUsize,
    /// The era the fulfiller announced before loading.
    result_era: AtomicU64,
}

impl HelpBoard {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            src: AtomicUsize::new(0),
            slot: AtomicUsize::new(0),
            result_ptr: AtomicUsize::new(0),
            result_era: AtomicU64::new(NONE),
        }
    }
}

/// Per-thread context for [`Wfe`].
pub struct WfeCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch: per-thread era-hull bounds, each sorted.
    lowers: Vec<u64>,
    uppers: Vec<u64>,
    allocs_since_advance: usize,
    retires_since_scan: usize,
    mag: Magazine,
    stats: ThreadStats,
}

/// The Wait-Free Eras reclaimer.
pub struct Wfe {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    era: EraClock,
    slots: Vec<CachePadded<EraSlots>>,
    boards: Vec<CachePadded<HelpBoard>>,
    /// Serializes era advances with help fulfilment: any holder sees a
    /// frozen era, so announce-then-load fulfilment cannot be invalidated.
    help_lock: Mutex<()>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
    /// Flat-combined scan publication: a watermark-triggered thread that
    /// loses the race to an in-flight peer scan hands its limbo over instead
    /// of stacking a second era-hull sweep (generalizes NBR+'s
    /// ride-don't-stack to the era family).
    combiner: ScanCombiner,
}

impl Wfe {
    /// Advances the global era, first servicing every pending help request
    /// while the era is frozen under the lock — the helping half of the
    /// protocol: era advances are exactly the events that defeat the fast
    /// path, so the advancing thread pays for the slow paths it causes.
    fn advance_era(&self) -> u64 {
        let guard = self.help_lock.lock().unwrap();
        self.fulfil_pending_requests();
        let e = self.era.advance();
        drop(guard);
        e
    }

    /// Services every active thread's pending help request. Caller must hold
    /// `help_lock`; the critical section is preempt-point-free.
    fn fulfil_pending_requests(&self) {
        for tid in self.registry.active_tids() {
            self.fulfil_one(tid);
        }
    }

    /// Fulfils `tid`'s help request if one is pending. Caller must hold
    /// `help_lock` (single fulfiller; frozen era).
    fn fulfil_one(&self, tid: usize) {
        let board = &self.boards[tid];
        let seq = board.seq.load(Ordering::Acquire);
        if seq % 2 == 0 {
            return;
        }
        let era = self.era.now();
        let slot = board.slot.load(Ordering::Relaxed);
        // Announce on the requester's behalf *before* loading, the same
        // store→load order as the fast path; with the era frozen under the
        // lock the validation step ("era unchanged after the load") holds by
        // construction.
        self.slots[tid].slots[slot].store(era, Ordering::SeqCst);
        // Oracle mirror on the requester's behalf (claims are keyed by the
        // owning tid, and under the explorer the fulfiller runs alone).
        smr_common::check::claim_era(tid, slot, era);
        let src = board.src.load(Ordering::Relaxed);
        // SAFETY: a pending (odd) board entry means its owner is parked
        // inside `protect` holding the `&Atomic<T>` borrow it published, so
        // the cell outlives the request; the raw word is the cell's own
        // atomic storage (`Atomic::raw_word`).
        let word = unsafe { &*(src as *const AtomicUsize) }.load(Ordering::Acquire);
        board.result_ptr.store(word, Ordering::Relaxed);
        board.result_era.store(era, Ordering::Relaxed);
        // Release-publish the fulfilment; the requester's Acquire load of
        // `seq` synchronizes with it.
        board.seq.store(seq + 1, Ordering::Release);
    }

    /// The `protect` slow path: park a request on the board, give peers a
    /// bounded window to help, then self-help under the lock.
    fn protect_slow<T: SmrNode>(
        &self,
        ctx: &mut WfeCtx,
        slot: usize,
        src: &Atomic<T>,
    ) -> Shared<T> {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::HelpSlowBegin, slot as u64, 0);
        let board = &self.boards[ctx.tid];
        let seq = board.seq.load(Ordering::Relaxed);
        debug_assert_eq!(seq % 2, 0, "own board must be idle");
        board.src.store(
            src.raw_word() as *const AtomicUsize as usize,
            Ordering::Relaxed,
        );
        board.slot.store(slot, Ordering::Relaxed);
        // SeqCst publish: any helper that subsequently reads the board sees
        // the request fields stored above.
        board.seq.store(seq + 1, Ordering::SeqCst);
        let mut waited = 0usize;
        while board.seq.load(Ordering::Acquire) == seq + 1 {
            waited += 1;
            if waited > HELP_WAIT_SPINS {
                let guard = self.help_lock.lock().unwrap();
                self.fulfil_one(ctx.tid);
                drop(guard);
                break;
            }
            // Yield the deterministic schedule so a helper can actually run.
            smr_common::check::preempt("wfe.help-wait", ctx.tid);
            std::hint::spin_loop();
        }
        debug_assert_eq!(board.seq.load(Ordering::Relaxed), seq + 2);
        debug_assert_ne!(board.result_era.load(Ordering::Relaxed), NONE);
        trace::emit(ctx.tid, TraceKind::HelpSlowEnd, waited as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.help_slow.record(sw.elapsed_ns());
        }
        Shared::from_usize(board.result_ptr.load(Ordering::Relaxed))
    }

    /// Folds any orphaned records left by departed threads into this
    /// thread's limbo bag, so they flow through the ordinary hull-checked
    /// sweep below instead of waiting for the reclaimer's `Drop`.
    fn adopt_orphans(&self, ctx: &mut WfeCtx) {
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
    }

    fn scan_and_reclaim(&self, ctx: &mut WfeCtx) {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, ctx.limbo.len() as u64, 0);
        // Flat combining: adopt peers' published limbo bags first so one
        // era-hull sweep covers them. Safe to fold into this thread's bag:
        // the sweep below is ownership-agnostic (each record carries its own
        // retire era, and the hull check covers every active thread).
        if self.config.combine {
            let (published, bags) = self.combiner.adopt();
            if bags > 0 {
                ctx.stats.combine_adoptions += bags;
                trace::emit(
                    ctx.tid,
                    TraceKind::CombineAdopt,
                    published.len() as u64,
                    bags,
                );
            }
            for r in published {
                ctx.limbo.push(r);
            }
        }
        self.adopt_orphans(ctx);
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        // Single-fence scan (see DESIGN.md): one SeqCst fence, then Acquire
        // loads of every announced era.
        fence(Ordering::SeqCst);
        ctx.lowers.clear();
        ctx.uppers.clear();
        for tid in self.registry.active_tids() {
            let (mut lo, mut hi) = (u64::MAX, NONE);
            // Double pass folded into one hull — the moved-reservation
            // defence, same as HE (DESIGN.md, "Validate-after-copy for
            // moved hazards"). A helper's cross-thread announce is covered
            // too: it lands in the owner's slots, which this fold reads.
            for _ in 0..2 {
                for s in self.slots[tid].slots.iter() {
                    let e = s.load(Ordering::Acquire);
                    if e != NONE {
                        lo = lo.min(e);
                        hi = hi.max(e);
                    }
                }
            }
            if hi != NONE {
                ctx.lowers.push(lo);
                ctx.uppers.push(hi);
            }
        }
        ctx.lowers.sort_unstable();
        ctx.uppers.sort_unstable();
        let before = ctx.limbo.len();
        // SAFETY: same era-hull argument as hazard eras (DESIGN.md,
        // "Traversals through unlinked records under the interval
        // reclaimers"): a thread can only dereference records whose lifetime
        // overlaps its announced hull, including records a helper announced
        // on its behalf (the helper's era is stored in the owner's slots
        // before the pointer is ever handed back). No overlapping hull ⇒ no
        // live reference.
        let freed = unsafe {
            ctx.limbo.reclaim_disjoint_intervals(
                &ctx.lowers,
                &ctx.uppers,
                &mut ctx.stats,
                &mut ctx.mag,
            )
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    /// Watermark-triggered entry: scan directly when no peer's scan is
    /// mid-flight, otherwise publish this thread's limbo to the combiner so
    /// the active scanner sweeps both bags in one era-hull pass. The
    /// heartbeat (`end_op`), `flush`, and `unregister` scans stay direct —
    /// they must make local progress regardless of peers.
    fn scan_or_publish(&self, ctx: &mut WfeCtx) {
        if !self.config.combine {
            self.scan_and_reclaim(ctx);
            return;
        }
        if self.combiner.try_begin() {
            self.scan_and_reclaim(ctx);
            self.combiner.finish();
            return;
        }
        let records = ctx.limbo.drain();
        let n = records.len() as u64;
        match self.combiner.publish(ctx.tid, records) {
            Ok(()) => {
                ctx.stats.combine_publishes += 1;
                trace::emit(ctx.tid, TraceKind::CombinePublish, n, 0);
            }
            Err(records) => {
                // Slot still full (the scanner hasn't adopted the previous
                // hand-off yet): keep the records and retry next trigger.
                for r in records {
                    ctx.limbo.push(r);
                }
            }
        }
    }

    fn clear_slots(&self, tid: usize) {
        // Claims drop first: mirrored claims must stay a subset of the real
        // announcements.
        smr_common::check::clear_claims(tid);
        for s in self.slots[tid].slots.iter() {
            if s.load(Ordering::Relaxed) != NONE {
                s.store(NONE, Ordering::Release);
            }
        }
    }
}

impl Smr for Wfe {
    type ThreadCtx = WfeCtx;

    const NAME: &'static str = "WFE";
    const USES_PROTECTION: bool = true;
    // Same era-hull sweep as HE, same safety argument, same capability.
    const CAN_TRAVERSE_UNLINKED: bool = true;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(EraSlots {
                    slots: (0..config.hazards_per_thread)
                        .map(|_| AtomicU64::new(NONE))
                        .collect(),
                })
            })
            .collect();
        let boards = (0..config.max_threads)
            .map(|_| CachePadded::new(HelpBoard::new()))
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            era: EraClock::new(),
            slots,
            boards,
            help_lock: Mutex::new(()),
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            combiner: ScanCombiner::new(config.max_threads),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> WfeCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.clear_slots(tid);
        WfeCtx {
            tid,
            limbo: LimboBag::with_batch(self.config.retire_batch_cap()),
            scan: ScanState::new(),
            lowers: Vec::with_capacity(self.config.max_threads),
            uppers: Vec::with_capacity(self.config.max_threads),
            allocs_since_advance: 0,
            retires_since_scan: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut WfeCtx) {
        self.clear_slots(ctx.tid);
        self.scan_and_reclaim(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut WfeCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn global_era(&self) -> u64 {
        self.era.now()
    }

    /// HE's announce-until-stable protocol, bounded: after
    /// [`MAX_FAST_TRIES`] era advances in a row defeat the validation, the
    /// thread parks a help request instead of retrying forever.
    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut WfeCtx, slot: usize, src: &Atomic<T>) -> Shared<T> {
        let slots = &self.slots[ctx.tid].slots;
        debug_assert!(slot < slots.len(), "era slot index out of range");
        let mut announced = slots[slot].load(Ordering::Relaxed);
        for _ in 0..MAX_FAST_TRIES {
            let p = src.load(Ordering::Acquire);
            let era = self.era.now();
            if era == announced {
                smr_common::check::claim_era(ctx.tid, slot, era);
                return p;
            }
            slots[slot].store(era, Ordering::SeqCst);
            // Keep the mirrored claim in lockstep with the real slot (no
            // preempt point sits between the store and this call).
            smr_common::check::claim_era(ctx.tid, slot, era);
            announced = era;
            ctx.stats.protect_failures += 1;
        }
        self.protect_slow(ctx, slot, src)
    }

    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        ctx: &mut WfeCtx,
        dst_slot: usize,
        src_slot: usize,
        _ptr: Shared<T>,
    ) {
        // Same as HE: copy the *announced* era (which covers the record's
        // lifetime), skipping the idempotent republish.
        let slots = &self.slots[ctx.tid].slots;
        let era = slots[src_slot].load(Ordering::Relaxed);
        if slots[dst_slot].load(Ordering::Relaxed) != era {
            slots[dst_slot].store(era, Ordering::SeqCst);
        }
        if era != NONE {
            smr_common::check::claim_era(ctx.tid, dst_slot, era);
        }
    }

    #[inline]
    fn clear_protections(&self, ctx: &mut WfeCtx) {
        self.clear_slots(ctx.tid);
    }

    #[inline]
    fn end_op(&self, ctx: &mut WfeCtx) {
        self.clear_slots(ctx.tid);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    fn alloc<T: SmrNode>(&self, ctx: &mut WfeCtx, value: T) -> Shared<T> {
        let raw = ctx.mag.alloc_node(value);
        // Stamp after the pop, so a recycled block's new birth era is never
        // older than the era at which its previous incarnation was freed
        // (`Smr::alloc` docs; same as IBR/HE).
        // SAFETY: freshly allocated above, not yet published.
        unsafe { (*raw).header_mut().set_birth_era(self.era.now()) };
        // SAFETY: same exclusive ownership as the line above.
        smr_common::check::on_node_alloc(raw as usize, unsafe { (*raw).header().birth_era() });
        ctx.allocs_since_advance += 1;
        if ctx.allocs_since_advance >= self.config.epoch_freq {
            ctx.allocs_since_advance = 0;
            let era = self.advance_era();
            ctx.stats.epoch_advances += 1;
            trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
        }
        ctx.stats.allocs += 1;
        Shared::from_raw(raw)
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut WfeCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        let era = self.era.now();
        // Retire coalescing: stage (era-stamped before staging). The
        // `empty_freq` cadence stays per-retire so the reclamation frontier
        // advances at the configured rate; only the watermark check is
        // amortized to batch flushes (bound slack: batch cap − 1).
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), era));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
        ctx.retires_since_scan += 1;
        if flushed && self.policy.scan_on_retire(ctx.limbo.len()) {
            trace::emit(
                ctx.tid,
                TraceKind::LimboHigh,
                ctx.limbo.len() as u64,
                self.policy.hi_watermark as u64,
            );
            ctx.retires_since_scan = 0;
            self.scan_or_publish(ctx);
        } else if ctx.retires_since_scan >= self.config.empty_freq {
            ctx.retires_since_scan = 0;
            self.scan_and_reclaim(ctx);
        }
    }

    fn flush(&self, ctx: &mut WfeCtx) {
        let era = self.advance_era();
        trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
        self.scan_and_reclaim(ctx);
    }

    fn thread_stats(&self, ctx: &WfeCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut WfeCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &WfeCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for Wfe {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn reclaims_when_no_era_overlaps() {
        let smr = Wfe::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..200 {
            smr.begin_op(&mut ctx);
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            smr.end_op(&mut ctx);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn announced_era_protects_contemporary_records() {
        let smr = Wfe::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
        let mut owner = smr.register(0);
        let mut reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 9,
            },
        );
        shared.store(node, Ordering::Release);

        let p = smr.protect(&mut reader, 0, &shared);
        assert_eq!(unsafe { p.deref().key }, 9);

        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        for i in 0..100 {
            let f = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut owner, f) };
        }
        assert_eq!(unsafe { p.deref().key }, 9);
        assert!(smr.limbo_len(&owner) >= 1);

        smr.clear_protections(&mut reader);
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);

        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn parked_request_is_fulfilled_by_era_advancer() {
        // Drive the help protocol directly: park a request on thread 1's
        // board (as protect_slow would), then have thread 0 advance the era;
        // the advance must fulfil the request under the lock.
        let smr = Wfe::new(SmrConfig::for_tests().with_epoch_freqs(1, 64));
        let mut owner = smr.register(0);
        let _reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 42,
            },
        );
        shared.store(node, Ordering::Release);

        let board = &smr.boards[1];
        board.src.store(
            shared.raw_word() as *const AtomicUsize as usize,
            Ordering::Relaxed,
        );
        board.slot.store(0, Ordering::Relaxed);
        board.seq.store(1, Ordering::SeqCst); // pending

        // epoch_freq = 1: the very next alloc advances the era and must
        // service the board on the way.
        let filler = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 0,
            },
        );
        unsafe { smr.retire(&mut owner, filler) };

        assert_eq!(
            board.seq.load(Ordering::Acquire),
            2,
            "era advance must fulfil the pending request"
        );
        let era = board.result_era.load(Ordering::Relaxed);
        assert_ne!(era, NONE);
        assert_eq!(
            smr.slots[1].slots[0].load(Ordering::Acquire),
            era,
            "the fulfilled era must be announced in the requester's slot"
        );
        let p: Shared<Node> = Shared::from_usize(board.result_ptr.load(Ordering::Relaxed));
        assert_eq!(unsafe { p.deref().key }, 42);

        // The helper-announced era really protects: retiring the record and
        // scanning must not free it while the announcement stands.
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        smr.scan_and_reclaim(&mut owner);
        assert!(
            smr.limbo_len(&owner) >= 1,
            "record covered by the helped announcement must survive"
        );

        smr.clear_slots(1);
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);
        let mut reader = _reader;
        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn protect_slow_self_helps_without_peers() {
        // With no era advances in flight, a parked requester must complete
        // via the self-help fallback and return a protected pointer.
        let smr = Wfe::new(SmrConfig::for_tests());
        let mut owner = smr.register(0);
        let mut reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 7,
            },
        );
        shared.store(node, Ordering::Release);

        let p = smr.protect_slow(&mut reader, 0, &shared);
        assert_eq!(unsafe { p.deref().key }, 7);
        assert_eq!(smr.boards[1].seq.load(Ordering::Relaxed) % 2, 0);
        let announced = smr.slots[1].slots[0].load(Ordering::Acquire);
        assert_eq!(announced, smr.boards[1].result_era.load(Ordering::Relaxed));

        smr.clear_protections(&mut reader);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        smr.flush(&mut owner);
        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn survivor_adopts_orphans_from_departed_thread() {
        let smr = Wfe::new(SmrConfig::for_tests());
        let mut survivor = smr.register(0);
        let mut departing = smr.register(1);

        // The survivor pins an era so the departing thread's final scan
        // cannot free everything; its leftovers must flow to the orphans.
        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut survivor,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        shared.store(node, Ordering::Release);
        let _p = smr.protect(&mut survivor, 0, &shared);

        for i in 0..16 {
            let p = smr.alloc(
                &mut departing,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut departing, p) };
        }
        smr.unregister(&mut departing);
        let orphaned = smr.orphans.len();
        assert!(orphaned > 0, "stalled-pinned leftovers must be orphaned");

        // The survivor's next flush adopts and frees them.
        smr.clear_protections(&mut survivor);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut survivor, old) };
        smr.flush(&mut survivor);
        assert!(smr.orphans.is_empty(), "survivor must adopt the orphans");
        assert_eq!(smr.limbo_len(&survivor), 0, "adopted orphans must be freed");
        smr.unregister(&mut survivor);
    }
}
