//! Vendored, API-compatible stub for the subset of `proptest` used by this
//! workspace (see `vendor/README.md`).
//!
//! Differences from real proptest: no shrinking of failing inputs, and the
//! RNG is seeded deterministically per test (from the test's name), so every
//! run generates the same cases — failures are reproducible by construction.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (tests derive it from the test name).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
    /// Maximum rejected cases (accepted for compatibility; unused).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// FNV-1a hash used to derive a per-test RNG seed from the test name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::proptest;
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Declares property tests.
///
/// Supported shape (the one used in this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(xs in vec(0u64..10, 1..100)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(
                            let $pat = $crate::Strategy::generate(&($strategy), &mut rng);
                        )+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 1u64..=100, y in 0u8..3) {
            assert!((1..=100).contains(&x));
            assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respected(xs in collection::vec(0u64..10, 1..50)) {
            assert!(!xs.is_empty() && xs.len() < 50);
            assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn prop_map_applies(s in (0u8..3, 1u64..=9).prop_map(|(a, b)| (a as u64) * 10 + b)) {
            assert!((1..=29).contains(&s));
        }
    }
}
