//! # smr-common — shared safe-memory-reclamation framework
//!
//! This crate is the substrate shared by every safe memory reclamation (SMR)
//! algorithm in the workspace: the NBR / NBR+ algorithms of the paper
//! (*NBR: Neutralization Based Reclamation*, Singh, Brown & Mashtizadeh,
//! PPoPP 2021) live in the `nbr` crate, the baselines
//! (DEBRA, QSBR, RCU, hazard pointers, IBR, hazard eras, leaky) live in
//! `smr-baselines`, and all of them implement the [`Smr`] trait defined here.
//!
//! The design mirrors the role of setbench's *record manager* in the paper's
//! artifact: concurrent data structures are written **once**, generically over
//! `S: Smr`, and every reclaimer plugs into the same instrumentation points:
//!
//! * [`Smr::begin_op`] / [`Smr::end_op`] — operation brackets used by the
//!   epoch-based family (DEBRA, QSBR, RCU, IBR, HE).
//! * [`Smr::begin_read_phase`] / [`Smr::checkpoint`] / [`Smr::end_read_phase`]
//!   — the NBR phase protocol of the paper (Φ_read, reservation, Φ_write).
//! * [`Smr::protect`] / [`Smr::clear_protections`] — per-access protection used
//!   by the hazard-pointer family (HP, IBR, HE).
//! * [`Smr::alloc`] / [`Smr::retire`] — record lifecycle (allocated → reachable
//!   → unlinked → safe → reclaimed, Section 3 of the paper).
//!
//! Hooks that a given reclaimer does not need are inlined empty defaults, so a
//! single data-structure source compiles down to exactly the instrumentation
//! each reclaimer requires — which is what makes the cross-SMR comparison fair.
//!
//! The crate also provides the low-level building blocks the reclaimers and
//! data structures share:
//!
//! * [`Atomic`] / [`Shared`] — tagged atomic pointers (mark bits in the low
//!   bits, as used by the Harris list).
//! * [`NodeHeader`] / [`SmrNode`] — the per-record metadata (birth era) that
//!   interval-based reclaimers need.
//! * [`Retired`] / [`LimboBag`] — type-erased deferred destruction and the
//!   per-thread limbo bags of Algorithm 1.
//! * [`BlockPool`] / [`Magazine`] — the node-block recycling layer
//!   (thread-local magazines over a shared depot) that takes malloc/free off
//!   the reclamation hot path (`recycle` module).
//! * [`Registry`] — the fixed-capacity thread-slot registry.
//! * [`PingChannel`] — the cooperative per-thread ping/ack handshake shared
//!   by NBR's neutralization (`nbr` crate) and the Publish-on-Ping
//!   reclaimers (`smr-pop` crate).
//! * [`EraClock`] / [`OrphanPool`] — the global era counter and the
//!   deregistration orphan pool shared by the epoch/era-based reclaimers.
//! * [`CachePadded`], [`Backoff`], [`SeqLock`] — performance primitives.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod backoff;
pub mod check;
pub mod combine;
pub mod header;
pub mod limbo;
pub mod pad;
pub mod ping;
pub mod policy;
pub mod recycle;
pub mod registry;
pub mod retired;
pub mod smr;
pub mod stats;
pub mod telemetry;
pub mod util;
pub mod vlock;

pub use atomic::{Atomic, Shared};
pub use backoff::Backoff;
pub use combine::ScanCombiner;
pub use header::{NodeHeader, SmrNode};
pub use limbo::{LimboBag, RETIRE_BATCH_CAP};
pub use pad::CachePadded;
pub use ping::{PingChannel, PingOutcome};
pub use policy::{ScanPolicy, ScanState};
pub use recycle::{BlockPool, Magazine};
pub use registry::{Registry, ThreadSlot};
pub use retired::Retired;
pub use smr::{Smr, SmrConfig};
pub use stats::{SmrStats, ThreadStats};
pub use telemetry::{Histo, Stopwatch, Telemetry};
pub use util::{EraClock, OrphanPool};
pub use vlock::SeqLock;
