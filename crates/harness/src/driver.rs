//! The trial driver: prefill, spawn workers, measure, collect.
//!
//! One [`run_trial`] call reproduces one data point of the paper's plots: a
//! (data structure, reclaimer, operation mix, key range, thread count) tuple
//! run for a fixed duration (or a fixed operation budget for the Criterion
//! benches), reporting throughput, the reclaimer's counters and the process's
//! peak heap usage.

use crate::alloc_track;
use crate::fault::{FaultKind, FaultSpec};
use crate::workload::{Op, OpGenerator, StopCondition, WorkloadSpec};
use conc_ds::ConcurrentSet;
use smr_common::telemetry::{self, trace, Histo, TraceKind};
use smr_common::{Smr, SmrConfig, ThreadStats};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A data structure that the harness can construct from an [`SmrConfig`].
pub trait Buildable<S: Smr>: ConcurrentSet<S> + Sized + 'static {
    /// Builds an empty instance (the structure owns its reclaimer).
    fn build(config: SmrConfig) -> Self;
    /// Label used in benchmark output (defaults to the structure name).
    fn variant_name() -> &'static str {
        Self::name()
    }
}

impl<S: Smr> Buildable<S> for conc_ds::LazyList<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
}
impl<S: Smr> Buildable<S> for conc_ds::HarrisList<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
}
impl<S: Smr> Buildable<S> for conc_ds::DgtTree<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
}
impl<S: Smr> Buildable<S> for conc_ds::AbTree<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
}
impl<S: Smr> Buildable<S> for conc_ds::HmList<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
    fn variant_name() -> &'static str {
        "hm-list-restart"
    }
}
impl<S: Smr> Buildable<S> for conc_ds::HmHashMap<S> {
    fn build(config: SmrConfig) -> Self {
        Self::new(config)
    }
}

/// The original Harris-Michael list (no restart from root after unlinks) —
/// the "norestarts" configuration of experiment E4. Only meaningful with
/// EBR-family or leaky reclaimers.
pub struct HmListNoRestart<S: Smr>(conc_ds::HmList<S>);

impl<S: Smr> ConcurrentSet<S> for HmListNoRestart<S> {
    fn smr(&self) -> &S {
        self.0.smr()
    }
    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.0.contains(ctx, key)
    }
    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.0.insert(ctx, key)
    }
    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.0.remove(ctx, key)
    }
    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.0.size(ctx)
    }
    fn name() -> &'static str {
        "hm-list-norestart"
    }
}

impl<S: Smr> Buildable<S> for HmListNoRestart<S> {
    fn build(config: SmrConfig) -> Self {
        Self(conc_ds::HmList::with_policy(
            config,
            conc_ds::hm_list::RestartPolicy::ContinueFromPred,
        ))
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Data-structure label.
    pub ds: &'static str,
    /// Reclaimer label.
    pub smr: &'static str,
    /// Operation mix label (e.g. `50i-50d`).
    pub mix: String,
    /// Key range size.
    pub key_range: u64,
    /// Number of worker threads (excluding a stalled thread, if any).
    pub threads: usize,
    /// Total completed operations across all workers.
    pub total_ops: u64,
    /// Wall-clock duration of the measured portion.
    pub duration: Duration,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Sum of all workers' reclaimer counters.
    pub smr_totals: ThreadStats,
    /// Peak live heap bytes during the measured portion (0 when the counting
    /// allocator is not installed in this process).
    pub peak_mem_bytes: usize,
    /// Whether a stalled thread was present.
    pub stalled_thread: bool,
    /// Faults injected by the trial's [`FaultPlan`](crate::fault::FaultPlan)
    /// (0 for fault-free trials).
    pub injected_faults: usize,
    /// Workers that departed mid-trial (subset of `injected_faults`).
    pub departed_workers: usize,
}

impl TrialResult {
    /// Retired-but-unreclaimed records at the end of the trial.
    pub fn outstanding_garbage(&self) -> u64 {
        self.smr_totals.outstanding()
    }
}

struct SharedState {
    start: Barrier,
    stop: AtomicBool,
    ops_done: AtomicU64,
    ops_budget: u64,
    /// Workers publish their batch counts into `ops_done` even without an
    /// ops budget — needed when a fault plan measures stalls in global ops.
    track_ops: bool,
    /// Workers that will reach a normal loop exit (threads minus planned
    /// departures). Used to close the counted stats window in lockstep.
    expected_finishers: usize,
    /// Workers that have snapshotted their [`ThreadStats`] after the stop
    /// flag. No thread may `unregister` (and no stalled thread may lift its
    /// reservation) before this reaches `expected_finishers`: otherwise the
    /// last worker still draining its op batch runs a trivially-completing
    /// scan against an emptied registry and frees its whole limbo bag
    /// *inside* the counted window, collapsing the outstanding-garbage
    /// signal the E2 assertions measure (scheduling-dependent, so the
    /// garbage-bound tests flip between "pinned" and "all freed" runs).
    finished: AtomicUsize,
}

impl SharedState {
    /// Closes this worker's counted window and waits for the peers to close
    /// theirs, running `service` (ping/neutralization acknowledgement) in
    /// the wait loop so still-draining workers' handshakes keep completing.
    fn finish_counting(&self, mut service: impl FnMut()) {
        self.finished.fetch_add(1, Ordering::AcqRel);
        while self.finished.load(Ordering::Acquire) < self.expected_finishers {
            service();
            std::thread::yield_now();
        }
    }
}

/// Builds a structure and prefills it per `spec` — the setup phase of
/// [`run_trial`], exposed separately so benchmark matrices can share one
/// prefilled structure across operation mixes and Criterion samples instead
/// of re-prefilling for every measurement (see
/// [`build_prefilled`](crate::families::build_prefilled)).
pub fn build_and_prefill<S, DS>(spec: &WorkloadSpec, config: SmrConfig) -> Arc<DS>
where
    S: Smr,
    DS: Buildable<S> + Send + Sync,
{
    assert!(
        spec.threads + usize::from(spec.stalled_thread) < config.max_threads,
        "not enough SMR thread slots for this trial"
    );
    let ds = Arc::new(DS::build(config));
    prefill(&ds, spec);
    ds
}

/// Runs the measured portion of one trial of `spec` on an existing structure.
///
/// No prefill happens here: the structure is used as-is, so repeated trials
/// on the same instance measure its steady-state occupancy (the uniform-key
/// mixes hover around half the key range, which is exactly what
/// [`WorkloadSpec::new`]'s prefill establishes).
pub fn run_trial_on<S, DS>(ds: &Arc<DS>, spec: &WorkloadSpec) -> TrialResult
where
    S: Smr,
    DS: Buildable<S> + Send + Sync,
{
    let config = ds.smr().config();
    assert!(
        spec.threads + usize::from(spec.stalled_thread) < config.max_threads,
        "not enough SMR thread slots for this trial"
    );
    alloc_track::reset_peak();

    let ops_budget = match spec.stop {
        StopCondition::TotalOps(n) => n,
        StopCondition::Duration(_) => u64::MAX,
    };
    // A worker that departs mid-trial never reaches the lockstep window
    // close (its stats are snapshotted at the fault site), so it must not be
    // waited for. `fault_for` assigns at most one fault per tid.
    let planned_departures = (0..spec.threads)
        .filter(|&t| {
            spec.fault_plan
                .as_ref()
                .and_then(|p| p.fault_for(t))
                .is_some_and(|f| matches!(f.kind, FaultKind::Depart))
        })
        .count();
    let shared = Arc::new(SharedState {
        start: Barrier::new(spec.threads + usize::from(spec.stalled_thread) + 1),
        stop: AtomicBool::new(false),
        ops_done: AtomicU64::new(0),
        ops_budget,
        track_ops: ops_budget != u64::MAX || spec.fault_plan.is_some(),
        expected_finishers: spec.threads - planned_departures,
        finished: AtomicUsize::new(0),
    });

    let mut handles = Vec::new();
    for t in 0..spec.threads {
        let ds = Arc::clone(ds);
        let shared = Arc::clone(&shared);
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || worker(&*ds, &shared, &spec, t)));
    }
    if spec.stalled_thread {
        let ds = Arc::clone(ds);
        let shared = Arc::clone(&shared);
        let stall_tid = spec.threads;
        handles.push(std::thread::spawn(move || {
            stalled_worker(&*ds, &shared, stall_tid)
        }));
    }

    // Release the workers and time the measured portion.
    shared.start.wait();
    let started = Instant::now();
    match spec.stop {
        StopCondition::Duration(d) => {
            std::thread::sleep(d);
            shared.stop.store(true, Ordering::SeqCst);
        }
        StopCondition::TotalOps(_) => {
            // Workers flip the stop flag themselves once the budget is hit.
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    let mut total_ops = 0u64;
    let mut totals = ThreadStats::default();
    for h in handles {
        let (ops, stats) = h.join().expect("worker panicked");
        total_ops += ops;
        totals += stats;
    }
    let duration = started.elapsed();

    let mops = total_ops as f64 / duration.as_secs_f64() / 1.0e6;
    let (injected_faults, departed_workers) = match &spec.fault_plan {
        Some(plan) => (
            plan.faults()
                .iter()
                .filter(|f| f.victim < spec.threads)
                .count(),
            plan.faults()
                .iter()
                .filter(|f| f.victim < spec.threads && matches!(f.kind, FaultKind::Depart))
                .count(),
        ),
        None => (0, 0),
    };
    TrialResult {
        ds: DS::variant_name(),
        smr: S::NAME,
        mix: spec.mix.label(),
        key_range: spec.key_range,
        threads: spec.threads,
        total_ops,
        duration,
        mops,
        smr_totals: totals,
        peak_mem_bytes: alloc_track::peak_bytes(),
        stalled_thread: spec.stalled_thread,
        injected_faults,
        departed_workers,
    }
}

/// Runs one trial of `spec` with data structure `DS` under reclaimer `S`:
/// build, prefill, measure.
pub fn run_trial<S, DS>(spec: &WorkloadSpec, config: SmrConfig) -> TrialResult
where
    S: Smr,
    DS: Buildable<S> + Send + Sync,
{
    let ds = build_and_prefill::<S, DS>(spec, config);
    run_trial_on::<S, DS>(&ds, spec)
}

/// Prefills the structure to `spec.prefill` keys using the highest thread slots
/// (so they do not collide with the worker tids used afterwards).
fn prefill<S, DS>(ds: &Arc<DS>, spec: &WorkloadSpec)
where
    S: Smr,
    DS: Buildable<S> + Send + Sync,
{
    if spec.prefill == 0 {
        return;
    }
    let target = spec.prefill;
    let fillers = 2usize.min(spec.threads.max(1));
    let inserted = Arc::new(AtomicU64::new(0));
    let max_threads = ds.smr().config().max_threads;
    let mut handles = Vec::new();
    for f in 0..fillers {
        let ds = Arc::clone(ds);
        let inserted = Arc::clone(&inserted);
        let spec = spec.clone();
        let tid = max_threads - 1 - f;
        handles.push(std::thread::spawn(move || {
            let mut ctx = ds.smr().register(tid);
            let mut gen = OpGenerator::new(&spec, 1000 + f);
            while inserted.load(Ordering::Relaxed) < target {
                let key = gen.next_key();
                if ds.insert(&mut ctx, key) {
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            }
            ds.smr().flush(&mut ctx);
            ds.smr().unregister(&mut ctx);
        }));
    }
    for h in handles {
        h.join().expect("prefill thread panicked");
    }
}

/// Every `OP_SAMPLE_PERIOD`-th operation is latency-sampled into the worker's
/// tier-1 histogram (two clock reads per sample; ~1/64 of ops — roughly 1 ns
/// amortized per op at a 30 ns clock read, measured below 1% of throughput in
/// the `--ab` A/B). Sampling avoids perturbing the hot loop while still
/// collecting tens of thousands of samples per 300 ms trial at Mops rates.
pub const OP_SAMPLE_PERIOD: u64 = 64;

/// One worker thread: run operations until the stop condition fires,
/// executing the thread's assigned fault (if any) at a batch boundary.
fn worker<S, DS>(
    ds: &DS,
    shared: &SharedState,
    spec: &WorkloadSpec,
    tid: usize,
) -> (u64, ThreadStats)
where
    S: Smr,
    DS: Buildable<S>,
{
    let mut ctx = ds.smr().register(tid);
    let mut gen = OpGenerator::new(spec, tid);
    let mut fault: Option<FaultSpec> = spec.fault_plan.as_ref().and_then(|p| p.fault_for(tid));
    let sample_ops = spec.telemetry;
    let mut op_hist = Histo::default();
    shared.start.wait();
    let mut ops = 0u64;
    loop {
        // Check the stop condition every batch to keep overhead low.
        const BATCH: u64 = 64;
        for i in 0..BATCH {
            let sw = telemetry::stopwatch_if(sample_ops && (ops + i) % OP_SAMPLE_PERIOD == 0);
            match gen.next_op() {
                Op::Insert(k) => {
                    ds.insert(&mut ctx, k);
                }
                Op::Remove(k) => {
                    ds.remove(&mut ctx, k);
                }
                Op::Contains(k) => {
                    ds.contains(&mut ctx, k);
                }
            }
            if let Some(sw) = sw {
                op_hist.record(sw.elapsed_ns());
            }
        }
        ops += BATCH;
        if let Some(f) = fault {
            if ops >= f.at_op {
                fault = None;
                match f.kind {
                    FaultKind::Depart => {
                        // Departure without quiescing: no flush, the current
                        // limbo bag is handed to the orphan pool by
                        // `unregister` and survivors adopt it at their next
                        // scan. The worker's ops still count.
                        trace::emit(tid, TraceKind::FaultDepart, ops, 0);
                        let mut stats = ds.smr().thread_stats(&ctx);
                        stats.tel.op += op_hist;
                        ds.smr().unregister(&mut ctx);
                        return (ops, stats);
                    }
                    FaultKind::Stall { for_ops } => {
                        trace::emit(tid, TraceKind::FaultStall, for_ops, 0);
                        park_in_read_phase(ds.smr(), &mut ctx, shared, for_ops, true);
                        trace::emit(tid, TraceKind::FaultParkEnd, 0, 0);
                    }
                    FaultKind::BlackholePings { for_ops } => {
                        trace::emit(tid, TraceKind::FaultBlackhole, for_ops, 0);
                        park_in_read_phase(ds.smr(), &mut ctx, shared, for_ops, false);
                        trace::emit(tid, TraceKind::FaultParkEnd, 1, 0);
                    }
                }
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if shared.track_ops {
            let done = shared.ops_done.fetch_add(BATCH, Ordering::AcqRel) + BATCH;
            if done >= shared.ops_budget {
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
    let mut stats = ds.smr().thread_stats(&ctx);
    stats.tel.op += op_hist;
    // Counted window closed — hold the registry steady (keep acknowledging
    // pings, don't unregister) until every surviving worker has snapshotted
    // its stats too. See `SharedState::finished`.
    shared.finish_counting(|| {
        let _ = ds.smr().checkpoint(&mut ctx);
    });
    ds.smr().unregister(&mut ctx);
    (ops, stats)
}

/// The stall/black-hole fault body: open an operation and a read phase
/// (pinning the epoch for EBR-family reclaimers, announcing restartability
/// for NBR) and park until `for_ops` further operations complete globally or
/// the trial stops. With `ack_pings` the victim keeps servicing
/// neutralization checkpoints while parked (a descheduled-but-signalable
/// thread); without, it acknowledges nothing (a black hole) and the peers'
/// `await_acks` degradation path is on trial.
fn park_in_read_phase<S: Smr>(
    smr: &S,
    ctx: &mut S::ThreadCtx,
    shared: &SharedState,
    for_ops: u64,
    ack_pings: bool,
) {
    let resume_at = shared
        .ops_done
        .load(Ordering::Acquire)
        .saturating_add(for_ops);
    smr.begin_op(ctx);
    smr.begin_read_phase(ctx);
    while shared.ops_done.load(Ordering::Acquire) < resume_at
        && !shared.stop.load(Ordering::Acquire)
    {
        if ack_pings {
            let _ = smr.checkpoint(ctx);
        }
        std::thread::yield_now();
    }
    smr.end_read_phase(ctx, &[]);
    smr.end_op(ctx);
}

/// The E2 stalled thread: begins an operation (pinning the epoch for
/// EBR-family reclaimers) and sleeps for the whole trial. It keeps executing
/// neutralization checkpoints while asleep, which models what a real POSIX
/// signal does to a sleeping thread (interrupts the sleep and longjmps out of
/// the read phase) — see DESIGN.md, substitution S1.
fn stalled_worker<S, DS>(ds: &DS, shared: &SharedState, tid: usize) -> (u64, ThreadStats)
where
    S: Smr,
    DS: Buildable<S>,
{
    let smr = ds.smr();
    let mut ctx = smr.register(tid);
    // Pin *before* the start barrier: the E2 scenario is "a reader stalled
    // for the whole trial", so the reservation must cover every record the
    // workers retire. Entering the op after the barrier instead would race
    // the workers for the first quantum — on a single-core host the stalled
    // thread can be starved deep into the run, leaving a long unpinned
    // prefix that reclamation legitimately frees and turning the
    // does-not-bound assertions for the epoch family into a coin flip.
    smr.begin_op(&mut ctx);
    smr.begin_read_phase(&mut ctx);
    shared.start.wait();
    // The reservation is held not just until the stop flag but until every
    // worker has closed its counted stats window: lifting the pin while the
    // last worker is still draining its op batch would let that worker's
    // final scans free the pinned backlog inside the counted window.
    while !shared.stop.load(Ordering::Acquire)
        || shared.finished.load(Ordering::Acquire) < shared.expected_finishers
    {
        // The cooperative analogue of the signal arriving during sleep(): the
        // stalled thread holds no pointers, so acknowledging is always safe and
        // happens promptly (a real POSIX signal would interrupt the sleep and
        // run the handler immediately).
        let _ = smr.checkpoint(&mut ctx);
        std::thread::yield_now();
    }
    smr.end_read_phase(&mut ctx, &[]);
    smr.end_op(&mut ctx);
    let stats = smr.thread_stats(&ctx);
    smr.unregister(&mut ctx);
    (0, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMix;
    use conc_ds::{DgtTree, LazyList};
    use nbr::NbrPlus;
    use smr_baselines::Debra;

    fn small_config() -> SmrConfig {
        SmrConfig::default()
            .with_max_threads(16)
            .with_watermarks(256, 64)
    }

    #[test]
    fn ops_budget_trial_completes() {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            256,
            2,
            StopCondition::TotalOps(20_000),
        )
        .with_prefill(128);
        let r = run_trial::<NbrPlus, LazyList<NbrPlus>>(&spec, small_config());
        assert!(r.total_ops >= 20_000);
        assert!(r.mops > 0.0);
        assert_eq!(r.threads, 2);
        assert_eq!(r.ds, "lazy-list");
        assert_eq!(r.smr, "NBR+");
    }

    #[test]
    fn duration_trial_completes() {
        let spec = WorkloadSpec::new(
            WorkloadMix::BALANCED,
            4096,
            2,
            StopCondition::Duration(Duration::from_millis(50)),
        );
        let r = run_trial::<Debra, DgtTree<Debra>>(&spec, small_config());
        assert!(r.total_ops > 0);
        assert!(r.duration >= Duration::from_millis(45));
        assert_eq!(r.mix, "25i-25d");
    }

    #[test]
    fn stalled_thread_trial_reports_garbage_difference() {
        // With a stalled thread, DEBRA must accumulate garbage; NBR+ must not
        // (beyond its watermark bound). This is the core of experiment E2.
        let mk_spec = || {
            WorkloadSpec::new(
                WorkloadMix::UPDATE_HEAVY,
                4096,
                2,
                StopCondition::TotalOps(60_000),
            )
            .with_stalled_thread(true)
        };
        let debra = run_trial::<Debra, DgtTree<Debra>>(&mk_spec(), small_config());
        let nbrp = run_trial::<NbrPlus, DgtTree<NbrPlus>>(&mk_spec(), small_config());
        assert!(debra.stalled_thread && nbrp.stalled_thread);
        let cfg = small_config();
        let bound = (cfg.hi_watermark + cfg.max_reservations * cfg.max_threads) as u64
            * (nbrp.threads as u64 + 1);
        assert!(
            nbrp.outstanding_garbage() <= bound,
            "NBR+ garbage {} must stay within the bound {}",
            nbrp.outstanding_garbage(),
            bound
        );
        assert!(
            debra.outstanding_garbage() > nbrp.outstanding_garbage(),
            "DEBRA ({}) must hold more garbage than NBR+ ({}) when a thread stalls",
            debra.outstanding_garbage(),
            nbrp.outstanding_garbage()
        );
    }

    #[test]
    fn hm_norestart_wrapper_builds_original_variant() {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            128,
            2,
            StopCondition::TotalOps(10_000),
        )
        .with_prefill(64);
        let r = run_trial::<Debra, HmListNoRestart<Debra>>(&spec, small_config());
        assert_eq!(r.ds, "hm-list-norestart");
        assert!(r.total_ops >= 10_000);
    }
}
