//! A counting global allocator for the peak-memory experiments (E2).
//!
//! The paper measures "max resident memory" of the whole process (Figures 4c
//! and 4d). The portable equivalent used here is *peak live heap bytes*: a
//! wrapper around the system allocator that tracks current and peak
//! outstanding allocation. Benchmark binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: smr_harness::alloc_track::CountingAlloc = smr_harness::alloc_track::CountingAlloc;
//! ```
//!
//! The counters are process-global statics, so the harness can read them even
//! though the allocator is installed by the binary, and they cost two relaxed
//! atomic RMWs per allocation — negligible next to the allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak heap usage.
pub struct CountingAlloc;

// SAFETY: defers to `System` for every allocation; the layout contracts are
// passed through unchanged, counters are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ENABLED.store(1, Ordering::Relaxed);
            TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
            let now = CURRENT_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let now = CURRENT_BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + (new_size - layout.size());
                PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// True when the counting allocator is installed in this process (at least one
/// allocation has gone through it).
pub fn is_installed() -> bool {
    ENABLED.load(Ordering::Relaxed) != 0
}

/// Bytes currently allocated and not yet freed.
pub fn current_bytes() -> usize {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// Highest value `current_bytes` has reached since the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Total number of allocations observed.
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size (called between trials so each
/// trial reports its own peak).
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so only the arithmetic
    // of the counters can be exercised directly.
    #[test]
    fn counters_start_consistent() {
        let before = peak_bytes();
        reset_peak();
        assert!(peak_bytes() <= before.max(current_bytes()));
    }

    #[test]
    fn manual_accounting_roundtrip() {
        // Simulate what alloc/dealloc do to the counters.
        let sz = 4096usize;
        let now = CURRENT_BYTES.fetch_add(sz, Ordering::Relaxed) + sz;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        assert!(peak_bytes() >= sz);
        CURRENT_BYTES.fetch_sub(sz, Ordering::Relaxed);
        reset_peak();
        assert!(peak_bytes() <= now);
    }
}
