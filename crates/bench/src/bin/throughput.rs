//! `throughput` — the machine-readable perf-trajectory harness.
//!
//! Runs the read-mostly list matrix (scheme × structure × key range at the CI
//! thread count) and writes one JSON document per invocation. The output is
//! committed as `BENCH_<pr>.json` at the repo root so every perf-oriented PR
//! leaves a comparable record; pass `--baseline <prior.json>` to embed the
//! prior run's numbers and per-cell speedups in the new document.
//!
//! ```text
//! cargo run -p nbr-bench --release --bin throughput -- \
//!     [--out BENCH_2.json] [--baseline old.json] [--trials 3] \
//!     [--millis 300] [--threads N] [--tiny] [--label note]
//! ```
//!
//! Each cell is emitted on its own line with a stable `key`
//! (`scheme|structure|mix|r<range>|t<threads>`), which is what the baseline
//! parser keys on — keep the format line-oriented.

use smr_common::SmrConfig;
use smr_harness::families::{HarrisListFamily, HmListRestartFamily};
use smr_harness::{run_with, SmrKind, StopCondition, TrialResult, WorkloadMix, WorkloadSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

struct Args {
    out: String,
    baseline: Option<String>,
    trials: usize,
    millis: u64,
    threads: usize,
    key_ranges: Vec<u64>,
    label: String,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_2.json".to_string(),
        baseline: None,
        trials: 3,
        millis: 300,
        threads: default_threads(),
        key_ranges: vec![200, 2_048],
        label: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--trials" => args.trials = val("--trials").parse().expect("--trials"),
            "--millis" => args.millis = val("--millis").parse().expect("--millis"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--label" => args.label = val("--label"),
            "--tiny" => {
                // CI smoke scale: one short trial, one key range.
                args.trials = 1;
                args.millis = 40;
                args.key_ranges = vec![200];
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// One measured cell of the matrix.
struct Cell {
    key: String,
    scheme: &'static str,
    ds: &'static str,
    mops: f64,
    peak_limbo: u64,
    retires: u64,
    frees: u64,
}

fn cell_key(r: &TrialResult) -> String {
    format!(
        "{}|{}|{}|r{}|t{}",
        r.smr, r.ds, r.mix, r.key_range, r.threads
    )
}

/// Extracts `"key": mops` pairs (plus peak limbo) from a prior run's JSON.
/// The format is line-oriented by construction, so a full JSON parser is not
/// needed: every cell line carries `"key":"..."` and `"mops":<f64>`.
fn parse_baseline(text: &str) -> BTreeMap<String, (f64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(key) = extract_str(line, "\"key\":\"") else {
            continue;
        };
        let Some(mops) = extract_num(line, "\"mops\":") else {
            continue;
        };
        let peak = extract_num(line, "\"peak_limbo\":").unwrap_or(0.0) as u64;
        out.insert(key, (mops, peak));
    }
    out
}

/// Escapes a user-supplied string for embedding in a JSON string literal
/// (`--label` is free text; every other interpolated string is a fixed
/// scheme/structure label).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn extract_str(line: &str, tag: &str) -> Option<String> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, tag: &str) -> Option<f64> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_cell<F: smr_harness::DsFamily>(kind: SmrKind, key_range: u64, args: &Args) -> Cell {
    let spec = WorkloadSpec::new(
        WorkloadMix::READ_HEAVY,
        key_range,
        args.threads,
        StopCondition::Duration(Duration::from_millis(args.millis)),
    );
    let config = SmrConfig::default()
        .with_max_threads(args.threads + 4)
        .with_watermarks(1024, 256)
        .with_signal_cost_ns(2_000);
    // Best-of-N to damp scheduler noise on small CI machines.
    let mut best: Option<TrialResult> = None;
    for _ in 0..args.trials.max(1) {
        let r = run_with::<F>(kind, &spec, config.clone());
        if best.as_ref().map(|b| r.mops > b.mops).unwrap_or(true) {
            best = Some(r);
        }
    }
    let r = best.expect("at least one trial ran");
    eprintln!(
        "  {:<28} {:>8.3} Mops/s  peak_limbo={} retired={} freed={}",
        cell_key(&r),
        r.mops,
        r.smr_totals.peak_limbo,
        r.smr_totals.retires,
        r.smr_totals.frees
    );
    Cell {
        key: cell_key(&r),
        scheme: r.smr,
        ds: r.ds,
        mops: r.mops,
        peak_limbo: r.smr_totals.peak_limbo,
        retires: r.smr_totals.retires,
        frees: r.smr_totals.frees,
    }
}

fn main() {
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        parse_baseline(&text)
    });

    let schemes = SmrKind::all();
    let mut cells = Vec::new();
    for &key_range in &args.key_ranges {
        for &kind in schemes {
            cells.push(run_cell::<HarrisListFamily>(kind, key_range, &args));
            cells.push(run_cell::<HmListRestartFamily>(kind, key_range, &args));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"harness\": \"throughput\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&args.label));
    let _ = writeln!(out, "  \"mix\": \"5i-5d\",");
    let _ = writeln!(out, "  \"threads\": {},", args.threads);
    let _ = writeln!(out, "  \"trials\": {},", args.trials);
    let _ = writeln!(out, "  \"trial_millis\": {},", args.millis);
    let _ = writeln!(out, "  \"cells\": [");
    let n = cells.len();
    for (i, c) in cells.iter().enumerate() {
        let mut line = format!(
            "    {{\"key\":\"{}\",\"scheme\":\"{}\",\"ds\":\"{}\",\"mops\":{:.4},\"peak_limbo\":{},\"retires\":{},\"frees\":{}",
            c.key, c.scheme, c.ds, c.mops, c.peak_limbo, c.retires, c.frees
        );
        if let Some(base) = &baseline {
            if let Some(&(bm, bp)) = base.get(&c.key) {
                let _ = write!(
                    line,
                    ",\"baseline_mops\":{:.4},\"baseline_peak_limbo\":{},\"speedup\":{:.4}",
                    bm,
                    bp,
                    if bm > 0.0 { c.mops / bm } else { 0.0 }
                );
            }
        }
        let _ = write!(line, "}}{}", if i + 1 < n { "," } else { "" });
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    if let Some(base) = &baseline {
        let improved: Vec<&Cell> = cells
            .iter()
            .filter(|c| {
                base.get(&c.key)
                    .map(|&(bm, _)| bm > 0.0 && c.mops / bm >= 1.10)
                    .unwrap_or(false)
            })
            .collect();
        eprintln!(
            "cells ≥ 1.10x over baseline: {} of {}",
            improved.len(),
            cells.len()
        );
        for c in improved {
            let (bm, _) = base[&c.key];
            eprintln!(
                "  {}: {:.3} → {:.3} ({:.2}x)",
                c.key,
                bm,
                c.mops,
                c.mops / bm
            );
        }
    }
}
