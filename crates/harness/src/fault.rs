//! Fault-injection adversary: seeded plans of stalls, departures and
//! black-holed pings (ROADMAP direction 4, "preemption adversary").
//!
//! A [`FaultPlan`] names, per victim thread, one fault and the operation
//! count at which it fires. The [`driver`](crate::driver) checks the plan at
//! every batch boundary, so faults land at instrumented checkpoints — the
//! same places a real preemption or crash would be observed by the
//! reclaimer. Plans are pure functions of their seed: printing the seed is
//! enough to replay a failing cell (the CI `fault-smoke` job pins its
//! seeds for exactly this reason).
//!
//! The three fault kinds probe three different degradation paths:
//!
//! * [`FaultKind::Stall`] — the victim parks *inside* an operation (epoch
//!   pinned, read phase open) but keeps servicing neutralization
//!   checkpoints, like a thread descheduled on a core that still handles
//!   signals. Probes garbage bounds: robust schemes (HP/IBR/HE/WFE, NBR via
//!   neutralization) stay bounded, the EBR family grows.
//! * [`FaultKind::BlackholePings`] — a stall that additionally never
//!   acknowledges pings, like a thread wedged in the kernel with signals
//!   blocked. Probes `PingChannel::await_acks` degradation: the victim must
//!   cost one conceded window with exponentially shrinking re-checks, not a
//!   full `ack_spin_limit` spin on every scan.
//! * [`FaultKind::Depart`] — the victim abandons the trial mid-operation:
//!   no flush, no quiescing, just context unregistration. Probes the orphan
//!   handoff — the departing thread's limbo bag must flow through the
//!   `OrphanPool` to survivors, its magazines back to the depot, and its
//!   ping slot must be permanently exempted.

use std::fmt;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Park inside an open operation until roughly `for_ops` further
    /// operations complete globally, servicing checkpoints while parked.
    Stall {
        /// Global operations to stay parked for.
        for_ops: u64,
    },
    /// Like [`FaultKind::Stall`], but never acknowledge pings while parked.
    BlackholePings {
        /// Global operations to stay parked for.
        for_ops: u64,
    },
    /// Leave the trial mid-operation: unregister without flushing and exit.
    Depart,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Stall { for_ops } => write!(f, "stall({for_ops})"),
            FaultKind::BlackholePings { for_ops } => write!(f, "blackhole({for_ops})"),
            FaultKind::Depart => write!(f, "depart"),
        }
    }
}

/// One fault bound to a victim thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Worker tid the fault fires on.
    pub victim: usize,
    /// The victim's local operation count at which the fault fires (checked
    /// at batch boundaries, so it lands on the next multiple of the batch).
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}:{}", self.victim, self.at_op, self.kind)
    }
}

/// A full trial's worth of faults: at most one per victim, never all
/// threads, so the trial always keeps at least one unfaulted worker making
/// progress (a plan that stalled or departed everyone could never finish an
/// operation-budget trial).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    faults: Vec<FaultSpec>,
}

/// xorshift64* — tiny, deterministic, good enough for picking victims.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// A plan with a single hand-chosen fault.
    pub fn single(victim: usize, at_op: u64, kind: FaultKind) -> Self {
        Self {
            seed: 0,
            faults: vec![FaultSpec {
                victim,
                at_op,
                kind,
            }],
        }
    }

    /// Adds one more hand-chosen fault to the plan. Panics if the victim
    /// already has a fault — plans carry at most one fault per thread.
    pub fn with(mut self, victim: usize, at_op: u64, kind: FaultKind) -> Self {
        assert!(
            self.fault_for(victim).is_none(),
            "victim t{victim} already has a fault"
        );
        self.faults.push(FaultSpec {
            victim,
            at_op,
            kind,
        });
        self
    }

    /// Derives a plan from a seed for a trial with `threads` workers: 1 to
    /// `threads - 1` faults on distinct victims (at least one worker always
    /// survives unfaulted), firing between 256 and ~4k local operations in,
    /// parked for 1k–8k global operations. Pure in `seed` — the same seed
    /// always replays the same plan.
    pub fn seeded(seed: u64, threads: usize) -> Self {
        assert!(threads >= 2, "fault plans need at least 2 workers");
        let mut rng = seed | 1; // xorshift must not start at 0
        let max_faults = (threads - 1).min(3);
        let n = 1 + (xorshift(&mut rng) as usize) % max_faults;
        let mut victims: Vec<usize> = (0..threads).collect();
        // Partial Fisher-Yates: the first n entries become the victims.
        for i in 0..n {
            let j = i + (xorshift(&mut rng) as usize) % (threads - i);
            victims.swap(i, j);
        }
        let faults = victims[..n]
            .iter()
            .map(|&victim| {
                let at_op = 256 * (1 + xorshift(&mut rng) % 16);
                let for_ops = 1024 * (1 + xorshift(&mut rng) % 8);
                let kind = match xorshift(&mut rng) % 3 {
                    0 => FaultKind::Stall { for_ops },
                    1 => FaultKind::BlackholePings { for_ops },
                    _ => FaultKind::Depart,
                };
                FaultSpec {
                    victim,
                    at_op,
                    kind,
                }
            })
            .collect();
        Self { seed, faults }
    }

    /// The fault assigned to `tid`, if any.
    pub fn fault_for(&self, tid: usize) -> Option<FaultSpec> {
        self.faults.iter().copied().find(|f| f.victim == tid)
    }

    /// All faults in the plan.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of [`FaultKind::Depart`] faults (workers that will leave).
    pub fn departures(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Depart))
            .count()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={:#x}[", self.seed)?;
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(0xDEAD_BEEF, 8);
        let b = FaultPlan::seeded(0xDEAD_BEEF, 8);
        assert_eq!(a.faults(), b.faults());
        let c = FaultPlan::seeded(0xDEAD_BEF0, 8);
        // Different seeds almost surely differ; this seed pair does.
        assert_ne!(a.faults(), c.faults());
    }

    #[test]
    fn seeded_plans_leave_a_survivor_on_distinct_victims() {
        for seed in 0..200u64 {
            for threads in 2..8usize {
                let plan = FaultPlan::seeded(seed, threads);
                assert!(!plan.faults().is_empty());
                assert!(
                    plan.faults().len() < threads,
                    "seed {seed} threads {threads}: every worker faulted"
                );
                let mut victims: Vec<_> = plan.faults().iter().map(|f| f.victim).collect();
                victims.sort_unstable();
                victims.dedup();
                assert_eq!(victims.len(), plan.faults().len(), "duplicate victim");
                assert!(victims.iter().all(|&v| v < threads));
            }
        }
    }

    #[test]
    fn display_is_replayable_shorthand() {
        let plan = FaultPlan::single(2, 512, FaultKind::BlackholePings { for_ops: 1024 });
        assert_eq!(format!("{plan}"), "seed=0x0[t2@512:blackhole(1024)]");
        assert_eq!(
            format!(
                "{}",
                FaultSpec {
                    victim: 0,
                    at_op: 64,
                    kind: FaultKind::Depart
                }
            ),
            "t0@64:depart"
        );
    }
}
