//! Property-based tests (proptest) for the tier-1 latency histogram.
//!
//! The histogram is the foundation of every latency number the harness
//! reports, so its contract is pinned against a sorted-vector oracle:
//!
//! 1. percentiles are monotone in the quantile,
//! 2. merging per-thread histograms (`+=`) is commutative and equivalent to
//!    recording every sample into one histogram in any order, and
//! 3. each percentile brackets the oracle's exact order statistic from above
//!    within the documented ≤2× bucket error, and `percentile(1.0)` is the
//!    exact maximum.

use proptest::collection::vec;
use proptest::prelude::*;
use smr_common::telemetry::Histo;

fn histo_of(samples: &[u64]) -> Histo {
    let mut h = Histo::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Exact order statistic the bucketed percentile approximates: the sample at
/// ceil(q * n) in sorted order (1-indexed), i.e. the smallest value v such
/// that at least a q-fraction of samples are ≤ v.
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Nanosecond-ish sample spread: mixes sub-microsecond fast-path values with
/// occasional multi-millisecond stalls so both ends of the bucket range are
/// exercised.
fn sample() -> impl Strategy<Value = u64> {
    (0u64..1 << 22, 0u8..8).prop_map(|(v, shift)| v << (shift * 4))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn percentiles_are_monotone_in_q(samples in vec(sample(), 1..300)) {
        let h = histo_of(&samples);
        let qs = [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for q in qs {
            let p = h.percentile(q);
            assert!(
                p >= prev,
                "percentile({q}) = {p} < percentile at the previous quantile {prev}"
            );
            prev = p;
        }
    }

    #[test]
    fn merge_is_commutative_and_order_free(
        left in vec(sample(), 0..150),
        right in vec(sample(), 0..150),
    ) {
        let (hl, hr) = (histo_of(&left), histo_of(&right));

        let mut lr = hl;
        lr += hr;
        let mut rl = hr;
        rl += hl;
        assert_eq!(lr, rl, "a += b and b += a must agree bucket-for-bucket");

        // Merging per-thread histograms must equal recording the union of
        // samples into one histogram — interleaving order included.
        let mut joined: Vec<u64> = Vec::with_capacity(left.len() + right.len());
        for i in 0..left.len().max(right.len()) {
            if let Some(&v) = right.get(i) {
                joined.push(v);
            }
            if let Some(&v) = left.get(i) {
                joined.push(v);
            }
        }
        assert_eq!(lr, histo_of(&joined));
        assert_eq!(lr.count(), (left.len() + right.len()) as u64);
    }

    #[test]
    fn percentiles_bracket_the_sorted_oracle(samples in vec(sample(), 1..300)) {
        let h = histo_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [0.50, 0.90, 0.99, 0.999] {
            let exact = oracle_percentile(&sorted, q);
            let approx = h.percentile(q);
            // Documented contract: never an under-estimate, at most the
            // covering power-of-two bucket's upper bound (≤ 2v + 1), and
            // never past the true maximum.
            assert!(
                approx >= exact,
                "percentile({q}) = {approx} under-estimates the oracle {exact}"
            );
            assert!(
                approx <= (2 * exact + 1).min(*sorted.last().unwrap()).max(exact),
                "percentile({q}) = {approx} exceeds the 2x bucket bound for oracle {exact}"
            );
        }

        assert_eq!(h.percentile(1.0), *sorted.last().unwrap());
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.count(), samples.len() as u64);
    }
}
