//! # nbr-bench — benchmark targets regenerating the paper's figures
//!
//! Two kinds of targets:
//!
//! * **Criterion benches** (`benches/fig*.rs`, `benches/ablation_nbr.rs`) —
//!   one per figure of the evaluation, run with `cargo bench`. They use
//!   CI-scale parameters (small key ranges, few threads) so a full
//!   `cargo bench --workspace` finishes in minutes; they demonstrate the
//!   *shape* of each comparison, not the paper's absolute numbers.
//! * **Binaries**:
//!   * `experiments` — runs any subset of E1–E4 / Fig 5–8 at `--quick` or
//!     `--full` scale and prints the tables recorded in `EXPERIMENTS.md`.
//!   * `applicability` — prints Table 1 (the SMR × data-structure
//!     applicability matrix) together with the usability (extra lines of code)
//!     comparison of Section 5.3.
//!
//! The mapping from figures to targets is indexed in `DESIGN.md`.

pub mod helpers {
    //! Shared plumbing for the Criterion benches.

    use smr_common::SmrConfig;
    use smr_harness::{
        build_prefilled, DsFamily, PrefilledTrial, SmrKind, StopCondition, WorkloadMix,
        WorkloadSpec,
    };
    use std::time::Duration;

    /// Operations per Criterion "iteration".
    pub const OPS_PER_ITER: u64 = 1_000;

    /// Number of worker threads used by the criterion benches (kept at the
    /// host's core count).
    pub fn bench_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }

    /// SMR configuration for the benches.
    pub fn bench_config() -> SmrConfig {
        SmrConfig::default()
            .with_max_threads(bench_threads() + 6)
            .with_watermarks(1024, 256)
            .with_signal_cost_ns(2_000)
    }

    /// A workload spec that runs `iters * OPS_PER_ITER` operations.
    pub fn spec_for_iters(
        mix: WorkloadMix,
        key_range: u64,
        threads: usize,
        iters: u64,
    ) -> WorkloadSpec {
        WorkloadSpec::new(
            mix,
            key_range,
            threads,
            StopCondition::TotalOps(iters.max(1) * OPS_PER_ITER),
        )
    }

    /// The reclaimer subset used by the throughput benches (keeps
    /// `cargo bench` time reasonable while covering every family, including
    /// the Publish-on-Ping schemes — ROADMAP follow-up from PR 3: they run
    /// in the paper-figure benches via the shared `PrefilledTrial` path, not
    /// just in `throughput`/`stress`/tests).
    pub fn bench_smr_set() -> &'static [SmrKind] {
        &[
            SmrKind::NbrPlus,
            SmrKind::Nbr,
            SmrKind::Debra,
            SmrKind::Ibr,
            SmrKind::Wfe,
            SmrKind::Hp,
            SmrKind::EpochPop,
            SmrKind::HpPop,
            SmrKind::Leaky,
        ]
    }

    /// Criterion settings shared by all throughput benches.
    pub fn criterion_times() -> (usize, Duration, Duration) {
        (10, Duration::from_millis(300), Duration::from_millis(900))
    }

    /// Builds one prefilled structure of family `F` per reclaimer in `kinds`,
    /// each reusable across operation mixes and Criterion samples — so a
    /// bench group prefills once instead of once per measurement (ROADMAP
    /// open item on `cargo bench` wall-clock).
    pub fn prefilled_runners_for<F: DsFamily>(
        kinds: &[SmrKind],
        key_range: u64,
        threads: usize,
    ) -> Vec<(SmrKind, Box<dyn PrefilledTrial>)> {
        kinds
            .iter()
            .map(|&kind| {
                let spec = spec_for_iters(WorkloadMix::UPDATE_HEAVY, key_range, threads, 1);
                (kind, build_prefilled::<F>(kind, &spec, bench_config()))
            })
            .collect()
    }

    /// [`prefilled_runners_for`] over the default bench reclaimer set.
    pub fn prefilled_runners<F: DsFamily>(
        key_range: u64,
        threads: usize,
    ) -> Vec<(SmrKind, Box<dyn PrefilledTrial>)> {
        prefilled_runners_for::<F>(bench_smr_set(), key_range, threads)
    }
}
