//! Shared plumbing for the baseline reclaimers.
//!
//! The global era clock and the deregistration orphan pool moved to
//! `smr-common` (they are shared with the Publish-on-Ping reclaimers in
//! `smr-pop`); this module re-exports them so the baseline modules keep
//! their `crate::util::` imports.

pub use smr_common::{EraClock, OrphanPool};
