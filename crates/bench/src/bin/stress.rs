//! `stress` — long-running randomized stress driver used for shaking out
//! concurrency bugs (each configuration is announced on stderr before it runs,
//! so a crash identifies the offending combination).
//!
//! ```text
//! cargo run -p nbr-bench --release --bin stress -- [rounds] [--faults [seed]]
//! ```
//!
//! With `--faults`, each round also runs the standing fault cells: every
//! scheme under a seeded [`FaultPlan`] of stalls, departures and black-holed
//! pings. The plan's seed is printed with each cell, so any crash or hang is
//! replayable by passing that seed back on the command line.

use smr_common::SmrConfig;
use smr_harness::families::{run_with, HarrisListFamily, SmrKind};
use smr_harness::{report, FaultPlan, StopCondition, WorkloadMix, WorkloadSpec};
use std::time::Duration;

/// One standing fault cell per scheme: a seeded plan over 4 workers, with
/// the per-round seed mixed in so successive rounds explore different plans.
fn fault_cells(round: usize, base_seed: u64) {
    let threads = 4usize;
    for &kind in SmrKind::all() {
        let seed = base_seed
            .wrapping_add(round as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        let plan = FaultPlan::seeded(seed, threads);
        eprintln!(
            "[round {round}] fault-cell harris-list smr={} plan={plan}",
            kind.label()
        );
        report::note(
            "fault-plan",
            &format!(
                "smr={} plan={plan} — replay with: stress --faults {seed:#x}",
                kind.label()
            ),
        );
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            2_048,
            threads,
            StopCondition::TotalOps(200_000),
        )
        .with_fault_plan(plan);
        let config = SmrConfig::default()
            .with_max_threads(threads + 4)
            .with_watermarks(1024, 256)
            .with_signal_cost_ns(2_000);
        let r = run_with::<HarrisListFamily>(kind, &spec, config);
        eprintln!(
            "    ok: {:.3} Mops/s, {} retired, {} freed, {} faults, {} departed",
            r.mops, r.smr_totals.retires, r.smr_totals.frees, r.injected_faults, r.departed_workers
        );
    }
}

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    assert!(
        !smr_common::telemetry::trace_compiled_in(),
        "bench binary built with the smr-common `trace` feature on; measurements would be invalid \
         (use the dedicated `trace` bin for event capture)"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let faults = args.iter().any(|a| a == "--faults");
    let fault_seed: u64 = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0x5EED_FA17);
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Wfe,
        SmrKind::EpochPop,
        SmrKind::HpPop,
        SmrKind::Leaky,
    ];
    let sizes = [200u64, 2_048];
    let mixes = [
        WorkloadMix::UPDATE_HEAVY,
        WorkloadMix::BALANCED,
        WorkloadMix::READ_HEAVY,
    ];
    let threads_sweep = [1usize, 2, 4];
    for round in 0..rounds {
        for &size in &sizes {
            for &mix in &mixes {
                for &threads in &threads_sweep {
                    for &kind in &kinds {
                        eprintln!(
                            "[round {round}] harris-list size={size} mix={} threads={threads} smr={}",
                            mix.label(),
                            kind.label()
                        );
                        let spec = WorkloadSpec::new(
                            mix,
                            size,
                            threads,
                            StopCondition::Duration(Duration::from_millis(120)),
                        );
                        let config = SmrConfig::default()
                            .with_max_threads(threads + 4)
                            .with_watermarks(1024, 256)
                            .with_signal_cost_ns(2_000);
                        let r = run_with::<HarrisListFamily>(kind, &spec, config.clone());
                        eprintln!(
                            "    ok: {:.3} Mops/s, {} retired, {} freed",
                            r.mops, r.smr_totals.retires, r.smr_totals.frees
                        );
                        // ISSUE-9 hot-path batching visibility: the combiner
                        // only trips under genuine scan concurrency and the
                        // memo only under a stamp-capable scheme, so the
                        // counters go through the greppable note channel
                        // rather than silently reading 0.
                        if r.smr_totals.combine_publishes > 0 || r.smr_totals.combine_adoptions > 0
                        {
                            report::note(
                                "scan-combining",
                                &format!(
                                    "smr={} {} bags published to the combiner, {} adopted by peer scans",
                                    kind.label(),
                                    r.smr_totals.combine_publishes,
                                    r.smr_totals.combine_adoptions,
                                ),
                            );
                        }
                        if r.smr_totals.memo_hits > 0 || r.smr_totals.memo_misses > 0 {
                            report::note(
                                "lookup-memo",
                                &format!(
                                    "smr={} memo {} hits / {} misses ({:.1}% of validated lookups)",
                                    kind.label(),
                                    r.smr_totals.memo_hits,
                                    r.smr_totals.memo_misses,
                                    100.0 * r.smr_totals.memo_hits as f64
                                        / (r.smr_totals.memo_hits + r.smr_totals.memo_misses)
                                            as f64,
                                ),
                            );
                        }
                        if r.smr_totals.frees == 0 && r.smr_totals.retires > 0 {
                            // A run that frees nothing must say why rather
                            // than silently reporting 0: either the scheme
                            // never reclaims (leaky) or the trial stayed
                            // below every scan trigger.
                            if kind == SmrKind::Leaky {
                                report::note(
                                    "leaky-baseline",
                                    "leaky baseline never reclaims by design",
                                );
                            } else {
                                report::note(
                                    "below-scan-trigger",
                                    &format!(
                                        "0 reclaimed — {} retires stayed below the scan \
                                         trigger (hi_watermark={}, heartbeat={} ops; {} scans ran)",
                                        r.smr_totals.retires,
                                        config.hi_watermark,
                                        config.scan_heartbeat_ops,
                                        r.smr_totals.reclaim_scans,
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
        if faults {
            fault_cells(round, fault_seed);
        }
    }
    println!("stress completed");
}
