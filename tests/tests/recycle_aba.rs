//! Recycling safety: address reuse is the ABA case the birth-era header
//! exists for.
//!
//! A block enters the pool only after the owning scheme's scan proved the
//! old record unreserved, so no thread holds a *protected* pointer to the
//! address when it is re-issued. What recycling must preserve is the
//! interval-based schemes' story about the *new* incarnation: the reused
//! block's `NodeHeader` birth era must be re-stamped with the current global
//! era by `Smr::alloc` before publication. These tests force an address to
//! be recycled under HE and IBR and assert (a) the re-stamp happened and
//! (b) a reader protecting the new incarnation pins it across scans exactly
//! like a fresh allocation.

use smr_baselines::{HazardEras, Ibr};
use smr_common::{Atomic, NodeHeader, Shared, Smr, SmrConfig, SmrNode};
use smr_harness::families::HarrisListFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};
use std::sync::atomic::Ordering;

struct Node {
    header: NodeHeader,
    key: u64,
}
smr_common::impl_smr_node!(Node);

fn node(key: u64) -> Node {
    Node {
        header: NodeHeader::new(),
        key,
    }
}

/// Allocate → retire → flush until `Smr::alloc` hands an address back out
/// again, then return that (recycled) allocation.
fn force_reuse<S: Smr>(smr: &S, ctx: &mut S::ThreadCtx, mk: impl Fn(u64) -> Node) -> Shared<Node> {
    let first = smr.alloc(ctx, mk(1));
    let addr = first.untagged_usize();
    // SAFETY: never published; retire-as-unlinked is the single-owner case.
    unsafe { smr.retire(ctx, first) };
    smr.flush(ctx);
    for round in 0..1_000u64 {
        let p = smr.alloc(ctx, mk(100 + round));
        if p.untagged_usize() == addr {
            return p;
        }
        unsafe { smr.retire(ctx, p) };
        smr.flush(ctx);
    }
    panic!("block was never recycled — is the pool enabled?");
}

#[test]
fn hazard_eras_restamps_birth_era_on_reuse() {
    let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut ctx = smr.register(0);
    // Churn so the era has advanced well past the first allocation's birth.
    for i in 0..64 {
        let p = smr.alloc(&mut ctx, node(i));
        unsafe { smr.retire(&mut ctx, p) };
    }
    smr.flush(&mut ctx);
    let era_before = smr.global_era();
    let reused = force_reuse(&smr, &mut ctx, node);
    let stamped = unsafe { reused.deref().header().birth_era() };
    assert!(
        stamped >= era_before,
        "recycled block must carry a fresh birth era (got {stamped}, era was {era_before}) — \
         a stale era would misdate the new incarnation's lifetime"
    );
    unsafe { smr.retire(&mut ctx, reused) };
    smr.unregister(&mut ctx);
}

#[test]
fn ibr_restamps_birth_era_on_reuse() {
    let smr = Ibr::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut ctx = smr.register(0);
    for i in 0..64 {
        smr.begin_op(&mut ctx);
        let p = smr.alloc(&mut ctx, node(i));
        unsafe { smr.retire(&mut ctx, p) };
        smr.end_op(&mut ctx);
    }
    smr.flush(&mut ctx);
    let era_before = smr.global_era();
    let reused = force_reuse(&smr, &mut ctx, node);
    let stamped = unsafe { reused.deref().header().birth_era() };
    assert!(stamped >= era_before, "got {stamped}, era was {era_before}");
    unsafe { smr.retire(&mut ctx, reused) };
    smr.unregister(&mut ctx);
}

/// The end-to-end regression: a *recycled* record protected by a reader must
/// survive the owner's scans exactly like a fresh one — the re-stamped birth
/// era puts the reader's announced era inside the record's lifetime.
#[test]
fn hazard_eras_does_not_free_protected_recycled_record_early() {
    let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut owner = smr.register(0);
    let mut reader = smr.register(1);

    let reused = force_reuse(&smr, &mut owner, node);
    let reused_addr = reused.untagged_usize();
    let reused_key = unsafe { reused.deref().key };
    let shared = Atomic::<Node>::null();
    shared.store(reused, Ordering::Release);

    // Reader announces an era covering the recycled record's (new) lifetime.
    let p = smr.protect(&mut reader, 0, &shared);
    assert_eq!(p.untagged_usize(), reused_addr);
    assert_eq!(unsafe { p.deref().key }, reused_key);

    // Owner unlinks + retires the recycled record and churns hard.
    let old = shared.swap(Shared::null(), Ordering::AcqRel);
    unsafe { smr.retire(&mut owner, old) };
    for i in 0..200 {
        let f = smr.alloc(&mut owner, node(i));
        unsafe { smr.retire(&mut owner, f) };
    }
    smr.flush(&mut owner);

    // Still protected: the recycled record must not have been freed (a free
    // would recycle the block and the key would be overwritten by the churn
    // allocations above — or ASAN would flag the read).
    assert_eq!(unsafe { p.deref().key }, reused_key);
    assert!(
        smr.limbo_len(&owner) >= 1,
        "protected record must stay in limbo"
    );

    smr.clear_protections(&mut reader);
    smr.flush(&mut owner);
    assert_eq!(smr.limbo_len(&owner), 0, "released record must be freed");

    smr.unregister(&mut reader);
    smr.unregister(&mut owner);
}

/// `--no-recycle` reproduces the pre-pool behaviour: a full driver trial runs
/// green with the pool bypassed and reports zero pool traffic, while the same
/// trial with recycling reports the pool doing the work.
#[test]
fn no_recycle_bypasses_the_pool_end_to_end() {
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        128,
        2,
        StopCondition::TotalOps(20_000),
    )
    .with_prefill(64);
    let base = SmrConfig::default()
        .with_max_threads(8)
        .with_watermarks(128, 32);

    for &kind in &[SmrKind::NbrPlus, SmrKind::Debra, SmrKind::He] {
        let off = run_with::<HarrisListFamily>(kind, &spec, base.clone().with_recycle(false));
        assert_eq!(
            off.smr_totals.pool_hits, 0,
            "{kind:?}: bypass must not pool"
        );
        assert_eq!(off.smr_totals.pool_recycled, 0);
        assert!(
            off.smr_totals.frees > 0,
            "{kind:?}: bypass must still reclaim"
        );

        let on = run_with::<HarrisListFamily>(kind, &spec, base.clone());
        assert!(
            on.smr_totals.pool_recycled > 0,
            "{kind:?}: recycling run must return blocks to the pool"
        );
        assert!(
            on.smr_totals.pool_hits > 0,
            "{kind:?}: recycling run must serve allocations from the pool"
        );
    }
}
