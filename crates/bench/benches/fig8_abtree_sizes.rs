//! Figure 8 (appendix): (a,b)-tree throughput across key-range sizes
//! (the paper sweeps 2 M and 20 M; at CI scale 8 K and 64 K are used).
//! Prints one throughput table per size.

use smr_harness::experiments::{fig8_abtree_sizes, ExperimentScale};
use smr_harness::report;

fn main() {
    let mut scale = ExperimentScale::smoke();
    scale.thread_counts = vec![2];
    let sizes = [8_192u64, 65_536u64];
    let results = fig8_abtree_sizes(&scale, &sizes);
    for &size in &sizes {
        let rows: Vec<_> = results
            .iter()
            .filter(|r| r.key_range == size)
            .cloned()
            .collect();
        println!(
            "{}",
            report::to_table(&format!("Figure 8 — (a,b)-tree, key range {size}"), &rows)
        );
    }
}
