//! Oversubscription (property P4 of the paper): run more threads than
//! hardware cores and watch how each reclaimer degrades.
//!
//! The paper's claim is that NBR+ keeps its performance when the system is
//! oversubscribed (threads > cores), while schemes that depend on every thread
//! making progress (epoch advancement, validation retries) suffer more. This
//! example sweeps 1×, 2× and 4× the core count on the DGT tree.
//!
//! Run with:
//! ```text
//! cargo run -p nbr-bench --release --example oversubscribed
//! ```

use smr_common::SmrConfig;
use smr_harness::families::DgtTreeFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};
use std::time::Duration;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let sweep = [cores, cores * 2, cores * 4];
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Leaky,
    ];

    println!("DGT tree, 50i/50d, key range 32768, core count = {cores}\n");
    println!("{:<10} {:>12} {:>12} {:>12}", "threads", "", "", "");
    print!("{:<10}", "scheme");
    for t in &sweep {
        print!(" {:>11}t", t);
    }
    println!();

    for kind in kinds {
        print!("{:<10}", kind.label());
        for &threads in &sweep {
            let spec = WorkloadSpec::new(
                WorkloadMix::UPDATE_HEAVY,
                32_768,
                threads,
                StopCondition::Duration(Duration::from_millis(300)),
            );
            let config = SmrConfig::default()
                .with_max_threads(threads + 4)
                .with_watermarks(1024, 256);
            let r = run_with::<DgtTreeFamily>(kind, &spec, config);
            print!(" {:>11.3}", r.mops);
        }
        println!();
    }
    println!("\nValues are Mops/s. Expected shape: throughput should not collapse for NBR+ as the");
    println!("thread count exceeds the core count (property P4), while HP pays per-access fences");
    println!("everywhere and the EBR family becomes increasingly sensitive to preempted threads.");
}
