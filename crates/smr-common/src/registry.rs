//! Thread-slot registry.
//!
//! Every SMR algorithm in the paper's model is parameterised by the number of
//! participating threads `N`: NBR keeps an `N × R` reservation array, DEBRA an
//! `N`-entry epoch announcement array, HP an `N × K` hazard array, and so on.
//! The [`Registry`] hands out stable slot indices (`tid`s) to participating
//! threads and tracks which slots are active so scans and `signalAll` know whom
//! to visit.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One registration slot. Padded so that registration churn on one slot does
/// not invalidate its neighbours' cache lines.
#[derive(Debug)]
pub struct ThreadSlot {
    in_use: AtomicBool,
}

impl ThreadSlot {
    fn new() -> Self {
        Self {
            in_use: AtomicBool::new(false),
        }
    }

    /// Whether a thread currently owns this slot.
    #[inline]
    pub fn is_active(&self, order: Ordering) -> bool {
        self.in_use.load(order)
    }
}

/// Fixed-capacity registry assigning slot indices to participating threads.
#[derive(Debug)]
pub struct Registry {
    slots: Vec<CachePadded<ThreadSlot>>,
    registered: AtomicUsize,
}

impl Registry {
    /// Creates a registry with room for `max_threads` concurrent participants.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "registry needs at least one slot");
        Self {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(ThreadSlot::new()))
                .collect(),
            registered: AtomicUsize::new(0),
        }
    }

    /// Maximum number of concurrently registered threads.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently registered threads.
    #[inline]
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::Acquire)
    }

    /// Claims a specific slot index. Panics if the slot is out of range and
    /// returns `false` if it is already owned (callers treat that as a usage
    /// error — the harness assigns distinct tids).
    pub fn register_tid(&self, tid: usize) -> bool {
        assert!(
            tid < self.slots.len(),
            "tid {tid} out of range (max_threads = {})",
            self.slots.len()
        );
        let won = self.slots[tid]
            .in_use
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            self.registered.fetch_add(1, Ordering::AcqRel);
        }
        won
    }

    /// Claims the first free slot, returning its index.
    pub fn register_any(&self) -> Option<usize> {
        (0..self.slots.len()).find(|&tid| self.register_tid(tid))
    }

    /// Releases a slot previously claimed with [`Registry::register_tid`] /
    /// [`Registry::register_any`].
    pub fn deregister(&self, tid: usize) {
        assert!(tid < self.slots.len());
        let was = self.slots[tid].in_use.swap(false, Ordering::AcqRel);
        if was {
            self.registered.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Whether a slot is currently owned.
    #[inline]
    pub fn is_active(&self, tid: usize) -> bool {
        self.slots[tid].is_active(Ordering::Acquire)
    }

    /// Iterates over the indices of all currently active slots.
    ///
    /// Note: membership can change concurrently; SMR scans are written so that
    /// seeing a *stale* active slot is safe (it only makes reclamation more
    /// conservative), and a slot that deregisters concurrently holds no
    /// references by contract.
    pub fn active_tids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.slots.len()).filter(move |&t| self.is_active(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn register_and_deregister_roundtrip() {
        let r = Registry::new(4);
        assert_eq!(r.capacity(), 4);
        assert!(r.register_tid(2));
        assert!(!r.register_tid(2), "double registration must fail");
        assert!(r.is_active(2));
        assert_eq!(r.registered(), 1);
        r.deregister(2);
        assert!(!r.is_active(2));
        assert_eq!(r.registered(), 0);
    }

    #[test]
    fn register_any_fills_all_slots() {
        let r = Registry::new(3);
        let mut got = Vec::new();
        while let Some(t) = r.register_any() {
            got.push(t);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(r.registered(), 3);
        assert!(r.register_any().is_none());
    }

    #[test]
    fn active_tids_reflects_membership() {
        let r = Registry::new(8);
        r.register_tid(1);
        r.register_tid(5);
        let active: Vec<usize> = r.active_tids().collect();
        assert_eq!(active, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_out_of_range_panics() {
        let r = Registry::new(2);
        r.register_tid(2);
    }

    #[test]
    fn concurrent_registration_is_unique() {
        let r = Arc::new(Registry::new(16));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let r = Arc::clone(&r);
            handles.push(thread::spawn(move || r.register_any().unwrap()));
        }
        let mut tids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 16, "every thread must get a distinct tid");
    }
}
