//! The lock-free linked list of Harris (HL01), "A pragmatic implementation of
//! non-blocking linked-lists".
//!
//! A node is logically deleted by setting the *mark* bit on its `next` pointer
//! (tag 1 on the [`Atomic`] word); `search` physically unlinks any chain of
//! marked nodes it passes over with a single CAS and then — crucially for NBR —
//! **restarts from the head**.
//!
//! This is the paper's worked example of a data structure with *multiple
//! read-write phases* (Algorithm 3 and Section 5.2): every iteration of
//! `search_again` is a fresh Φ_read starting at the root; the unlink CAS (an
//! auxiliary update) and the caller's insert/delete CAS are Φ_writes operating
//! only on the reserved `left`/`right` records. The chain of nodes removed by
//! the unlink CAS is retired by the unlinking thread — those records were just
//! unlinked by *this* thread and are not yet in any limbo bag, so walking them
//! to retire them cannot race with their reclamation.

use crate::{check_key, memo, ConcurrentSet, KEY_MAX, KEY_MIN};
use smr_common::{recycle, Atomic, NodeHeader, Shared, Smr, SmrConfig};
use std::sync::atomic::Ordering;

/// Mark bit: set on `node.next` when `node` is logically deleted.
const MARK: usize = 1;

/// Hazard-slot layout used during traversals.
const SLOT_LEFT: usize = 0;
const SLOT_T_A: usize = 1;
const SLOT_T_B: usize = 2;

/// A node of the Harris list.
pub struct Node {
    header: NodeHeader,
    key: u64,
    next: Atomic<Node>,
}
smr_common::impl_smr_node!(Node);

impl Node {
    fn new(key: u64) -> Self {
        Self {
            header: NodeHeader::new(),
            key,
            next: Atomic::null(),
        }
    }
}

/// Result of a successful search: `left.key < key <= right.key`, `left` and
/// `right` adjacent and unmarked at the linearization point, and both reserved
/// for the caller's write phase.
struct SearchResult {
    left: Shared<Node>,
    right: Shared<Node>,
}

/// The Harris lock-free list-based set.
pub struct HarrisList<S: Smr> {
    smr: S,
    head: Box<Node>,
    tail: Shared<Node>,
    /// Identity of this instance in the thread-local lookup memo.
    memo_id: u64,
}

// SAFETY: the list owns its nodes through `Atomic` links; every shared
// access goes through the `Smr` protection protocol, and `Smr: Send + Sync`.
unsafe impl<S: Smr> Send for HarrisList<S> {}
// SAFETY: as above — all mutation is via atomics and CAS.
unsafe impl<S: Smr> Sync for HarrisList<S> {}

impl<S: Smr> HarrisList<S> {
    /// Creates an empty list whose reclaimer is configured by `config`.
    pub fn new(config: SmrConfig) -> Self {
        Self::with_smr(S::new(config))
    }

    /// Creates an empty list around an existing reclaimer instance.
    pub fn with_smr(smr: S) -> Self {
        let tail = Shared::from_raw(recycle::alloc_node_raw(Node::new(KEY_MAX)));
        // lint:allow-box-node — head sentinel: owned by the structure,
        // never published for retirement, freed by Box's own drop.
        let head = Box::new(Node {
            header: NodeHeader::new(),
            key: KEY_MIN,
            next: Atomic::new(tail),
        });
        Self {
            smr,
            head,
            tail,
            memo_id: memo::next_memo_id(),
        }
    }

    #[inline]
    fn head_shared(&self) -> Shared<Node> {
        Shared::from_raw(&*self.head as *const Node as *mut Node)
    }

    /// Harris's `search`, integrated with NBR exactly as in Algorithm 3 of the
    /// paper. On return the read phase has been ended with `left` and `right`
    /// reserved, so the caller may immediately CAS on them.
    fn search(&self, ctx: &mut S::ThreadCtx, key: u64) -> SearchResult {
        'search_again: loop {
            self.smr.begin_read_phase(ctx);

            let mut t = self.head_shared();
            // Slot protecting `t` itself (meaningless for the head sentinel)
            // and slot protecting the freshly loaded `t_next`.
            let mut t_prot_slot = SLOT_T_B;
            let mut t_next_slot = SLOT_T_A;
            // SAFETY: `t` is the head sentinel, owned by the list and
            // never freed while it exists.
            let mut t_next = self
                .smr
                .protect(ctx, t_next_slot, unsafe { &t.deref().next });
            if self.smr.checkpoint(ctx) {
                continue 'search_again;
            }
            let mut left = t;
            let mut left_next = t_next;

            // Phase 1: find left (last unmarked node with key < `key`) and
            // right (first node with key >= `key`).
            loop {
                if t_next.tag() & MARK == 0 {
                    left = t;
                    left_next = t_next;
                    self.smr.protect_copy(ctx, SLOT_LEFT, t_prot_slot, left);
                }
                // Advance: `t` takes over `t_next`'s protection slot.
                t = t_next.with_tag(0);
                t_prot_slot = t_next_slot;
                if t.ptr_eq(self.tail) {
                    break;
                }
                t_next_slot = if t_prot_slot == SLOT_T_A {
                    SLOT_T_B
                } else {
                    SLOT_T_A
                };
                // SAFETY: `t` was returned by `protect` into `t_prot_slot`
                // (or is the head) and that slot still covers it.
                t_next = self
                    .smr
                    .protect(ctx, t_next_slot, unsafe { &t.deref().next });
                if self.smr.checkpoint(ctx) {
                    continue 'search_again;
                }
                if t_next.tag() & MARK != 0 && !S::CAN_TRAVERSE_UNLINKED {
                    // `t` is logically deleted. Address-validation reclaimers
                    // (HP, HP-POP) must not follow pointers out of records
                    // that may already be unlinked — the validating re-read
                    // targets a *frozen* field, so it can never observe that
                    // the pointee was retired and freed (DESIGN.md, "Why the
                    // HP family keeps the Harris-Michael fallback"). Instead
                    // of walking the marked chain we unlink this single node
                    // from `left` (which is its immediate predecessor here,
                    // since we never walk past a marked node in this mode)
                    // and restart from the head — i.e. the Harris-Michael
                    // behaviour Table 1 requires for the HP family. The
                    // interval reclaimers (IBR, HE) take the batch-unlink
                    // path below instead: their contiguous announced
                    // intervals pin every record on the frozen chain.
                    self.smr
                        .end_read_phase(ctx, &[left.untagged_usize(), t.untagged_usize()]);
                    // SAFETY: `left` is covered by SLOT_LEFT and was just
                    // reserved by `end_read_phase` above.
                    let left_ref = unsafe { left.deref() };
                    if left_ref
                        .next
                        .compare_exchange(
                            left_next,
                            t_next.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        // SAFETY: unlinked by this thread's CAS just now.
                        unsafe { self.smr.retire(ctx, t) };
                    }
                    continue 'search_again;
                }
                // SAFETY: `t` is covered by `t_prot_slot` (taken over from
                // the `protect` that returned it).
                let t_key = unsafe { t.deref().key };
                if t_next.tag() & MARK == 0 && t_key >= key {
                    break;
                }
            }
            let right = t;

            // Phase 2: left and right already adjacent?
            if left_next.with_tag(0).ptr_eq(right) {
                // SAFETY: `right` (== the last `t`) is covered by
                // `t_prot_slot` for the duration of the read phase.
                let right_marked = !right.ptr_eq(self.tail)
                    && unsafe { right.deref() }.next.load(Ordering::Acquire).tag() & MARK != 0;
                if right_marked {
                    continue 'search_again;
                }
                self.smr
                    .end_read_phase(ctx, &[left.untagged_usize(), right.untagged_usize()]);
                return SearchResult { left, right };
            }

            // Phase 3 (Φ_write): unlink the chain of marked nodes between
            // left and right with one CAS, then retire them.
            self.smr
                .end_read_phase(ctx, &[left.untagged_usize(), right.untagged_usize()]);
            // SAFETY: `left` was reserved by `end_read_phase` just above.
            let left_ref = unsafe { left.deref() };
            if left_ref
                .next
                .compare_exchange(left_next, right, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Retire the unlinked chain. These nodes were unlinked by this
                // thread just now, so no reclaimer can free them before the
                // retire below; dereferencing them here is safe even though
                // they are not reserved. Retiring strictly *after* the unlink
                // CAS is what the interval reclaimers' traversal-through-
                // unlinked safety argument builds on: every chain record's
                // retire era is then at least the unlink era, which a
                // concurrent traverser's announced interval provably reaches
                // (DESIGN.md, "Traversals through unlinked records under the
                // interval reclaimers").
                let mut c = left_next.with_tag(0);
                while !c.ptr_eq(right) {
                    // SAFETY: `c` is on the chain this thread's CAS just
                    // unlinked (see the comment above): not yet retired, so
                    // no reclaimer can have freed it.
                    let nxt = unsafe { c.deref() }
                        .next
                        .load(Ordering::Acquire)
                        .with_tag(0);
                    // SAFETY: unlinked above by this thread's CAS; retired once.
                    unsafe { self.smr.retire(ctx, c) };
                    c = nxt;
                }
                // SAFETY: `right` was reserved by `end_read_phase` above.
                let right_marked = !right.ptr_eq(self.tail)
                    && unsafe { right.deref() }.next.load(Ordering::Acquire).tag() & MARK != 0;
                if right_marked {
                    continue 'search_again;
                }
                return SearchResult { left, right };
            }
            continue 'search_again;
        }
    }
}

impl<S: Smr> ConcurrentSet<S> for HarrisList<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        // Zipf-hot lookup memo: when the reclaimer clock can validate a
        // cached pointer (`validation_stamp`), a hit skips the traversal.
        let stamp = self.smr.validation_stamp(ctx);
        if let Some(stamp) = stamp {
            if let Some(addr) = memo::lookup(self.memo_id, key, stamp) {
                let node = addr as *const Node;
                // SAFETY: the entry was stored under an operation with the
                // same validation stamp, pointing at a node then observed
                // unmarked (hence reachable, not yet retired). By the
                // `validation_stamp` contract, stamp equality means no
                // record retired at or after that era has been freed, so
                // the memory is still this node.
                let next = unsafe { &(*node).next }.load(Ordering::Acquire);
                // SAFETY: as above — the node is still allocated.
                if next.tag() & MARK == 0 && unsafe { (*node).key } == key {
                    // Unmarked ⇒ still reachable (Harris unlinks only after
                    // marking): the key is present, linearized at the load.
                    self.smr.thread_stats_mut(ctx).memo_hits += 1;
                    self.smr.end_op(ctx);
                    return true;
                }
                memo::invalidate(self.memo_id, key);
            }
            self.smr.thread_stats_mut(ctx).memo_misses += 1;
        }
        let r = self.search(ctx, key);
        // SAFETY: `search` returned with `r.right` reserved for this thread.
        let found = !r.right.ptr_eq(self.tail) && unsafe { r.right.deref() }.key == key;
        if found {
            if let Some(stamp) = stamp {
                // `search` observed `r.right` unmarked at its linearization
                // point — the precondition for memoizing it.
                memo::store(self.memo_id, key, r.right.untagged_usize(), stamp);
            }
        }
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        found
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let inserted = loop {
            let r = self.search(ctx, key);
            // SAFETY: `search` returned with `r.right` reserved.
            if !r.right.ptr_eq(self.tail) && unsafe { r.right.deref() }.key == key {
                break false;
            }
            // Φ_write: allocate and link the new node under the reservation of
            // `left` (the CAS target) and `right` (the successor).
            let mut node = Node::new(key);
            node.next = Atomic::new(r.right);
            let node = self.smr.alloc(ctx, node);
            // SAFETY: `search` returned with `r.left` reserved.
            let left_ref = unsafe { r.left.deref() };
            if left_ref
                .next
                .compare_exchange(r.right, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
            // Lost the race: the node was never published, free it directly.
            // SAFETY: `node` was allocated above and never made reachable.
            unsafe { self.smr.dealloc_unpublished(ctx, node) };
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        inserted
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let removed = loop {
            let r = self.search(ctx, key);
            // SAFETY: `search` returned with `r.right` reserved (both derefs).
            if r.right.ptr_eq(self.tail) || unsafe { r.right.deref() }.key != key {
                break false;
            }
            // SAFETY: as above — `r.right` is still reserved.
            let right_ref = unsafe { r.right.deref() };
            let right_next = right_ref.next.load(Ordering::Acquire);
            if right_next.tag() & MARK != 0 {
                // Another thread is already deleting it; retry from the root.
                continue;
            }
            // Logical delete: mark `right.next`.
            if right_ref
                .next
                .compare_exchange(
                    right_next,
                    right_next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Eager memo invalidation: this thread just logically deleted
            // the node its memo may be caching for `key`. (Other threads'
            // entries die at the stamp/mark validation.)
            memo::invalidate(self.memo_id, key);
            // Physical delete: try to unlink it ourselves; if we fail, a
            // subsequent search (ours, below, or any other thread's) unlinks
            // and retires it.
            // SAFETY: `search` returned with `r.left` reserved.
            let left_ref = unsafe { r.left.deref() };
            if left_ref
                .next
                .compare_exchange(
                    r.right,
                    right_next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: unlinked by this thread's CAS; retired exactly once.
                unsafe { self.smr.retire(ctx, r.right) };
            } else {
                let _ = self.search(ctx, key);
            }
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        removed
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.smr.begin_op(ctx);
        self.smr.begin_read_phase(ctx);
        let mut count = 0usize;
        let mut curr = self.head.next.load(Ordering::Acquire);
        loop {
            let node = curr.with_tag(0);
            if node.ptr_eq(self.tail) {
                break;
            }
            // SAFETY: `size` runs inside a read phase; under the reclaimers
            // whose `CAN_TRAVERSE_UNLINKED` contract this structure is used
            // with, every node reachable from the head stays dereferenceable
            // for the duration of the announced phase.
            let next = unsafe { node.deref() }.next.load(Ordering::Acquire);
            if next.tag() & MARK == 0 {
                count += 1;
            }
            curr = next;
        }
        self.smr.end_read_phase(ctx, &[]);
        self.smr.end_op(ctx);
        count
    }

    fn name() -> &'static str {
        "harris-list"
    }
}

impl<S: Smr> Drop for HarrisList<S> {
    fn drop(&mut self) {
        let mut curr = self.head.next.load(Ordering::Relaxed).with_tag(0);
        while !curr.is_null() {
            // SAFETY: `&mut self` — no thread can hold references into the
            // list any more; every remaining node is exclusively ours.
            let next = unsafe { curr.deref() }
                .next
                .load(Ordering::Relaxed)
                .with_tag(0);
            // SAFETY: as above; each node is freed exactly once here.
            unsafe { recycle::free_node_raw(curr.as_raw()) };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::{Nbr, NbrPlus};
    use smr_baselines::{Debra, HazardEras, HazardPointers, Rcu};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let list = HarrisList::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 10));
        assert!(list.insert(&mut ctx, 5));
        assert!(list.insert(&mut ctx, 15));
        assert!(!list.insert(&mut ctx, 10));
        assert!(list.contains(&mut ctx, 10));
        assert!(!list.contains(&mut ctx, 11));
        assert_eq!(list.size(&mut ctx), 3);
        assert!(list.remove(&mut ctx, 10));
        assert!(!list.remove(&mut ctx, 10));
        assert_eq!(list.size(&mut ctx), 2);
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_under_nbr_plus() {
        let list = HarrisList::<NbrPlus>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 1);
    }

    #[test]
    fn model_check_under_nbr() {
        let list = HarrisList::<Nbr>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 2);
    }

    #[test]
    fn model_check_under_debra() {
        let list = HarrisList::<Debra>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 3);
    }

    #[test]
    fn model_check_under_hp() {
        let list = HarrisList::<HazardPointers>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 4);
    }

    #[test]
    fn model_check_under_hazard_eras() {
        let list = HarrisList::<HazardEras>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 5);
    }

    #[test]
    fn model_check_under_rcu() {
        let list = HarrisList::<Rcu>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 6);
    }

    #[test]
    fn concurrent_disjoint_stress_nbr_plus() {
        let list = Arc::new(HarrisList::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(list, 4, 3_000);
    }

    #[test]
    fn concurrent_disjoint_stress_debra() {
        let list = Arc::new(HarrisList::<Debra>::new(SmrConfig::for_tests()));
        disjoint_key_stress(list, 4, 3_000);
    }

    #[test]
    fn memo_hits_on_repeated_hot_lookup() {
        // DEBRA supplies a validation stamp, so the second lookup of an
        // undisturbed key must be served from the memo.
        let list = HarrisList::<Debra>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 42));
        assert!(list.contains(&mut ctx, 42)); // miss + store
        let miss_baseline = list.smr().thread_stats(&ctx).memo_misses;
        assert!(miss_baseline >= 1);
        assert!(list.contains(&mut ctx, 42)); // hit
        let s = list.smr().thread_stats(&ctx);
        assert_eq!(s.memo_hits, 1, "hot repeat lookup must hit the memo");
        assert_eq!(
            s.memo_misses, miss_baseline,
            "a hit must not count as a miss"
        );
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn memo_disabled_by_config_never_hits() {
        let list = HarrisList::<Debra>::new(SmrConfig::for_tests().with_memo(false));
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 42));
        assert!(list.contains(&mut ctx, 42));
        assert!(list.contains(&mut ctx, 42));
        let s = list.smr().thread_stats(&ctx);
        assert_eq!(s.memo_hits, 0);
        assert_eq!(s.memo_misses, 0, "no stamp ⇒ the memo is bypassed entirely");
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn memo_entry_dies_with_local_remove() {
        let list = HarrisList::<Debra>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 7));
        assert!(list.contains(&mut ctx, 7)); // memoized
        assert!(list.remove(&mut ctx, 7)); // eager invalidation
        assert!(!list.contains(&mut ctx, 7), "removed key must read absent");
        assert!(list.insert(&mut ctx, 7));
        assert!(
            list.contains(&mut ctx, 7),
            "re-inserted key must read present"
        );
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn stale_memo_entry_across_unlink_misses_validation() {
        // The resurrection scenario: an entry recorded before an unlink must
        // fail the stamp check once the reclaimer clock has advanced — even
        // if (as here) the entry is maliciously re-planted after the node
        // was retired, churned over and possibly freed. A correct memo falls
        // back to the traversal and reports the key absent; a broken one
        // would dereference reclaimed memory and may report it present.
        let list = HarrisList::<Debra>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 7));
        assert!(list.contains(&mut ctx, 7)); // memoized at the current stamp
        list.smr().begin_op(&mut ctx);
        let stale_stamp = list.smr().validation_stamp(&mut ctx).unwrap();
        let stale_addr = crate::memo::lookup(list.memo_id, 7, stale_stamp)
            .expect("the lookup above must have memoized key 7");
        list.smr().end_op(&mut ctx);

        assert!(list.remove(&mut ctx, 7));
        // Churn far past the epoch frequency so the global epoch advances
        // and the unlinked node is actually reclaimed.
        for k in 100..300u64 {
            assert!(list.insert(&mut ctx, k));
            assert!(list.remove(&mut ctx, k));
        }
        list.smr().flush(&mut ctx);

        // Re-plant the stale entry, as if this thread had never observed
        // the removal.
        crate::memo::store(list.memo_id, 7, stale_addr, stale_stamp);
        list.smr().begin_op(&mut ctx);
        let now_stamp = list.smr().validation_stamp(&mut ctx).unwrap();
        list.smr().end_op(&mut ctx);
        assert_ne!(now_stamp, stale_stamp, "churn must have advanced the clock");
        let hits_before = list.smr().thread_stats(&ctx).memo_hits;
        assert!(
            !list.contains(&mut ctx, 7),
            "stale entry must miss validation and fall back to the traversal"
        );
        assert_eq!(
            list.smr().thread_stats(&ctx).memo_hits,
            hits_before,
            "the stale entry must not be served as a hit"
        );
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn churn_reclaims_memory() {
        let list = HarrisList::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        for round in 0..300u64 {
            for k in 1..=16u64 {
                list.insert(&mut ctx, k * 3 + round % 5);
            }
            for k in 1..=16u64 {
                list.remove(&mut ctx, k * 3 + round % 5);
            }
        }
        list.smr().flush(&mut ctx);
        let s = list.smr().thread_stats(&ctx);
        assert!(s.retires > 1_000);
        assert!(s.frees > s.retires / 2);
        list.smr().unregister(&mut ctx);
    }
}
