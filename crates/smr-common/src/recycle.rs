//! Node-block recycling: thread-local magazines over a shared depot.
//!
//! Every mutating operation in the benchmark matrix pays the global allocator
//! twice — once in [`Smr::alloc`](crate::Smr::alloc) and once when a
//! reclamation scan destroys the record. After PR 2/3 removed the fence and
//! protection costs from the hot paths, that malloc/free pair is the largest
//! remaining per-operation overhead *shared by every reclaimer* (the paper's
//! artifact sidesteps it with jemalloc; this vendored-offline build cannot).
//! Recycling is also exactly what reclamation makes safe: a record a scan has
//! proven unreachable can be handed straight to the next allocation instead
//! of round-tripping through the system allocator.
//!
//! The design is a classic magazine/depot allocator (Bonwick's vmem paper),
//! scoped to SMR nodes:
//!
//! * **Node-heap ABI** — every node is allocated with [`node_layout`], the
//!   record's layout mapped to an **exact-fit** size class (8-byte
//!   granularity up to 1 KiB, coarser above). [`alloc_node_raw`] /
//!   [`free_node_raw`] are the global fallbacks; because the layout is a
//!   pure function of the node type, any block can later be freed (or
//!   recycled) without knowing how it was allocated. Types too big or
//!   over-aligned for every class fall back to their exact layout and are
//!   never pooled.
//! * **[`Magazine`]** — a per-thread cache of free blocks, one bounded bin
//!   per size class, owned by the reclaimer's thread context. Allocation
//!   pops from the bin; a reclamation sweep pushes destroyed blocks back.
//!   No synchronization on either path.
//! * **[`BlockPool`]** — the shared depot magazines spill to when a bin
//!   overflows (a reclamation burst frees more than the owner will
//!   re-allocate soon) and refill from when a bin runs dry (this thread
//!   allocates what another thread's scan freed). Accessed in batches, so
//!   the depot mutex is off the per-operation path. The depot is bounded;
//!   overflow beyond the bound is returned to the global allocator, which
//!   keeps the pool's footprint at a small multiple of the limbo watermark.
//!
//! # Recycling is downstream of safety
//!
//! A block enters a magazine only from [`Retired::reclaim_into`]
//! (<=> the owning scheme's scan just proved the record *safe*: unlinked and
//! reserved/protected by no thread) or from
//! [`Smr::dealloc_unpublished`](crate::Smr::dealloc_unpublished) (the record
//! was never published). Address reuse is therefore the ABA case the
//! [`NodeHeader`](crate::NodeHeader) birth era already exists for: a recycled
//! block returned by [`Smr::alloc`](crate::Smr::alloc) is re-stamped with the
//! *current* global era before it is published, so interval-based schemes
//! (IBR, HE) see the new incarnation's lifetime start at its true birth and
//! cannot confuse it with the previous occupant of the same address. The
//! interval reclaimers' own `alloc` overrides (IBR, HE — the only schemes
//! whose sweeps consult birth eras) read the era clock **after** popping
//! the block (the pop happens-after the free: same-thread program order,
//! or the depot mutex across threads), so the new birth era is provably ≥
//! every era observed while the old incarnation was swept — the two
//! lifetimes of one address can never overlap, which is what lets
//! traversal-through-unlinked compose with recycling (DESIGN.md,
//! "Traversals through unlinked records under the interval reclaimers").
//! The *default* `Smr::alloc` stamps before the pop (cheaper, and inert:
//! no scheme using it sweeps by birth era); a new interval-style scheme
//! must override `alloc` and stamp after the pop like IBR/HE do.

use crate::header::SmrNode;
use crate::smr::SmrConfig;
use crate::stats::ThreadStats;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Alignment of every pooled block. Covers every node type in the workspace
/// (`u64`s, pointers, atomics); types with stricter alignment fall back to
/// the global allocator with their exact layout.
const BLOCK_ALIGN: usize = 8;

/// Size classes are **exact-fit** at 8-byte granularity up to this size.
/// Exactness matters more than a small class table: rounding a 24-byte list
/// node up to 32 bytes inflates the allocator's chunk stride (glibc:
/// 32 → 48 bytes) and measurably hurts traversal locality on large lists,
/// even for code that never touches the pool. Every real node size is a
/// multiple of 8 already, so fine classes cost nothing in fragmentation.
const FINE_LIMIT: usize = 1024;

/// Granularity of the fine classes.
const FINE_STEP: usize = 8;

/// After a depot refill returns empty-handed, a magazine serves this many
/// further misses from the global allocator before re-checking the depot
/// (cleared early whenever the magazine itself releases a block). Keeps the
/// depot mutex off the hot path of allocation-only phases while another
/// thread's spill is still picked up within a bounded number of allocs.
const DRY_BACKOFF_MISSES: u32 = 64;

/// Above [`FINE_LIMIT`], classes step by this much up to [`MAX_BLOCK`]
/// (node types are few; coarse steps keep the table small).
const COARSE_STEP: usize = 256;

/// Largest pooled block; bigger types use their exact layout, unpooled.
const MAX_BLOCK: usize = 4096;

/// Number of size classes.
const CLASS_COUNT: usize = FINE_LIMIT / FINE_STEP + (MAX_BLOCK - FINE_LIMIT) / COARSE_STEP;

/// The size class covering `layout`, or `None` when the layout is too big or
/// too strictly aligned to pool.
#[inline]
pub fn class_for_layout(layout: Layout) -> Option<usize> {
    if layout.align() > BLOCK_ALIGN {
        return None;
    }
    let size = layout.size().max(1);
    if size <= FINE_LIMIT {
        Some(size.div_ceil(FINE_STEP) - 1)
    } else if size <= MAX_BLOCK {
        Some(FINE_LIMIT / FINE_STEP + (size - FINE_LIMIT).div_ceil(COARSE_STEP) - 1)
    } else {
        None
    }
}

/// The allocation size of size class `class`.
#[inline]
fn class_size(class: usize) -> usize {
    if class < FINE_LIMIT / FINE_STEP {
        (class + 1) * FINE_STEP
    } else {
        FINE_LIMIT + (class + 1 - FINE_LIMIT / FINE_STEP) * COARSE_STEP
    }
}

/// The allocation layout of size class `class`.
#[inline]
fn class_layout(class: usize) -> Layout {
    // SAFETY-adjacent: sizes and the alignment are non-zero multiples of a
    // power of two; the unwrap can never fire.
    Layout::from_size_align(class_size(class), BLOCK_ALIGN).expect("valid class layout")
}

/// The size class node type `T` is pooled in, or `None` when `T` only ever
/// uses the global allocator.
#[inline]
pub fn node_class<T>() -> Option<usize> {
    class_for_layout(Layout::new::<T>())
}

/// The layout every node of type `T` is allocated with — the node-heap ABI.
///
/// Class-rounded when `T` fits a size class, exact otherwise. Both
/// [`Smr::alloc`](crate::Smr::alloc) and every free path
/// ([`Retired`](crate::Retired), [`free_node_raw`], data-structure `Drop`
/// impls) derive the layout from this one function, so blocks can flow
/// between the pool and the global allocator without per-block bookkeeping.
#[inline]
pub fn node_layout<T>() -> Layout {
    match node_class::<T>() {
        Some(class) => class_layout(class),
        None => Layout::new::<T>(),
    }
}

/// Allocates a node on the global allocator with the node-heap ABI layout
/// and moves `value` into it. The pool-bypassing fallback every allocation
/// path shares (sentinels, `--no-recycle`, magazine misses).
pub fn alloc_node_raw<T: SmrNode>(value: T) -> *mut T {
    let layout = node_layout::<T>();
    debug_assert!(layout.size() > 0, "SMR nodes are never zero-sized");
    // SAFETY: layout has non-zero size (every node embeds a NodeHeader).
    let ptr = unsafe { alloc(layout) }.cast::<T>();
    if ptr.is_null() {
        handle_alloc_error(layout);
    }
    // SAFETY: freshly allocated, exclusively owned, large enough for T.
    unsafe { ptr.write(value) };
    crate::check::on_raw_alloc(ptr as usize);
    ptr
}

/// Runs `T`'s destructor and returns the block to the global allocator.
///
/// # Safety
/// `ptr` must have been allocated with the node-heap ABI ([`alloc_node_raw`]
/// or [`Magazine::alloc_node`]), must be exclusively owned by the caller, and
/// must not be used afterwards.
pub unsafe fn free_node_raw<T: SmrNode>(ptr: *mut T) {
    crate::check::on_owner_free(ptr as usize);
    core::ptr::drop_in_place(ptr);
    dealloc(ptr.cast(), node_layout::<T>());
}

/// The shared overflow depot: per-size-class free lists magazines spill to
/// and refill from in batches.
///
/// Blocks are stored as raw addresses of *uninitialized* memory (destructors
/// already ran before a block entered the pool); the only operation ever
/// applied to them again is a write of a fresh node or a final `dealloc`.
pub struct BlockPool {
    /// One free list per size class ([`CLASS_COUNT`] of them), or empty when
    /// the owning config disabled recycling.
    bins: Box<[Mutex<Vec<usize>>]>,
    /// Maximum blocks the depot holds per class; beyond this, spilled blocks
    /// go back to the global allocator (bounds the pool's idle footprint).
    per_class_cap: usize,
    /// Blocks handed from the depot to magazines (diagnostic).
    refills: AtomicU64,
    /// Blocks spilled from magazines into the depot (diagnostic).
    spills: AtomicU64,
}

impl BlockPool {
    /// Creates the depot for one reclaimer instance, sized from its config:
    /// `magazine_cap × max_threads` for the steady-state circulation plus
    /// twice the HiWatermark so a full reclamation burst fits — the epoch
    /// family frees multi-bag bursts well past one watermark, and blocks the
    /// depot cannot absorb go back to the global allocator (defeating the
    /// pool for exactly the schemes with the most allocator traffic).
    pub fn from_config(config: &SmrConfig) -> Arc<Self> {
        let per_class_cap =
            config.magazine_cap.max(1) * config.max_threads.max(1) + 2 * config.hi_watermark;
        // With recycling off the reclaimer still holds a depot handle, but
        // its disabled magazines never touch it — build it bin-less so the
        // `--no-recycle` configuration carries no idle pool state.
        let bins = if config.recycle { CLASS_COUNT } else { 0 };
        Arc::new(Self {
            bins: (0..bins).map(|_| Mutex::new(Vec::new())).collect(),
            per_class_cap,
            refills: AtomicU64::new(0),
            spills: AtomicU64::new(0),
        })
    }

    /// Moves up to `max` blocks of `class` into `out`.
    fn refill(&self, class: usize, out: &mut Vec<usize>, max: usize) {
        let mut bin = self.bins[class].lock().expect("depot mutex poisoned");
        let n = bin.len().min(max);
        let split = bin.len() - n;
        out.extend(bin.drain(split..));
        drop(bin);
        self.refills.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Moves the blocks of `bin` beyond index `keep` into the depot, up to
    /// the depot bound; blocks that fit neither are returned to the global
    /// allocator. Drains `bin` in place (no temporary vector — this runs on
    /// the reclamation path the pool exists to keep allocation-free).
    fn spill_from(&self, class: usize, bin: &mut Vec<usize>, keep: usize) {
        let keep = keep.min(bin.len());
        let mut depot = self.bins[class].lock().expect("depot mutex poisoned");
        let room = self.per_class_cap.saturating_sub(depot.len());
        let n = (bin.len() - keep).min(room);
        let split = bin.len() - n;
        depot.extend(bin.drain(split..));
        drop(depot);
        self.spills.fetch_add(n as u64, Ordering::Relaxed);
        // No room for the rest: give it back to the system.
        for addr in bin.drain(keep..) {
            // SAFETY: every block in a class bin was allocated with exactly
            // that class's layout (node-heap ABI) and is exclusively owned
            // by the pool.
            unsafe { dealloc(addr as *mut u8, class_layout(class)) };
        }
    }

    /// Blocks currently parked in the depot (all classes).
    pub fn depot_len(&self) -> usize {
        self.bins
            .iter()
            .map(|b| b.lock().expect("depot mutex poisoned").len())
            .sum()
    }

    /// Total depot→magazine and magazine→depot block transfers so far.
    pub fn transfer_counts(&self) -> (u64, u64) {
        (
            self.refills.load(Ordering::Relaxed),
            self.spills.load(Ordering::Relaxed),
        )
    }
}

impl Drop for BlockPool {
    fn drop(&mut self) {
        for (class, bin) in self.bins.iter().enumerate() {
            let mut bin = bin.lock().expect("depot mutex poisoned");
            for addr in bin.drain(..) {
                // SAFETY: class bins hold exclusively-owned blocks allocated
                // with the class layout; the pool is going away.
                unsafe { dealloc(addr as *mut u8, class_layout(class)) };
            }
        }
    }
}

/// A thread-local cache of free node blocks, one bounded bin per size class.
///
/// Owned by a reclaimer's thread context. Allocation pops a block with two
/// plain vector operations; reclamation sweeps push destroyed blocks back.
/// When a bin overflows, half of it is spilled to the shared [`BlockPool`]
/// depot; when it runs dry, a batch is pulled back. A disabled magazine
/// (`--no-recycle`, [`SmrConfig::recycle`] = false) bypasses the pool
/// entirely: every allocation and free goes straight to the global
/// allocator, reproducing the pre-recycling behaviour exactly.
pub struct Magazine {
    pool: Option<Arc<BlockPool>>,
    bins: Vec<Vec<usize>>,
    /// Per-bin block bound ([`SmrConfig::magazine_cap`]).
    cap: usize,
    /// Per-class backoff after a depot refill came back empty: this many
    /// further misses of that class skip the depot entirely, so an
    /// allocation-only phase (prefill, the leaky scheme — which never frees)
    /// does not pay a shared mutex lock per node. Releasing a block of the
    /// class resets its backoff.
    dry_backoff: Vec<u32>,
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl Magazine {
    /// A magazine spilling to / refilling from `pool`, or a disabled one when
    /// the config switched recycling off.
    pub fn from_config(pool: &Arc<BlockPool>, config: &SmrConfig) -> Self {
        if config.recycle {
            Self {
                pool: Some(Arc::clone(pool)),
                bins: (0..CLASS_COUNT).map(|_| Vec::new()).collect(),
                cap: config.magazine_cap.max(1),
                dry_backoff: vec![0; CLASS_COUNT],
                hits: 0,
                misses: 0,
                recycled: 0,
            }
        } else {
            Self::disabled()
        }
    }

    /// A magazine that never pools: every operation falls through to the
    /// global allocator (used by `--no-recycle` and standalone tests).
    pub fn disabled() -> Self {
        Self {
            pool: None,
            bins: Vec::new(),
            cap: 0,
            dry_backoff: Vec::new(),
            hits: 0,
            misses: 0,
            recycled: 0,
        }
    }

    /// Whether this magazine participates in recycling.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.pool.is_some()
    }

    /// Allocates a node, preferring a recycled block of `T`'s size class and
    /// falling back to the global allocator.
    #[inline]
    pub fn alloc_node<T: SmrNode>(&mut self, value: T) -> *mut T {
        if self.enabled() {
            if let Some(class) = node_class::<T>() {
                if let Some(addr) = self.pop_block(class) {
                    self.hits += 1;
                    let ptr = addr as *mut T;
                    // SAFETY: blocks in class `class` were allocated with
                    // `class_layout(class)` = `node_layout::<T>()`, hold no
                    // live value (destructors ran before pooling), and are
                    // exclusively owned by this magazine.
                    unsafe { ptr.write(value) };
                    crate::check::on_raw_alloc(ptr as usize);
                    return ptr;
                }
                self.misses += 1;
            }
        }
        alloc_node_raw(value)
    }

    /// Runs the destructor of a node that was never published and recycles
    /// its block (the [`Smr::dealloc_unpublished`](crate::Smr::dealloc_unpublished)
    /// path).
    ///
    /// # Safety
    /// Same contract as [`free_node_raw`].
    #[inline]
    pub unsafe fn free_node<T: SmrNode>(&mut self, ptr: *mut T) {
        crate::check::on_owner_free(ptr as usize);
        core::ptr::drop_in_place(ptr);
        self.release(ptr.cast(), node_layout::<T>());
    }

    /// Accepts a destroyed block back into the pool (or hands it to the
    /// global allocator when recycling is off / the layout is not pooled).
    ///
    /// # Safety
    /// `ptr` must have been allocated with exactly `layout` under the
    /// node-heap ABI, its value must already be destroyed, and the caller
    /// transfers ownership of the block.
    #[inline]
    pub unsafe fn release(&mut self, ptr: *mut u8, layout: Layout) {
        if self.enabled() {
            if let Some(class) = class_for_layout(layout) {
                if layout == class_layout(class) {
                    self.recycled += 1;
                    self.dry_backoff[class] = 0;
                    self.bins[class].push(ptr as usize);
                    if self.bins[class].len() > self.cap {
                        self.spill(class);
                    }
                    return;
                }
            }
        }
        dealloc(ptr, layout);
    }

    #[inline]
    fn pop_block(&mut self, class: usize) -> Option<usize> {
        if let Some(addr) = self.bins[class].pop() {
            return Some(addr);
        }
        if self.dry_backoff[class] > 0 {
            // The depot was empty moments ago and nothing of this class has
            // been released since; skip the lock instead of hammering it
            // once per alloc.
            self.dry_backoff[class] -= 1;
            return None;
        }
        // Bin dry: pull a batch from the depot (amortizes the lock over
        // cap/2 allocations).
        let pool = self.pool.as_ref().expect("pop_block only when enabled");
        pool.refill(class, &mut self.bins[class], (self.cap / 2).max(1));
        let popped = self.bins[class].pop();
        if popped.is_none() {
            self.dry_backoff[class] = DRY_BACKOFF_MISSES;
        }
        popped
    }

    fn spill(&mut self, class: usize) {
        let keep = self.cap / 2;
        self.pool
            .as_ref()
            .expect("spill only when enabled")
            .spill_from(class, &mut self.bins[class], keep);
    }

    /// Returns every cached block to the depot (called at thread
    /// deregistration; also run by `Drop`).
    pub fn flush(&mut self) {
        if let Some(pool) = &self.pool {
            for (class, bin) in self.bins.iter_mut().enumerate() {
                if !bin.is_empty() {
                    pool.spill_from(class, bin, 0);
                }
            }
        }
    }

    /// Merges this magazine's counters into a copy of `stats` (reclaimers
    /// call this from `thread_stats`, keeping the counters off the hot-path
    /// borrow graph).
    pub fn fold_stats(&self, mut stats: ThreadStats) -> ThreadStats {
        stats.pool_hits += self.hits;
        stats.pool_misses += self.misses;
        stats.pool_recycled += self.recycled;
        stats
    }

    /// Recycled-block allocations served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pool-eligible allocations that fell through to the global allocator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Blocks accepted back into the pool so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

impl Drop for Magazine {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;

    struct Small {
        header: NodeHeader,
        key: u64,
    }
    crate::impl_smr_node!(Small);

    #[repr(align(64))]
    struct OverAligned {
        header: NodeHeader,
    }
    crate::impl_smr_node!(OverAligned);

    struct Huge {
        header: NodeHeader,
        _payload: [u64; 1024],
    }
    crate::impl_smr_node!(Huge);

    fn test_config() -> SmrConfig {
        let mut c = SmrConfig::for_tests();
        c.magazine_cap = 4;
        c.max_threads = 2;
        c
    }

    #[test]
    fn class_rounding_covers_node_sizes() {
        assert_eq!(
            node_class::<Small>(),
            class_for_layout(Layout::new::<Small>())
        );
        let l = node_layout::<Small>();
        // Exact fit: node sizes are 8-byte multiples and must not be
        // inflated (a bigger request inflates the allocator's chunk stride
        // and hurts traversal locality even when the pool is bypassed).
        assert_eq!(l.size(), std::mem::size_of::<Small>());
        assert_eq!(l.align(), BLOCK_ALIGN);
        // Round-trip of every size up to the cap: the class layout covers
        // the request, never by more than one step, and maps back to the
        // same class.
        for size in 1..=MAX_BLOCK {
            let layout = Layout::from_size_align(size, 8).unwrap();
            let class = class_for_layout(layout).expect("covered size");
            assert!(class < CLASS_COUNT);
            let cl = class_layout(class);
            assert!(cl.size() >= size);
            assert!(
                cl.size() - size
                    < if size <= FINE_LIMIT {
                        FINE_STEP
                    } else {
                        COARSE_STEP
                    }
            );
            assert_eq!(class_for_layout(cl), Some(class));
        }
        assert_eq!(
            class_for_layout(Layout::from_size_align(MAX_BLOCK + 1, 8).unwrap()),
            None
        );
    }

    #[test]
    fn over_aligned_and_huge_types_bypass_the_pool() {
        assert_eq!(node_class::<OverAligned>(), None);
        assert_eq!(node_layout::<OverAligned>(), Layout::new::<OverAligned>());
        assert_eq!(node_class::<Huge>(), None);
        // They still allocate and free cleanly through the raw path.
        let p = alloc_node_raw(OverAligned {
            header: NodeHeader::new(),
        });
        unsafe { free_node_raw(p) };
        let h = alloc_node_raw(Huge {
            header: NodeHeader::new(),
            _payload: [0; 1024],
        });
        unsafe { free_node_raw(h) };
    }

    #[test]
    fn magazine_recycles_blocks_by_address() {
        let config = test_config();
        let pool = BlockPool::from_config(&config);
        let mut mag = Magazine::from_config(&pool, &config);
        let p = mag.alloc_node(Small {
            header: NodeHeader::new(),
            key: 1,
        });
        let addr = p as usize;
        unsafe { mag.free_node(p) };
        assert_eq!(mag.recycled(), 1);
        let q = mag.alloc_node(Small {
            header: NodeHeader::new(),
            key: 2,
        });
        assert_eq!(q as usize, addr, "block must be recycled LIFO");
        assert_eq!(mag.hits(), 1);
        assert_eq!(unsafe { (*q).key }, 2);
        unsafe { mag.free_node(q) };
    }

    #[test]
    fn overflow_spills_to_depot_and_refills_cross_magazine() {
        let config = test_config();
        let pool = BlockPool::from_config(&config);
        let mut a = Magazine::from_config(&pool, &config);
        let mut b = Magazine::from_config(&pool, &config);
        let ptrs: Vec<*mut Small> = (0..32)
            .map(|i| {
                a.alloc_node(Small {
                    header: NodeHeader::new(),
                    key: i,
                })
            })
            .collect();
        for p in ptrs {
            unsafe { a.free_node(p) };
        }
        // cap = 4, so the bin must have spilled into the depot.
        assert!(
            pool.depot_len() > 0,
            "magazine overflow must reach the depot"
        );
        // Another thread's magazine refills from the depot.
        let p = b.alloc_node(Small {
            header: NodeHeader::new(),
            key: 99,
        });
        assert_eq!(b.hits(), 1, "depot block must serve the other magazine");
        unsafe { b.free_node(p) };
        let (refills, spills) = pool.transfer_counts();
        assert!(refills > 0 && spills > 0);
    }

    #[test]
    fn depot_bound_returns_overflow_to_the_system() {
        let config = test_config();
        let per_class_cap = config.magazine_cap * config.max_threads + 2 * config.hi_watermark;
        let pool = BlockPool::from_config(&config);
        let mut mag = Magazine::from_config(&pool, &config);
        let ptrs: Vec<*mut Small> = (0..per_class_cap * 3)
            .map(|i| {
                mag.alloc_node(Small {
                    header: NodeHeader::new(),
                    key: i as u64,
                })
            })
            .collect();
        for p in ptrs {
            unsafe { mag.free_node(p) };
        }
        mag.flush();
        let parked = pool.depot_len();
        assert!(
            parked <= per_class_cap,
            "depot must stay within its per-class bound ({parked} > {per_class_cap})"
        );
        assert!(parked > 0, "the bounded depot must still hold a burst");
    }

    #[test]
    fn disabled_magazine_bypasses_the_pool() {
        let mut mag = Magazine::disabled();
        assert!(!mag.enabled());
        let p = mag.alloc_node(Small {
            header: NodeHeader::new(),
            key: 7,
        });
        unsafe { mag.free_node(p) };
        assert_eq!(mag.hits() + mag.misses() + mag.recycled(), 0);
    }

    #[test]
    fn destructors_run_before_blocks_enter_the_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probed {
            header: NodeHeader,
        }
        impl Drop for Probed {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        crate::impl_smr_node!(Probed);

        let config = test_config();
        let pool = BlockPool::from_config(&config);
        let mut mag = Magazine::from_config(&pool, &config);
        let p = mag.alloc_node(Probed {
            header: NodeHeader::new(),
        });
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        unsafe { mag.free_node(p) };
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            1,
            "dtor must run at free time"
        );
    }
}
