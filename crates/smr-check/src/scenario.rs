//! Scenario driver: builds a small data structure under one SMR scheme,
//! runs a deterministic worker mix under one seeded schedule, and reports
//! whether the shadow-heap oracle observed a protection-contract violation.
//!
//! Scenarios are deliberately tiny — a handful of workers hammering a
//! handful of keys with reclamation thresholds cranked to the floor — so
//! interesting reclamation windows (retire → sweep → free/recycle) open
//! within a few hundred scheduled steps instead of a few million.

use crate::sched::{run_schedule, Outcome, SplitMix64, Strategy};
use conc_ds::{ConcurrentSet, HarrisList, HmHashMap};
use smr_common::check::{self, SessionConfig, Violation};
use smr_common::{Smr, SmrConfig};
use std::sync::Arc;

/// The full reclaimer matrix, one variant per scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    NbrPlus,
    Nbr,
    Debra,
    Qsbr,
    Rcu,
    Ibr,
    He,
    Wfe,
    Hp,
    EpochPop,
    HpPop,
    Leaky,
}

impl Scheme {
    /// Every scheme, in the harness's canonical order.
    pub fn all() -> [Scheme; 12] {
        [
            Scheme::NbrPlus,
            Scheme::Nbr,
            Scheme::Debra,
            Scheme::Qsbr,
            Scheme::Rcu,
            Scheme::Ibr,
            Scheme::He,
            Scheme::Wfe,
            Scheme::Hp,
            Scheme::EpochPop,
            Scheme::HpPop,
            Scheme::Leaky,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            Scheme::NbrPlus => "nbr+",
            Scheme::Nbr => "nbr",
            Scheme::Debra => "debra",
            Scheme::Qsbr => "qsbr",
            Scheme::Rcu => "rcu",
            Scheme::Ibr => "ibr",
            Scheme::He => "he",
            Scheme::Wfe => "wfe",
            Scheme::Hp => "hp",
            Scheme::EpochPop => "epoch-pop",
            Scheme::HpPop => "hp-pop",
            Scheme::Leaky => "leaky",
        }
    }

    /// Interval reclaimers stamp monotonically increasing birth eras, which
    /// is what makes the oracle's incarnation-disjointness rule sound; the
    /// others recycle without any per-incarnation era discipline.
    pub fn interval(self) -> bool {
        matches!(self, Scheme::Ibr | Scheme::He | Scheme::Wfe)
    }
}

/// Data structures covered by the exploration matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    List,
    HashMap,
}

impl Structure {
    pub fn all() -> [Structure; 2] {
        [Structure::List, Structure::HashMap]
    }

    pub fn label(self) -> &'static str {
        match self {
            Structure::List => "harris-list",
            Structure::HashMap => "hm-hashmap",
        }
    }
}

/// Scenario shape knobs. The defaults are the exploration-matrix settings;
/// the resurrect tests override individual fields to aim at a specific
/// reclamation window.
#[derive(Debug, Clone)]
pub struct Params {
    /// Scheduled worker tasks (the prefill runs on the unscheduled main
    /// thread under tid `workers`).
    pub workers: usize,
    /// Operations per worker per schedule.
    pub ops_per_worker: usize,
    /// Keys are drawn from `1..=key_range`.
    pub key_range: u64,
    /// Preemption-point budget before the run degrades to free-running.
    pub budget: u64,
    /// Magazine capacity for the recycling allocator (small values force
    /// node flow through the shared depot, where cross-thread recycling —
    /// and therefore ABA-style incarnation reuse — happens).
    pub magazine_cap: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            workers: 3,
            ops_per_worker: 8,
            key_range: 6,
            budget: 300_000,
            magazine_cap: 4,
        }
    }
}

/// Reclamation-hostile config: every threshold at its floor so retire →
/// sweep → free windows open after single-digit operation counts, and all
/// backoff/heartbeat batching disabled so scheduled steps map 1:1 onto
/// protocol steps.
pub fn quiet_config(params: &Params) -> SmrConfig {
    let mut cfg = SmrConfig::for_tests()
        .with_max_threads(params.workers + 1)
        .with_epoch_freqs(1, 1)
        .with_watermarks(4, 2)
        .with_scan_heartbeat_ops(1)
        .with_signal_cost_ns(0)
        .with_magazine_cap(params.magazine_cap)
        // Hot-path batching stays ON under the explorer: retire coalescing
        // and flat-combined scan publication add their own preemption points
        // ("limbo.flush-stage", "combine.handoff") and must hold up under
        // adversarial schedules. The per-op heartbeat keeps the config
        // reclamation-hostile anyway — every op exit flushes the stage and
        // opens a retire → sweep → free window.
        .with_coalesce(true)
        .with_combine(true);
    // Short ack spins: under the one-runnable scheduler the awaited thread
    // cannot make progress while the pinger holds the token, so every spin
    // iteration is a wasted scheduled step. The spin loop preempts at
    // "ping.await-acks", which is how the pingee actually gets to run.
    cfg.ack_spin_limit = 128;
    cfg
}

/// Result of one `(scheme, structure, strategy, seed)` run.
#[derive(Debug)]
pub struct RunReport {
    pub steps: u64,
    pub budget_exhausted: bool,
    /// First worker panic message, if any (includes oracle panics).
    pub failure: Option<String>,
    /// The structured oracle violation, if one was recorded.
    pub violation: Option<Violation>,
}

impl RunReport {
    /// True when the run completed with no oracle violation and no panic.
    pub fn clean(&self) -> bool {
        self.failure.is_none() && self.violation.is_none()
    }
}

/// Runs one scenario: constructs the structure inside a fresh oracle
/// session, prefils it deterministically from the (unscheduled) main
/// thread, then drives `params.workers` scheduled workers through a mixed
/// insert/remove/contains workload under the `(strategy, seed)` schedule.
///
/// `construct` may flip test-only resurrection flags on `ds.smr()` before
/// returning. The session is torn down *before* the structure so teardown
/// frees (sentinels, surviving nodes) are not judged by the oracle.
pub fn explore_one<S, DS, C>(
    label: &str,
    birth_era_monotonic: bool,
    params: &Params,
    strategy: Strategy,
    seed: u64,
    construct: C,
) -> RunReport
where
    S: Smr,
    DS: ConcurrentSet<S> + 'static,
    C: FnOnce(SmrConfig) -> DS,
{
    let session = check::begin_session(SessionConfig {
        label: format!("{label} seed={seed} strat={}", strategy.label()),
        birth_era_monotonic,
    });
    let ds = Arc::new(construct(quiet_config(params)));

    // Deterministic prefill from the main thread: no preemptor installed, so
    // instrumentation preempt points are no-ops and the oracle still sees
    // every alloc/publish under the prefill tid.
    let prefill_tid = params.workers;
    check::set_current_tid(Some(prefill_tid));
    {
        let mut ctx = ds.smr().register(prefill_tid);
        for key in [2u64, 4] {
            if key <= params.key_range {
                ds.insert(&mut ctx, key);
            }
        }
        ds.smr().unregister(&mut ctx);
    }
    check::set_current_tid(None);

    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(params.workers);
    for tid in 0..params.workers {
        let ds = Arc::clone(&ds);
        let ops = params.ops_per_worker;
        let key_range = params.key_range;
        tasks.push(Box::new(move || {
            worker_body(&*ds, tid, ops, key_range, seed);
        }));
    }

    let Outcome {
        steps,
        failure,
        budget_exhausted,
    } = run_schedule(strategy, seed, params.budget, tasks);

    let violation = check::take_violation();
    drop(session);
    drop(ds);
    RunReport {
        steps,
        budget_exhausted,
        failure,
        violation,
    }
}

fn worker_body<S: Smr, DS: ConcurrentSet<S>>(
    ds: &DS,
    tid: usize,
    ops: usize,
    key_range: u64,
    seed: u64,
) {
    check::set_current_tid(Some(tid));
    let mut rng = SplitMix64(seed ^ (0xD1B5_4A32_D192_ED03u64.wrapping_mul(tid as u64 + 1)));
    let mut ctx = ds.smr().register(tid);
    for op in 0..ops {
        let key = 1 + rng.below(key_range);
        match op % 3 {
            0 => {
                ds.insert(&mut ctx, key);
            }
            1 => {
                ds.remove(&mut ctx, key);
            }
            _ => {
                ds.contains(&mut ctx, key);
            }
        }
    }
    ds.smr().flush(&mut ctx);
    ds.smr().unregister(&mut ctx);
    check::set_current_tid(None);
}

/// Dispatches one matrix cell to the concrete scheme/structure pair.
pub fn run_matrix_one(
    scheme: Scheme,
    structure: Structure,
    strategy: Strategy,
    seed: u64,
    params: &Params,
) -> RunReport {
    let label = format!("{}/{}", scheme.label(), structure.label());
    macro_rules! go {
        ($S:ty) => {
            match structure {
                Structure::List => explore_one::<$S, HarrisList<$S>, _>(
                    &label,
                    scheme.interval(),
                    params,
                    strategy,
                    seed,
                    HarrisList::new,
                ),
                Structure::HashMap => explore_one::<$S, HmHashMap<$S>, _>(
                    &label,
                    scheme.interval(),
                    params,
                    strategy,
                    seed,
                    |cfg| HmHashMap::with_buckets(cfg, 2),
                ),
            }
        };
    }
    match scheme {
        Scheme::NbrPlus => go!(nbr::NbrPlus),
        Scheme::Nbr => go!(nbr::Nbr),
        Scheme::Debra => go!(smr_baselines::Debra),
        Scheme::Qsbr => go!(smr_baselines::Qsbr),
        Scheme::Rcu => go!(smr_baselines::Rcu),
        Scheme::Ibr => go!(smr_baselines::Ibr),
        Scheme::He => go!(smr_baselines::HazardEras),
        Scheme::Wfe => go!(smr_baselines::Wfe),
        Scheme::Hp => go!(smr_baselines::HazardPointers),
        Scheme::EpochPop => go!(smr_pop::EpochPop),
        Scheme::HpPop => go!(smr_pop::HpPop),
        Scheme::Leaky => go!(smr_baselines::Leaky),
    }
}

/// Formats a failing run for the test log: everything needed to replay.
pub fn replay_banner(
    scheme_label: &str,
    structure_label: &str,
    strategy: Strategy,
    seed: u64,
    report: &RunReport,
) -> String {
    let mut s = format!(
        "--- smr-check failure: {scheme_label}/{structure_label} ---\n\
         replay: strategy={} seed={seed} steps={} budget_exhausted={}\n",
        strategy.label(),
        report.steps,
        report.budget_exhausted,
    );
    if let Some(f) = &report.failure {
        s.push_str(&format!("panic: {f}\n"));
    }
    if let Some(v) = &report.violation {
        s.push_str(&format!("{v}\n"));
    }
    s
}
