//! Hazard eras (Ramalhete & Correia, SPAA 2017).
//!
//! A hybrid of hazard pointers and epochs: instead of announcing the *address*
//! of every record it is about to dereference, a thread announces the global
//! *era* it is reading in, one per hazard-index. A retired record is safe once
//! no announced era falls inside its `[birth, retire]` lifetime. This keeps
//! HP's bounded garbage while replacing the per-record validation re-read with
//! an era re-read (still a per-access store + fence, which is why the paper
//! groups HE with the "instrumentation similar to HPs" family).
//!
//! **Era-hull scan.** The reclamation scan treats each thread's announced
//! eras as the contiguous interval `[min, max]` over its slots rather than as
//! a set of points. Point-era sweeping has a gap that is unsound the moment a
//! traversal follows a pointer out of an *unlinked* record (the Harris list's
//! marked chains): a record born and retired strictly *between* two of the
//! traverser's announced eras is covered by neither point and gets freed
//! while the traverser holds a validated pointer to it — the root cause of
//! the marked-chain race this port originally side-stepped with
//! `CAN_TRAVERSE_UNLINKED = false` (reproduced deterministically in
//! `tests/tests/marked_chain_race.rs`). The hull closes the gap and is what
//! lets HE run the paper-faithful batch-unlink traversal; the full safety
//! argument is in DESIGN.md, "Traversals through unlinked records under the
//! interval reclaimers".

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    Atomic, BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState,
    Shared, Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Slot value meaning "no era announced".
const NONE: u64 = 0;

struct EraSlots {
    slots: Box<[AtomicU64]>,
}

/// Per-thread context for [`HazardEras`].
pub struct HeCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch: per-thread era-hull bounds, each sorted.
    lowers: Vec<u64>,
    uppers: Vec<u64>,
    allocs_since_advance: usize,
    retires_since_scan: usize,
    mag: Magazine,
    stats: ThreadStats,
}

/// The hazard-eras reclaimer.
pub struct HazardEras {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    era: EraClock,
    slots: Vec<CachePadded<EraSlots>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
    /// Test-only resurrection of the pre-fix **point-era** sweep: each
    /// announced era is treated as a degenerate `[e, e]` interval instead of
    /// folding a thread's slots into their contiguous hull. This reopens the
    /// exact marked-chain soundness hole PR 5 closed (a record born and
    /// retired strictly between two announced eras is covered by neither
    /// point) so the smr-check explorer can prove it rediscovers the bug.
    /// Only settable under the `check` feature; never read by release builds.
    #[cfg(feature = "check")]
    resurrect_point_sweep: std::sync::atomic::AtomicBool,
}

impl HazardEras {
    /// Snapshots every active thread's announced era *hull* — the contiguous
    /// interval `[min, max]` over its non-empty slots — pushing one bound
    /// pair per announcing thread.
    fn collect_hulls(&self, lowers: &mut Vec<u64>, uppers: &mut Vec<u64>) {
        #[cfg(feature = "check")]
        if self
            .resurrect_point_sweep
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            // Resurrected pre-fix behaviour: every announced era is its own
            // degenerate interval; the gap between two announcements covers
            // nothing.
            for tid in self.registry.active_tids() {
                for s in self.slots[tid].slots.iter() {
                    let e = s.load(Ordering::Acquire);
                    if e != NONE {
                        lowers.push(e);
                        uppers.push(e);
                    }
                }
            }
            return;
        }
        for tid in self.registry.active_tids() {
            let (mut lo, mut hi) = (u64::MAX, NONE);
            // Two passes over the thread's slots, folded into one hull,
            // close the `protect_copy` scan race for an era moved between
            // slots mid-scan — the same argument (and the same
            // one-relocation-per-held-record contract) as the
            // hazard-pointer scan (DESIGN.md, "Validate-after-copy for
            // moved hazards"); relocations only ever happen between slots
            // of the same thread, so per-thread double collection suffices.
            for _ in 0..2 {
                for s in self.slots[tid].slots.iter() {
                    let e = s.load(Ordering::Acquire);
                    if e != NONE {
                        lo = lo.min(e);
                        hi = hi.max(e);
                    }
                }
            }
            if hi != NONE {
                lowers.push(lo);
                uppers.push(hi);
            }
        }
    }

    fn scan_and_reclaim(&self, ctx: &mut HeCtx) {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, ctx.limbo.len() as u64, 0);
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag so they flow through the ordinary
        // protection-checked sweep below (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        // Single-fence scan (see DESIGN.md): one SeqCst fence, then Acquire
        // loads of every announced era.
        fence(Ordering::SeqCst);
        ctx.lowers.clear();
        ctx.uppers.clear();
        self.collect_hulls(&mut ctx.lowers, &mut ctx.uppers);
        // Sort-then-sweep: with both bound arrays sorted, each record is
        // tested with two binary searches (O((R + T) log T) instead of
        // O(R × T·K)) — the same interval sweep IBR uses.
        ctx.lowers.sort_unstable();
        ctx.uppers.sort_unstable();
        let before = ctx.limbo.len();
        // SAFETY: a thread can only dereference a record whose lifetime
        // overlaps its announced era hull — announced point eras cover every
        // record reached through live predecessors, and the hull in between
        // covers records reached through *unlinked* (marked-frozen)
        // predecessors, whose retire eras are sandwiched between the
        // traverser's announcements (DESIGN.md, "Traversals through unlinked
        // records under the interval reclaimers"). If no hull overlaps
        // [birth, retire], no thread can still dereference the record.
        let freed = unsafe {
            ctx.limbo.reclaim_disjoint_intervals(
                &ctx.lowers,
                &ctx.uppers,
                &mut ctx.stats,
                &mut ctx.mag,
            )
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    fn clear_slots(&self, tid: usize) {
        // Claims drop first: mirrored claims must stay a subset of the real
        // announcements (a claim outliving its slot would flag legal frees).
        smr_common::check::clear_claims(tid);
        for s in self.slots[tid].slots.iter() {
            if s.load(Ordering::Relaxed) != NONE {
                s.store(NONE, Ordering::Release);
            }
        }
    }

    /// Restores the pre-fix point-era sweep (see the field docs). Test-only:
    /// the smr-check resurrect suite flips this to prove the checker finds
    /// the historical marked-chain bug.
    #[cfg(feature = "check")]
    pub fn resurrect_point_era_sweep(&self) {
        self.resurrect_point_sweep
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Smr for HazardEras {
    type ThreadCtx = HeCtx;

    const NAME: &'static str = "HE";
    const USES_PROTECTION: bool = true;
    // Safe since the scan sweeps per-thread era *hulls* (see the module
    // docs): a record reached through a marked-frozen pointer out of an
    // unlinked record has its lifetime sandwiched between the eras the
    // traverser announced before and at the hop, so the hull pins it even
    // though no announced point era falls inside the lifetime. The HE
    // *paper*'s point-era scan inherits HP's usage contract and must not set
    // this; the deterministic reproducer in `marked_chain_race.rs` shows
    // exactly how the point sweep frees a chain successor early.
    const CAN_TRAVERSE_UNLINKED: bool = true;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(EraSlots {
                    slots: (0..config.hazards_per_thread)
                        .map(|_| AtomicU64::new(NONE))
                        .collect(),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            era: EraClock::new(),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
            #[cfg(feature = "check")]
            resurrect_point_sweep: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> HeCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.clear_slots(tid);
        HeCtx {
            tid,
            limbo: LimboBag::with_batch(self.config.retire_batch_cap()),
            scan: ScanState::new(),
            lowers: Vec::with_capacity(self.config.max_threads),
            uppers: Vec::with_capacity(self.config.max_threads),
            allocs_since_advance: 0,
            retires_since_scan: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut HeCtx) {
        self.clear_slots(ctx.tid);
        self.scan_and_reclaim(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut HeCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn global_era(&self) -> u64 {
        self.era.now()
    }

    /// Announce the current era in `slot`, re-reading until the era is stable,
    /// then load the pointer (the HE `get_protected` protocol).
    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut HeCtx, slot: usize, src: &Atomic<T>) -> Shared<T> {
        let slots = &self.slots[ctx.tid].slots;
        debug_assert!(slot < slots.len(), "era slot index out of range");
        let mut announced = slots[slot].load(Ordering::Relaxed);
        loop {
            let p = src.load(Ordering::Acquire);
            let era = self.era.now();
            if era == announced {
                // Mirror the stable announcement (the oracle folds a
                // thread's era claims into the same [min, max] hull the
                // reclamation sweep uses).
                smr_common::check::claim_era(ctx.tid, slot, era);
                return p;
            }
            slots[slot].store(era, Ordering::SeqCst);
            // Keep the mirrored claim in lockstep with the real slot: the
            // old era stops being announced by the store above, and leaving
            // it claimed would stretch the oracle's hull beyond what the
            // real sweep sees (no preempt point sits between the store and
            // this call, so the pair is scheduler-atomic).
            smr_common::check::claim_era(ctx.tid, slot, era);
            announced = era;
            ctx.stats.protect_failures += 1;
        }
    }

    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        ctx: &mut HeCtx,
        dst_slot: usize,
        src_slot: usize,
        _ptr: Shared<T>,
    ) {
        // The era announced in `src_slot` covers the record's lifetime; copying
        // that era (not the current one, which may postdate the record's
        // retirement) keeps it protected under `dst_slot`.
        //
        // Era slots are single-writer, so reading our own slots Relaxed is
        // exact; and when `dst_slot` *already* holds the source era — the
        // common case on list traversals, where every slot converges to the
        // current era within a few hops and then stays there until the next
        // era advance — the copy is idempotent: the value was published by an
        // earlier `SeqCst` store of this thread and every scan already sees
        // it, so the store (and its full fence on x86) can be skipped. This
        // removes the per-hop `SeqCst` pair the Harris list's `left`-promotion
        // paid on every unmarked hop (the BENCH_3 HE harris-list outlier; see
        // DESIGN.md, "Skipping idempotent era republishes").
        let slots = &self.slots[ctx.tid].slots;
        let era = slots[src_slot].load(Ordering::Relaxed);
        if slots[dst_slot].load(Ordering::Relaxed) != era {
            slots[dst_slot].store(era, Ordering::SeqCst);
        }
        if era != NONE {
            smr_common::check::claim_era(ctx.tid, dst_slot, era);
        }
    }

    #[inline]
    fn clear_protections(&self, ctx: &mut HeCtx) {
        self.clear_slots(ctx.tid);
    }

    #[inline]
    fn end_op(&self, ctx: &mut HeCtx) {
        self.clear_slots(ctx.tid);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    fn alloc<T: SmrNode>(&self, ctx: &mut HeCtx, value: T) -> Shared<T> {
        let raw = ctx.mag.alloc_node(value);
        // Stamp after the pop (which happens-after the block's free), so a
        // recycled block's new birth era is never older than the era at
        // which its previous incarnation was freed (`Smr::alloc` docs).
        // SAFETY: freshly allocated above, not yet published.
        unsafe { (*raw).header_mut().set_birth_era(self.era.now()) };
        // SAFETY: same exclusive ownership as the line above.
        smr_common::check::on_node_alloc(raw as usize, unsafe { (*raw).header().birth_era() });
        ctx.allocs_since_advance += 1;
        if ctx.allocs_since_advance >= self.config.epoch_freq {
            ctx.allocs_since_advance = 0;
            let era = self.era.advance();
            trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
            ctx.stats.epoch_advances += 1;
        }
        ctx.stats.allocs += 1;
        Shared::from_raw(raw)
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut HeCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        let era = self.era.now();
        // Retire coalescing: stage the record (era-stamped before staging).
        // The `empty_freq` scan cadence stays per-retire; the watermark
        // trigger is consulted only when a batch flushes (bounded overshoot
        // of RETIRE_BATCH_CAP - 1).
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), era));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
        ctx.retires_since_scan += 1;
        if ctx.retires_since_scan >= self.config.empty_freq
            || (flushed && self.policy.scan_on_retire(ctx.limbo.len()))
        {
            if self.policy.scan_on_retire(ctx.limbo.len()) {
                trace::emit(
                    ctx.tid,
                    TraceKind::LimboHigh,
                    ctx.limbo.len() as u64,
                    self.config.hi_watermark as u64,
                );
            }
            ctx.retires_since_scan = 0;
            self.scan_and_reclaim(ctx);
        }
    }

    fn flush(&self, ctx: &mut HeCtx) {
        self.era.advance();
        self.scan_and_reclaim(ctx);
    }

    fn thread_stats(&self, ctx: &HeCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut HeCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &HeCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for HazardEras {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn reclaims_when_no_era_overlaps() {
        let smr = HazardEras::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..200 {
            smr.begin_op(&mut ctx);
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            smr.end_op(&mut ctx);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn announced_era_protects_contemporary_records() {
        let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
        let mut owner = smr.register(0);
        let mut reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 9,
            },
        );
        shared.store(node, Ordering::Release);

        // Reader protects (announces the era covering the record's lifetime).
        let p = smr.protect(&mut reader, 0, &shared);
        assert_eq!(unsafe { p.deref().key }, 9);

        // Owner unlinks + retires it and churns through many more records.
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        for i in 0..100 {
            let f = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut owner, f) };
        }
        // The protected record must still be dereferenceable.
        assert_eq!(unsafe { p.deref().key }, 9);
        assert!(smr.limbo_len(&owner) >= 1);

        smr.clear_protections(&mut reader);
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);

        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn era_advances_with_allocations() {
        let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(2, 64));
        let mut ctx = smr.register(0);
        let before = smr.global_era();
        for i in 0..10 {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
        }
        assert!(smr.global_era() > before);
        smr.unregister(&mut ctx);
    }
}
