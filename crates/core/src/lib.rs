//! # nbr — Neutralization Based Reclamation
//!
//! A Rust reproduction of **NBR** and **NBR+**, the safe memory reclamation
//! (SMR) algorithms of *NBR: Neutralization Based Reclamation* (Singh, Brown &
//! Mashtizadeh, PPoPP 2021).
//!
//! ## The algorithms in one paragraph
//!
//! Every thread collects the records it unlinks in a private *limbo bag*
//! (Algorithm 1). Data-structure operations are split into a **read phase**
//! (Φ_read: synchronization-free traversal, no writes to shared memory) and a
//! **write phase** (Φ_write: the update, touching only records *reserved* at
//! the phase boundary). When a thread's bag fills up it *neutralizes* all other
//! threads: any thread still in its read phase discards its pointers and
//! restarts from the root, any thread in its write phase is already covered by
//! its reservations — so after scanning the reservations the reclaimer can free
//! everything else in its bag. **NBR+** (Algorithm 2) adds LoWatermark
//! bookkeeping so threads can piggyback on neutralizations broadcast by other
//! threads (*relaxed grace periods*) and reclaim without sending signals of
//! their own, reducing the signal count from `O(n²)` to `O(n)` per
//! system-wide reclamation wave.
//!
//! The result combines EBR-like speed with HP-like bounded garbage, while
//! only requiring the data structure to be expressible as (a sequence of)
//! read-then-write phases that restart from the root — which covers lazy
//! lists, Harris lists, DGT-style external BSTs, (a,b)-trees and many more
//! (Table 1 of the paper; see the `conc-ds` crate for the implementations used
//! in the evaluation).
//!
//! ## What is different from the paper (and why)
//!
//! The paper delivers neutralization with POSIX signals and `siglongjmp`.
//! Longjmping over Rust frames is undefined behaviour unless every skipped
//! frame is trivially destructible, so this reproduction delivers
//! neutralization **cooperatively**: reclaimers publish a signal sequence
//! number per thread, readers observe it at *checkpoints* (one relaxed load per
//! pointer hop) and restart via structured control flow, and reclaimers verify
//! the handshake before freeing. The full argument for why this preserves the
//! paper's safety reasoning (and what it costs) is in `DESIGN.md`,
//! substitution S1, and in the [`neutralize`] module docs.
//!
//! ## Quick start
//!
//! ```
//! use nbr::{NbrPlus, OpResult, SmrHandle};
//! use smr_common::{Atomic, NodeHeader, Smr, SmrConfig, Shared};
//! use std::sync::atomic::Ordering;
//!
//! struct Node { header: NodeHeader, value: u64 }
//! smr_common::impl_smr_node!(Node);
//!
//! // One reclaimer instance shared by all threads of the data structure.
//! let smr = NbrPlus::new(SmrConfig::default());
//!
//! // Each thread registers once and runs operations through its handle.
//! let mut handle = SmrHandle::register(&smr, 0);
//! let root = Atomic::<Node>::null();
//! let n = handle.alloc(Node { header: NodeHeader::new(), value: 42 });
//! root.store(n, Ordering::Release);
//!
//! let v = handle.run(|phase| {
//!     let p = phase.load(0, &root)?;          // Φ_read: checkpointed load
//!     let v = unsafe { p.deref().value };
//!     phase.reserve(&[p.untagged_usize()]);   // reservation + Φ_write begins
//!     OpResult::done(v)
//! });
//! assert_eq!(v, 42);
//!
//! // Unlink + retire: the record is freed once it is provably safe.
//! let old = root.swap(Shared::null(), Ordering::AcqRel);
//! unsafe { handle.retire(old) };
//! ```
//!
//! For full data structures integrated with NBR (lazy list, Harris list,
//! Harris-Michael list, DGT external BST, (a,b)-tree) see the `conc-ds` crate
//! and the `examples/` directory of the workspace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod guard;
pub mod nbr;
pub mod nbr_plus;
pub mod neutralize;

pub use guard::{Neutralized, OpResult, ReadPhase, SmrHandle};
pub use nbr::{Nbr, NbrCtx};
pub use nbr_plus::{NbrPlus, NbrPlusCtx};
pub use neutralize::{HandshakeOutcome, NeutralizationCore, SignalSlot};

// Re-export the framework types users need to implement their own nodes.
pub use smr_common::{Atomic, NodeHeader, Shared, Smr, SmrConfig, SmrNode};
