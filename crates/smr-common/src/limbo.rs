//! Per-thread limbo bags (Algorithm 1, line 2).
//!
//! Each thread accumulates the records it has unlinked in a private
//! [`LimboBag`]. When the bag grows past the reclaimer-specific watermark the
//! reclaimer runs its scan (signals + reservation scan for NBR, epoch scan for
//! DEBRA, hazard scan for HP, …) and frees every record the scan proves safe.
//!
//! The bag preserves retire order, which NBR+ relies on: a thread at the
//! LoWatermark bookmarks the current tail and may later free exactly the
//! prefix retired before the bookmark (Algorithm 2, lines 14/19).

use crate::retired::Retired;
use crate::stats::ThreadStats;

/// An ordered bag of retired records owned by a single thread.
#[derive(Default)]
pub struct LimboBag {
    records: Vec<Retired>,
}

impl LimboBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
        }
    }

    /// An empty bag with room for `capacity` records (avoids growth in the
    /// retire fast path).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Appends a retired record (Algorithm 1, line 19).
    #[inline]
    pub fn push(&mut self, retired: Retired) {
        self.records.push(retired);
    }

    /// Number of unreclaimed records currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the bag holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the held records (used by interval-based scans that need
    /// eras rather than addresses).
    pub fn iter(&self) -> impl Iterator<Item = &Retired> {
        self.records.iter()
    }

    /// Frees every record in the prefix `[0, up_to)` whose fate `decide`
    /// approves, retaining (in order) the survivors and the suffix.
    ///
    /// `decide` receives each candidate and returns `true` if the record is
    /// *safe* to free now (not reserved / not protected / outside every active
    /// interval). Returns the number of records freed.
    ///
    /// # Safety
    /// The caller must guarantee that any record for which `decide` returns
    /// `true` is safe in the sense of Section 3: unlinked and unreachable from
    /// every thread's private pointers.
    pub unsafe fn reclaim_prefix_if(
        &mut self,
        up_to: usize,
        mut decide: impl FnMut(&Retired) -> bool,
        stats: &mut ThreadStats,
    ) -> usize {
        let limit = up_to.min(self.records.len());
        let mut freed = 0usize;
        let mut kept: Vec<Retired> = Vec::with_capacity(self.records.len());
        for (i, rec) in self.records.drain(..).enumerate() {
            if i < limit && decide(&rec) {
                rec.reclaim();
                freed += 1;
            } else {
                kept.push(rec);
            }
        }
        self.records = kept;
        stats.frees += freed as u64;
        freed
    }

    /// Frees every record in the bag whose fate `decide` approves.
    ///
    /// # Safety
    /// Same contract as [`LimboBag::reclaim_prefix_if`].
    pub unsafe fn reclaim_if(
        &mut self,
        decide: impl FnMut(&Retired) -> bool,
        stats: &mut ThreadStats,
    ) -> usize {
        self.reclaim_prefix_if(usize::MAX, decide, stats)
    }

    /// Frees everything unconditionally. Used at shutdown, after all threads
    /// have deregistered (when every record is trivially safe), and by the
    /// leaky reclaimer's drop path in tests.
    ///
    /// # Safety
    /// No thread may still hold a reference to any record in the bag.
    pub unsafe fn reclaim_all(&mut self, stats: &mut ThreadStats) -> usize {
        self.reclaim_if(|_| true, stats)
    }

    /// Removes and returns all records without freeing them (ownership moves
    /// to the caller, e.g. a global pool at thread deregistration).
    pub fn drain(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.records)
    }
}

impl core::fmt::Debug for LimboBag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LimboBag")
            .field("len", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;

    struct N {
        header: NodeHeader,
        #[allow(dead_code)]
        k: u64,
    }
    crate::impl_smr_node!(N);

    fn retire_one(k: u64, era: u64) -> Retired {
        let raw = Box::into_raw(Box::new(N {
            header: NodeHeader::new(),
            k,
        }));
        unsafe { Retired::new(raw, era) }
    }

    #[test]
    fn push_and_len() {
        let mut bag = LimboBag::with_capacity(4);
        assert!(bag.is_empty());
        for i in 0..4 {
            bag.push(retire_one(i, i));
        }
        assert_eq!(bag.len(), 4);
        let mut stats = ThreadStats::default();
        unsafe { bag.reclaim_all(&mut stats) };
        assert_eq!(stats.frees, 4);
        assert!(bag.is_empty());
    }

    #[test]
    fn reclaim_prefix_respects_bookmark_and_reservations() {
        let mut bag = LimboBag::new();
        let mut addrs = Vec::new();
        for i in 0..6 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.push(r);
        }
        let reserved = addrs[1];
        let mut stats = ThreadStats::default();
        // Bookmark at 4: only records 0..4 are candidates; record 1 is reserved.
        let freed = unsafe { bag.reclaim_prefix_if(4, |r| r.address() != reserved, &mut stats) };
        assert_eq!(freed, 3);
        assert_eq!(bag.len(), 3); // reserved survivor + 2 past the bookmark
        assert_eq!(stats.frees, 3);
        // Survivors keep their order: reserved record first, then the suffix.
        let remaining: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(remaining, vec![addrs[1], addrs[4], addrs[5]]);
        unsafe { bag.reclaim_all(&mut stats) };
    }

    #[test]
    fn reclaim_if_scans_entire_bag() {
        let mut bag = LimboBag::new();
        for i in 0..10 {
            bag.push(retire_one(i, i));
        }
        let mut stats = ThreadStats::default();
        let freed = unsafe { bag.reclaim_if(|r| r.retire_era() % 2 == 0, &mut stats) };
        assert_eq!(freed, 5);
        assert_eq!(bag.len(), 5);
        unsafe { bag.reclaim_all(&mut stats) };
        assert_eq!(stats.frees, 10);
    }

    #[test]
    fn drain_transfers_ownership_without_freeing() {
        let mut bag = LimboBag::new();
        for i in 0..3 {
            bag.push(retire_one(i, i));
        }
        let drained = bag.drain();
        assert_eq!(drained.len(), 3);
        assert!(bag.is_empty());
        let mut stats = ThreadStats::default();
        for r in drained {
            unsafe { r.reclaim() };
            stats.frees += 1;
        }
        assert_eq!(stats.frees, 3);
    }
}
