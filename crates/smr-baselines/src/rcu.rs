//! RCU-style epoch reclamation (the "rcu" variant of the IBR benchmark, which
//! the paper adapted into setbench for its evaluation).
//!
//! Mechanism:
//!
//! * A global era, advanced every `epoch_freq` retires.
//! * Each thread announces the era it observed when its operation began
//!   (a read-side critical section) and withdraws the announcement when the
//!   operation ends.
//! * Every record is stamped with the era at which it was retired. A record
//!   may be freed once its retire era is strictly smaller than the minimum era
//!   announced by any thread currently inside an operation.
//!
//! A reader that stalls inside an operation keeps its (old) announcement
//! published, so the minimum never rises and garbage grows without bound —
//! the behaviour experiment E2 demonstrates for RCU.

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState, Shared,
    Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Announcement value meaning "not inside an operation".
const IDLE: u64 = u64::MAX;

struct RcuSlot {
    announced: AtomicU64,
}

/// Per-thread context for [`Rcu`].
pub struct RcuCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    retires_since_scan: usize,
    retires_since_advance: usize,
    /// The era announced at `begin_op` (the op's read-side pin). This — not
    /// `era.now()` — is the memo validation stamp: see `validation_stamp`.
    op_epoch: u64,
    mag: Magazine,
    stats: ThreadStats,
}

/// The RCU-style reclaimer.
pub struct Rcu {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    era: EraClock,
    slots: Vec<CachePadded<RcuSlot>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
}

impl Rcu {
    /// Minimum era announced by any thread currently inside an operation.
    /// Single-fence scan (see DESIGN.md): one SeqCst fence, then Acquire
    /// loads of every announcement.
    fn min_announced_era(&self) -> u64 {
        fence(Ordering::SeqCst);
        let mut min = u64::MAX;
        for tid in self.registry.active_tids() {
            let a = self.slots[tid].announced.load(Ordering::Acquire);
            if a != IDLE {
                min = min.min(a);
            }
        }
        // Frontier clamp: never report a reclamation frontier past the
        // current era, even when every thread is idle. This makes "a record
        // retired at era `e` was freed" imply "the era advanced past `e`" —
        // the property the epoch-stamped lookup memo validates against
        // (`validation_stamp`): with no active readers and no clamp, a
        // same-era free could slip under an unchanged memo stamp.
        min.min(self.era.now())
    }

    fn scan_and_reclaim(&self, ctx: &mut RcuCtx) {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, ctx.limbo.len() as u64, 0);
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag so they flow through the ordinary
        // protection-checked sweep below (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        let min = self.min_announced_era();
        let before = ctx.limbo.len();
        // SAFETY: a record retired in era `e` was unlinked before era `e`
        // ended; any reader announcing an era `> e` began its operation after
        // the unlink and therefore cannot have found the record by traversal.
        let freed = unsafe {
            ctx.limbo
                .reclaim_if(|r| r.retire_era() < min, &mut ctx.stats, &mut ctx.mag)
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }
}

impl Smr for Rcu {
    type ThreadCtx = RcuCtx;

    const NAME: &'static str = "RCU";

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(RcuSlot {
                    announced: AtomicU64::new(IDLE),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            era: EraClock::new(),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> RcuCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.slots[tid].announced.store(IDLE, Ordering::SeqCst);
        RcuCtx {
            tid,
            limbo: LimboBag::with_batch(self.config.retire_batch_cap()),
            scan: ScanState::new(),
            retires_since_scan: 0,
            retires_since_advance: 0,
            op_epoch: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut RcuCtx) {
        smr_common::check::unpin_epoch(ctx.tid);
        self.slots[ctx.tid].announced.store(IDLE, Ordering::SeqCst);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut RcuCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_op(&self, ctx: &mut RcuCtx) {
        let e = self.era.now();
        self.slots[ctx.tid].announced.store(e, Ordering::SeqCst);
        ctx.op_epoch = e;
        // Oracle mirror (after the real announcement): frees require
        // `retire_era < min announced`, so while `e` is published no record
        // with retire era >= e may be freed.
        smr_common::check::pin_epoch(ctx.tid, e);
    }

    #[inline]
    fn end_op(&self, ctx: &mut RcuCtx) {
        // Oracle mirror: drop the pin before the real withdrawal so the
        // mirrored claim stays a subset of the published announcement.
        smr_common::check::unpin_epoch(ctx.tid);
        // Withdrawing the announcement only *permits* more reclamation
        // (Release suffices): prior reads of this operation stay ordered
        // before the store, and the next begin_op re-announces with SeqCst
        // before any shared read.
        self.slots[ctx.tid].announced.store(IDLE, Ordering::Release);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    #[inline]
    fn global_era(&self) -> u64 {
        self.era.now()
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut RcuCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        let era = self.era.now();
        // Retire coalescing: stage the record (era-stamped before staging);
        // peak-limbo bookkeeping is amortized to batch flushes. The scan and
        // era-advance cadences below stay per-retire so the reclamation
        // frontier advances at the configured rates.
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), era));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }

        ctx.retires_since_advance += 1;
        if ctx.retires_since_advance >= self.config.epoch_freq {
            ctx.retires_since_advance = 0;
            let era = self.era.advance();
            ctx.stats.epoch_advances += 1;
            trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
        }
        ctx.retires_since_scan += 1;
        if ctx.retires_since_scan >= self.config.empty_freq {
            ctx.retires_since_scan = 0;
            self.scan_and_reclaim(ctx);
        }
    }

    fn flush(&self, ctx: &mut RcuCtx) {
        self.era.advance();
        self.scan_and_reclaim(ctx);
    }

    #[inline]
    fn validation_stamp(&self, ctx: &mut RcuCtx) -> Option<u64> {
        // Sound for RCU *because of the frontier clamp* in
        // `min_announced_era`: a record retired at era `e` can only be freed
        // once the global era exceeds `e`. `op_epoch` is the era read at
        // `begin_op`, so stamp equality between two operations means the
        // era never advanced in between and nothing retired in the window
        // can have been freed. (`era.now()` mid-op would be unsound: the
        // stamp must be the op-pinned value.)
        if self.config.memo {
            Some(ctx.op_epoch)
        } else {
            None
        }
    }

    fn thread_stats(&self, ctx: &RcuCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut RcuCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &RcuCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for Rcu {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn op_with_retire(smr: &Rcu, ctx: &mut RcuCtx, key: u64) {
        smr.begin_op(ctx);
        let p = smr.alloc(
            ctx,
            Node {
                header: NodeHeader::new(),
                key,
            },
        );
        unsafe { smr.retire(ctx, p) };
        smr.end_op(ctx);
    }

    #[test]
    fn reclaims_when_no_reader_is_older() {
        let smr = Rcu::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..100 {
            op_with_retire(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn active_old_reader_pins_garbage() {
        let smr = Rcu::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut reader = smr.register(1);
        smr.begin_op(&mut reader); // announces the current (old) era and stalls

        for i in 0..300 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        assert_eq!(
            smr.thread_stats(&worker).frees,
            0,
            "records retired at or after the reader's era must not be freed"
        );
        assert_eq!(smr.limbo_len(&worker), 300);

        smr.end_op(&mut reader);
        smr.flush(&mut worker);
        assert!(smr.thread_stats(&worker).frees > 0);

        smr.unregister(&mut reader);
        smr.unregister(&mut worker);
    }

    #[test]
    fn era_advances_with_retires() {
        let smr = Rcu::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let before = smr.global_era();
        for i in 0..50 {
            op_with_retire(&smr, &mut ctx, i);
        }
        assert!(smr.global_era() > before);
        smr.unregister(&mut ctx);
    }
}
