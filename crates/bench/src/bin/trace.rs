//! `trace` — tier-2 reclamation-event capture.
//!
//! Runs one seeded fault trial (the same standing fault cell as
//! `stress --faults`) with the per-thread event rings armed, and writes the
//! drained events as Chrome Trace Event Format JSON — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each scheme tid is one
//! timeline row; reclamation scans and fault parks render as duration spans,
//! pings/strikes/concessions as instants on the row of the thread that
//! observed them.
//!
//! This binary only exists in a `--features trace` build — tracing is
//! deliberately excluded from every measurement binary (they assert it is
//! compiled *out*), so capturing a trace is always an explicit, separate
//! build:
//!
//! ```text
//! cargo run -p nbr-bench --release --features trace --bin trace -- \
//!     [--smr NBR+] [--seed 0x5EED] [--threads 4] [--ops 200000] \
//!     [--capacity 65536] [--out trace.json]
//! ```
//!
//! The fault plan is derived from the seed exactly as `stress --faults`
//! derives its round-0 plan, so a crash or anomaly seen there can be
//! re-captured here with the same seed.

use smr_common::telemetry::{trace, TraceKind};
use smr_common::SmrConfig;
use smr_harness::families::{run_with, HarrisListFamily, SmrKind};
use smr_harness::{report, FaultPlan, StopCondition, WorkloadMix, WorkloadSpec};

struct Args {
    smr: SmrKind,
    seed: u64,
    threads: usize,
    ops: u64,
    capacity: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smr: SmrKind::NbrPlus,
        seed: 0x5EED_FA17,
        threads: 4,
        ops: 200_000,
        capacity: 65_536,
        out: "trace.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--smr" => {
                let s = val("--smr");
                args.smr = SmrKind::parse(&s)
                    .unwrap_or_else(|| panic!("unknown scheme {s} (labels match the bench output)"))
            }
            "--seed" => {
                let s = val("--seed");
                args.seed = s
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).expect("--seed hex"))
                    .unwrap_or_else(|| s.parse().expect("--seed"));
            }
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--ops" => args.ops = val("--ops").parse().expect("--ops"),
            "--capacity" => args.capacity = val("--capacity").parse().expect("--capacity"),
            "--out" => args.out = val("--out"),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    assert!(
        smr_common::telemetry::trace_compiled_in(),
        "the trace binary requires the `trace` feature: \
         cargo run -p nbr-bench --release --features trace --bin trace"
    );
    let args = parse_args();

    // Same seed mixing as stress --faults round 0, so plans are replayable
    // across the two binaries.
    let seed = args.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let plan = FaultPlan::seeded(seed, args.threads);
    report::note(
        "fault-plan",
        &format!(
            "smr={} plan={plan} — re-capture with: trace --seed {:#x}",
            args.smr.label(),
            args.seed
        ),
    );

    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        2_048,
        args.threads,
        StopCondition::TotalOps(args.ops),
    )
    .with_fault_plan(plan);
    let config = SmrConfig::default()
        .with_max_threads(args.threads + 4)
        .with_watermarks(1024, 256)
        .with_signal_cost_ns(2_000);

    trace::begin(args.capacity);
    let r = run_with::<HarrisListFamily>(args.smr, &spec, config);
    let events = trace::end();

    eprintln!(
        "trial: {:.3} Mops/s, {} retired, {} freed, {} faults injected, {} departed",
        r.mops, r.smr_totals.retires, r.smr_totals.frees, r.injected_faults, r.departed_workers
    );
    if trace::dropped() > 0 {
        report::note(
            "trace-dropped",
            &format!(
                "{} events overwritten in the bounded rings — raise --capacity \
                 (currently {}) for a complete timeline",
                trace::dropped(),
                args.capacity
            ),
        );
    }

    // Per-kind tally so the interesting rows are findable without opening
    // the UI; concessions and strikes name the victim thread.
    let mut scans = 0u64;
    let mut concessions = 0u64;
    for e in &events {
        match e.kind {
            TraceKind::ScanBegin => scans += 1,
            TraceKind::PingConceded => {
                concessions += 1;
                eprintln!(
                    "  t{} conceded ping seq={} with {} peer(s) still silent",
                    e.tid, e.a, e.b
                );
            }
            TraceKind::PingStrike => {
                eprintln!("  t{} charged a strike on t{} (count {})", e.tid, e.a, e.b);
            }
            TraceKind::FaultStall | TraceKind::FaultBlackhole => {
                eprintln!(
                    "  t{} fault {} for {} global ops",
                    e.tid,
                    if e.kind == TraceKind::FaultStall {
                        "stall"
                    } else {
                        "blackhole"
                    },
                    e.a
                );
            }
            TraceKind::FaultDepart => {
                eprintln!("  t{} departed at local op {}", e.tid, e.a);
            }
            _ => {}
        }
    }
    eprintln!(
        "{} events ({} scans, {} concessions); writing {}",
        events.len(),
        scans,
        concessions,
        args.out
    );

    let json = trace::to_chrome_json(&events);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!(
        "wrote {} ({} events) — load in https://ui.perfetto.dev or chrome://tracing",
        args.out,
        events.len()
    );
}
