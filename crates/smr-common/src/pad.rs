//! Cache-line padding to avoid false sharing between per-thread slots.
//!
//! Per-thread SMR metadata (reservations, epochs, limbo-bag sizes, …) is read
//! by reclaimers and written by owners at high frequency; placing two threads'
//! slots on the same cache line would turn every such write into cross-core
//! traffic. [`CachePadded`] aligns and pads its contents to 128 bytes, which
//! covers the 64-byte line size of x86-64 plus the adjacent-line prefetcher
//! (the same choice crossbeam makes).

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes (two x86-64 cache lines).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, size_of};
    use core::sync::atomic::AtomicU64;

    #[test]
    fn alignment_is_128() {
        assert_eq!(align_of::<CachePadded<u8>>(), 128);
        assert_eq!(align_of::<CachePadded<AtomicU64>>(), 128);
    }

    #[test]
    fn size_is_multiple_of_alignment() {
        assert_eq!(size_of::<CachePadded<u8>>(), 128);
        assert_eq!(size_of::<CachePadded<[u64; 20]>>(), 256);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }
}
