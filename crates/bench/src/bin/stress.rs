//! `stress` — long-running randomized stress driver used for shaking out
//! concurrency bugs (each configuration is announced on stderr before it runs,
//! so a crash identifies the offending combination).
//!
//! ```text
//! cargo run -p nbr-bench --release --bin stress -- [rounds]
//! ```

use smr_common::SmrConfig;
use smr_harness::families::{run_with, HarrisListFamily, SmrKind};
use smr_harness::{StopCondition, WorkloadMix, WorkloadSpec};
use std::time::Duration;

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::EpochPop,
        SmrKind::HpPop,
        SmrKind::Leaky,
    ];
    let sizes = [200u64, 2_048];
    let mixes = [
        WorkloadMix::UPDATE_HEAVY,
        WorkloadMix::BALANCED,
        WorkloadMix::READ_HEAVY,
    ];
    let threads_sweep = [1usize, 2, 4];
    for round in 0..rounds {
        for &size in &sizes {
            for &mix in &mixes {
                for &threads in &threads_sweep {
                    for &kind in &kinds {
                        eprintln!(
                            "[round {round}] harris-list size={size} mix={} threads={threads} smr={}",
                            mix.label(),
                            kind.label()
                        );
                        let spec = WorkloadSpec::new(
                            mix,
                            size,
                            threads,
                            StopCondition::Duration(Duration::from_millis(120)),
                        );
                        let config = SmrConfig::default()
                            .with_max_threads(threads + 4)
                            .with_watermarks(1024, 256)
                            .with_signal_cost_ns(2_000);
                        let r = run_with::<HarrisListFamily>(kind, &spec, config.clone());
                        eprintln!(
                            "    ok: {:.3} Mops/s, {} retired, {} freed",
                            r.mops, r.smr_totals.retires, r.smr_totals.frees
                        );
                        if r.smr_totals.frees == 0 && r.smr_totals.retires > 0 {
                            // A run that frees nothing must say why rather
                            // than silently reporting 0: either the scheme
                            // never reclaims (leaky) or the trial stayed
                            // below every scan trigger.
                            if kind == SmrKind::Leaky {
                                eprintln!("    note: leaky baseline never reclaims by design");
                            } else {
                                eprintln!(
                                    "    note: 0 reclaimed — {} retires stayed below the scan \
                                     trigger (hi_watermark={}, heartbeat={} ops; {} scans ran)",
                                    r.smr_totals.retires,
                                    config.hi_watermark,
                                    config.scan_heartbeat_ops,
                                    r.smr_totals.reclaim_scans,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    println!("stress completed");
}
