//! EpochPOP — epoch-based reclamation with Publish-on-Ping reservations.
//!
//! The RCU/EBR family pays one `SeqCst` announcement store per operation: a
//! reader must publish the era it observed *before* touching any shared
//! record, so a concurrent scan cannot miss it. EpochPOP (after the
//! Publish-on-Ping reclaimers of PPoPP 2025) removes that store from the
//! fast path entirely:
//!
//! * `begin_op` reads the global era and writes it to a **thread-private**
//!   field of the thread context — a plain, unordered store that no other
//!   thread ever reads. `end_op` writes `IDLE` the same way. No fence, no
//!   XCHG, no shared-line invalidation.
//! * A thread about to reclaim **pings** every registered thread over the
//!   shared [`PingChannel`] (the same handshake NBR's cooperative
//!   neutralization uses). Each pinged thread, at its next hook site (the
//!   per-pointer-hop `checkpoint`, or an operation boundary), copies its
//!   private reservation into its shared *published* slot and acknowledges.
//! * Once every thread has acknowledged, the reclaimer computes the minimum
//!   published era and frees exactly the records it retired **before the
//!   ping** whose retire era is below that minimum. If some thread stays
//!   silent past `SmrConfig::ack_spin_limit` iterations, the round is
//!   conceded (`reclaim_skips`), exactly like a timed-out neutralization
//!   handshake.
//!
//! Safety is the conjunction of two arguments (written out in DESIGN.md,
//! "Publish-on-Ping on the cooperative channel"): operations already running
//! at ping time are covered by the classic epoch argument applied to the
//! era they publish on ack; operations that begin after a thread's ack
//! started after the reclaimer's unlinks and therefore cannot reach the
//! records being freed at all, no matter what the (stale) published slot
//! says.
//!
//! Like every epoch scheme, EpochPOP is *not* robust: a reader stalled
//! inside an operation publishes its old era on every ping and pins all
//! garbage retired since (experiment E2's delayed-thread vulnerability —
//! contrast [`HpPop`](crate::HpPop), whose published reservations bound the
//! damage to `K` records per thread).

use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, CachePadded, EraClock, LimboBag, Magazine, OrphanPool, PingChannel, PingOutcome,
    Registry, Retired, ScanCombiner, ScanPolicy, ScanState, Shared, Smr, SmrConfig, SmrNode,
    ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Published-slot value meaning "not inside an operation".
const IDLE: u64 = u64::MAX;

struct EpochSlot {
    /// The owner's reservation as of its last acknowledged ping: an era, or
    /// [`IDLE`]. Written by the owner (publish-on-ping), read by reclaimers
    /// after a completed handshake.
    published: AtomicU64,
}

/// Per-thread context for [`EpochPop`].
pub struct EpochPopCtx {
    tid: usize,
    /// The thread's private epoch reservation: the global era observed at
    /// `begin_op`, or [`IDLE`] between operations. Plain unshared memory —
    /// the fast path writes it with an ordinary store; it reaches other
    /// threads only by being copied into the published slot when a ping
    /// arrives.
    private_epoch: u64,
    limbo: LimboBag,
    scan: ScanState,
    retires_since_advance: usize,
    /// Paces retire-path handshakes: once the bag sits above the watermark
    /// *and stays there* (e.g. a stalled reader pins everything), a full
    /// ping handshake per retire would be a scan storm; at least
    /// `empty_freq` retires must separate two retire-triggered scans.
    retires_since_scan: usize,
    mag: Magazine,
    stats: ThreadStats,
}

/// The EpochPOP reclaimer.
pub struct EpochPop {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    era: EraClock,
    ping: PingChannel,
    slots: Vec<CachePadded<EpochSlot>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
    /// Flat-combined scan publication: a watermark-triggered thread that
    /// finds a peer's ping handshake already in flight hands its limbo over
    /// instead of launching a second full ping round.
    combiner: ScanCombiner,
}

impl EpochPop {
    /// Copies `value` into `tid`'s published slot. `Release` suffices: the
    /// slot is only trusted by a reclaimer after it observes the `SeqCst`
    /// acknowledgement store sequenced after this publish.
    #[inline]
    fn publish(&self, tid: usize, value: u64) {
        // Oracle mirror: only a *published* non-idle era is binding on
        // reclaimers (a private reservation protects nothing until a ping
        // promotes it), so the pin is tied to the publish itself. Retract
        // before an IDLE store, claim after a non-idle one, keeping the
        // mirrored pin a subset of the real published protection.
        if value == IDLE {
            smr_common::check::unpin_epoch(tid);
            self.slots[tid].published.store(value, Ordering::Release);
        } else {
            self.slots[tid].published.store(value, Ordering::Release);
            smr_common::check::pin_epoch(tid, value);
        }
    }

    /// Services an incoming ping, if any: promote the private reservation to
    /// the published slot, then acknowledge. One `SeqCst` load on the
    /// owner-local pending line when no ping is outstanding.
    #[inline]
    fn poll_ping(&self, ctx: &mut EpochPopCtx) {
        if let Some(seq) = self.ping.poll(ctx.tid) {
            self.publish(ctx.tid, ctx.private_epoch);
            self.ping.ack(ctx.tid, seq);
            ctx.stats.pings_published += 1;
        }
    }

    /// Ping every registered thread, wait for the handshake, and free every
    /// record retired before the ping whose era is covered by no published
    /// reservation.
    fn reclaim_with_pings(&self, ctx: &mut EpochPopCtx) {
        // Flat combining: adopt peers' published limbo bags before the
        // pre-ping tail is captured, so one handshake round covers them.
        // The prefix-sweep safety argument applies unchanged: adopted
        // records were retired (by their publisher) before this scan's
        // ping, exactly like this thread's own pre-ping retires.
        if self.config.combine {
            let (published, bags) = self.combiner.adopt();
            if bags > 0 {
                ctx.stats.combine_adoptions += bags;
                trace::emit(
                    ctx.tid,
                    TraceKind::CombineAdopt,
                    published.len() as u64,
                    bags,
                );
            }
            for r in published {
                ctx.limbo.push(r);
            }
        }
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag before the empty check, so orphans are
        // freed even by threads with nothing of their own to reclaim
        // (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        let tail = ctx.limbo.len();
        if tail == 0 {
            return;
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        ctx.retires_since_scan = 0;
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, tail as u64, 0);
        let ping_sw = telemetry::stopwatch_if(self.config.telemetry);
        let (seq, sent) = self.ping.ping_all(ctx.tid, &self.registry);
        ctx.stats.signals_sent += sent;
        let tid = ctx.tid;
        let own_epoch = ctx.private_epoch;
        let outcome = self.ping.await_acks(
            tid,
            seq,
            &self.registry,
            self.config.ack_spin_limit,
            |_| false,
            // Service our own channel while we wait, so two threads that ping
            // each other concurrently both complete instead of both burning
            // their spin budget. Publishing our own (unchanging, we are
            // blocked right here) reservation is always safe.
            || {
                if let Some(own) = self.ping.poll(tid) {
                    self.publish(tid, own_epoch);
                    self.ping.ack(tid, own);
                }
            },
        );
        let mut freed_total = 0u64;
        match outcome {
            PingOutcome::TimedOut => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_stall.record(ping_sw.elapsed_ns());
                }
                ctx.stats.ping_concessions += 1;
                ctx.stats.reclaim_skips += 1;
            }
            PingOutcome::AllAcked => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_rtt.record(ping_sw.elapsed_ns());
                }
                // Single-fence scan over the published slots (DESIGN.md); the
                // ack edges already order each publishing store before our
                // loads, the fence covers the slots of threads that
                // acknowledged an even newer ping.
                fence(Ordering::SeqCst);
                let mut min = own_epoch; // == IDLE (u64::MAX) when quiescent
                for t in self.registry.active_tids() {
                    if t == tid {
                        continue;
                    }
                    let v = self.slots[t].published.load(Ordering::Acquire);
                    if v != IDLE {
                        min = min.min(v);
                    }
                }
                let before = ctx.limbo.len();
                // SAFETY: only the prefix retired before the ping is swept.
                // A thread inside an operation at ping time published its
                // begin-op era `e` on ack: records with retire era `< e`
                // were unlinked before its operation began (classic EBR).
                // A thread that acked idle — or whose published value is
                // stale because it began a *new* operation after acking —
                // began that operation after the ping, hence after every
                // unlink of the swept prefix, and cannot reach the records
                // regardless of era (see DESIGN.md).
                let freed = unsafe {
                    ctx.limbo.reclaim_prefix_if(
                        tail,
                        |r| r.retire_era() < min,
                        &mut ctx.stats,
                        &mut ctx.mag,
                    )
                };
                if freed == 0 && before > 0 {
                    ctx.stats.reclaim_skips += 1;
                }
                freed_total = freed as u64;
            }
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed_total, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    /// Watermark-triggered entry: run the ping handshake directly when no
    /// peer's scan is mid-flight, otherwise publish this thread's limbo to
    /// the combiner so the active scanner's single ping round sweeps both
    /// bags. The heartbeat (`end_op`), `flush`, and `unregister` scans stay
    /// direct — they must make local progress regardless of peers.
    fn scan_or_publish(&self, ctx: &mut EpochPopCtx) {
        if !self.config.combine {
            self.reclaim_with_pings(ctx);
            return;
        }
        if self.combiner.try_begin() {
            self.reclaim_with_pings(ctx);
            self.combiner.finish();
            return;
        }
        let records = ctx.limbo.drain();
        let n = records.len() as u64;
        match self.combiner.publish(ctx.tid, records) {
            Ok(()) => {
                ctx.stats.combine_publishes += 1;
                trace::emit(ctx.tid, TraceKind::CombinePublish, n, 0);
                // The bag is empty now — reset the scan pacing as if a scan
                // had run (the adopter does the actual freeing).
                ctx.retires_since_scan = 0;
                ctx.scan.note_scan();
            }
            Err(records) => {
                // Slot still full (the scanner hasn't adopted the previous
                // hand-off yet): keep the records and retry next trigger.
                for r in records {
                    ctx.limbo.push(r);
                }
            }
        }
    }
}

impl Smr for EpochPop {
    type ThreadCtx = EpochPopCtx;

    const NAME: &'static str = "EpochPOP";

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(EpochSlot {
                    published: AtomicU64::new(IDLE),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            era: EraClock::new(),
            ping: PingChannel::new(config.max_threads, config.signal_cost_ns),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            combiner: ScanCombiner::new(config.max_threads),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> EpochPopCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.slots[tid].published.store(IDLE, Ordering::SeqCst);
        self.ping.reset_slot(tid);
        EpochPopCtx {
            tid,
            private_epoch: IDLE,
            limbo: LimboBag::with_capacity_and_batch(
                self.config.hi_watermark + 1,
                self.config.retire_batch_cap(),
            ),
            scan: ScanState::new(),
            retires_since_advance: 0,
            retires_since_scan: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut EpochPopCtx) {
        ctx.private_epoch = IDLE;
        self.publish(ctx.tid, IDLE);
        // Last chance to free what the remaining threads allow; the rest is
        // orphaned and destroyed when the reclaimer drops.
        self.reclaim_with_pings(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        // Departed-slot exemption: set before leaving the registry so a
        // reclaimer mid-`await_acks` on a stale active-set snapshot stops
        // waiting on this thread immediately.
        self.ping.mark_departed(ctx.tid);
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut EpochPopCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_op(&self, ctx: &mut EpochPopCtx) {
        // The Publish-on-Ping fast path: one era load, one plain store to
        // private memory. Nothing is written to shared memory.
        ctx.private_epoch = self.era.now();
        self.poll_ping(ctx);
    }

    #[inline]
    fn end_op(&self, ctx: &mut EpochPopCtx) {
        // Oracle mirror: a published era stops protecting once the op ends
        // (the next handshake will re-ack with IDLE), so retract the pin even
        // though the stale published slot still holds the old era.
        smr_common::check::unpin_epoch(ctx.tid);
        ctx.private_epoch = IDLE;
        self.poll_ping(ctx);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.reclaim_with_pings(ctx);
        }
    }

    /// EpochPOP repurposes the per-hop NBR checkpoint as its cooperative
    /// ping-delivery point: on a pending ping the thread publishes its
    /// private reservation and acknowledges — no restart is ever required,
    /// so this always returns `false`.
    #[inline]
    fn checkpoint(&self, ctx: &mut EpochPopCtx) -> bool {
        self.poll_ping(ctx);
        false
    }

    #[inline]
    fn global_era(&self) -> u64 {
        self.era.now()
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut EpochPopCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: stage the era-stamped record; the era-advance
        // cadence stays per-retire, only the watermark check is amortized
        // to batch flushes (bound slack: batch cap − 1).
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), self.era.now()));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
        ctx.retires_since_advance += 1;
        if ctx.retires_since_advance >= self.config.epoch_freq {
            ctx.retires_since_advance = 0;
            let era = self.era.advance();
            ctx.stats.epoch_advances += 1;
            trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
        }
        ctx.retires_since_scan += 1;
        if flushed
            && self.policy.scan_on_retire(ctx.limbo.len())
            && ctx.retires_since_scan >= self.config.empty_freq
        {
            trace::emit(
                ctx.tid,
                TraceKind::LimboHigh,
                ctx.limbo.len() as u64,
                self.policy.hi_watermark as u64,
            );
            self.scan_or_publish(ctx);
        }
    }

    fn flush(&self, ctx: &mut EpochPopCtx) {
        self.era.advance();
        self.reclaim_with_pings(ctx);
    }

    fn thread_stats(&self, ctx: &EpochPopCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut EpochPopCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &EpochPopCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for EpochPop {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn op_with_retire(smr: &EpochPop, ctx: &mut EpochPopCtx, key: u64) {
        smr.begin_op(ctx);
        let p = smr.alloc(
            ctx,
            Node {
                header: NodeHeader::new(),
                key,
            },
        );
        unsafe { smr.retire(ctx, p) };
        smr.end_op(ctx);
    }

    #[test]
    fn single_thread_reclaims_without_other_threads() {
        let smr = EpochPop::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..100 {
            op_with_retire(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn fast_path_writes_nothing_shared() {
        // The published slot must not change across un-pinged operations —
        // the whole point of publish-on-ping.
        let smr = EpochPop::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let before = smr.slots[0].published.load(Ordering::SeqCst);
        smr.begin_op(&mut ctx);
        let during = smr.slots[0].published.load(Ordering::SeqCst);
        smr.end_op(&mut ctx);
        let after = smr.slots[0].published.load(Ordering::SeqCst);
        assert_eq!(before, during);
        assert_eq!(during, after);
        assert_eq!(smr.thread_stats(&ctx).pings_published, 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn ping_promotes_private_reservation() {
        let smr = EpochPop::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut reader = smr.register(1);

        smr.begin_op(&mut reader); // private only
        assert_eq!(smr.slots[1].published.load(Ordering::SeqCst), IDLE);

        // The worker's reclamation pings; the reader publishes at its next
        // checkpoint.
        let (seq, sent) = smr.ping.ping_all(0, &smr.registry);
        assert_eq!(sent, 1);
        assert!(!smr.checkpoint(&mut reader), "POP never restarts");
        assert!(smr.ping.acked_at_least(1, seq));
        let published = smr.slots[1].published.load(Ordering::SeqCst);
        assert_ne!(published, IDLE, "the reader's era must now be shared");
        assert_eq!(smr.thread_stats(&reader).pings_published, 1);

        smr.end_op(&mut reader);
        smr.unregister(&mut reader);
        smr.unregister(&mut worker);
        let _ = worker;
    }

    #[test]
    fn reader_inside_operation_pins_garbage_after_publishing() {
        // A stalled-but-responsive reader (it keeps servicing pings, the
        // cooperative analogue of a signal handler running while blocked)
        // publishes its old era on every ping and pins everything retired
        // since: the delayed-thread vulnerability EpochPOP shares with
        // RCU/DEBRA.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let smr = Arc::new(EpochPop::new(SmrConfig::for_tests()));
        let stop = Arc::new(AtomicBool::new(false));
        let in_op = Arc::new(AtomicBool::new(false));
        let reader = {
            let smr = Arc::clone(&smr);
            let stop = Arc::clone(&stop);
            let in_op = Arc::clone(&in_op);
            std::thread::spawn(move || {
                let mut ctx = smr.register(1);
                smr.begin_op(&mut ctx);
                in_op.store(true, Ordering::SeqCst);
                while !stop.load(Ordering::SeqCst) {
                    let _ = smr.checkpoint(&mut ctx);
                    std::thread::yield_now();
                }
                smr.end_op(&mut ctx);
                smr.unregister(&mut ctx);
            })
        };
        while !in_op.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }

        let mut worker = smr.register(0);
        for i in 0..300 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        assert!(
            smr.limbo_len(&worker) > 200,
            "a stalled reader must pin garbage ({} in limbo)",
            smr.limbo_len(&worker)
        );

        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        smr.flush(&mut worker);
        assert!(
            smr.thread_stats(&worker).frees > 0,
            "reclamation must resume once the reader finishes"
        );
        smr.unregister(&mut worker);
    }

    #[test]
    fn silent_thread_forces_round_concession() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(4);
        cfg.ack_spin_limit = 32;
        let smr = EpochPop::new(cfg);
        let mut worker = smr.register(0);
        let _silent = smr.register(1); // registered, never runs an operation

        for i in 0..(smr.config().hi_watermark as u64 + 4) {
            op_with_retire(&smr, &mut worker, i);
        }
        let s = smr.thread_stats(&worker);
        assert_eq!(s.frees, 0, "no handshake can complete");
        assert!(s.reclaim_skips > 0, "rounds must be conceded, not unsafe");
        smr.unregister(&mut worker);
    }

    #[test]
    fn retire_prefix_bookmark_excludes_in_flight_records() {
        // Records retired *after* the ping stay in the bag even when the
        // handshake succeeds — only the pre-ping prefix is swept.
        let smr = EpochPop::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..10 {
            op_with_retire(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        assert_eq!(smr.limbo_len(&ctx), 0);
        smr.unregister(&mut ctx);
    }
}
