//! Hazard pointers (Michael, 2004).
//!
//! The canonical bounded-garbage scheme and the paper's representative of the
//! "per-access overhead" family: before dereferencing a record a thread must
//! announce a hazard pointer to it, fence, and validate that the source still
//! points to it (re-reading until stable). That per-hop store + fence +
//! re-read is exactly the overhead the paper's list experiments show (HP up to
//! 2–3.4× slower than NBR+ on the lazy list).
//!
//! Validation here follows the IBR-benchmark convention the paper's artifact
//! uses for structures without a dedicated validation bit: a protection is
//! considered successful once the source field re-reads equal to the announced
//! value. Retired records are scanned against every announced hazard and freed
//! only when unprotected, which bounds garbage by `HiWatermark + K·N`.

use crate::util::OrphanPool;
use smr_common::{
    Atomic, CachePadded, LimboBag, Registry, Retired, ScanPolicy, ScanState, Shared, Smr,
    SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicUsize, Ordering};

struct HazardSlots {
    slots: Box<[AtomicUsize]>,
}

/// Per-thread context for [`HazardPointers`].
pub struct HpCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch for the per-scan hazard snapshot (no allocation on
    /// the reclamation path).
    protected: Vec<usize>,
    stats: ThreadStats,
}

/// The hazard-pointer reclaimer.
pub struct HazardPointers {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    hazards: Vec<CachePadded<HazardSlots>>,
    orphans: OrphanPool,
}

impl HazardPointers {
    fn scan_and_reclaim(&self, ctx: &mut HpCtx) {
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        // Single-fence scan: one SeqCst fence orders this scan against every
        // announcing thread's protect sequence (hazard store, then validating
        // load); the per-slot loads themselves only need Acquire. See
        // DESIGN.md, "Memory-ordering argument for single-fence scans".
        fence(Ordering::SeqCst);
        ctx.protected.clear();
        for tid in self.registry.active_tids() {
            for h in self.hazards[tid].slots.iter() {
                let addr = h.load(Ordering::Acquire);
                if addr != 0 {
                    ctx.protected.push(addr);
                }
            }
        }
        ctx.protected.sort_unstable();
        ctx.protected.dedup();
        let before = ctx.limbo.len();
        // SAFETY: a retired record is unlinked; any thread that could still
        // dereference it must have announced (and validated) a hazard pointer
        // to it before our scan's fence, so records absent from `protected`
        // are safe (Michael's original argument; single-fence variant argued
        // in DESIGN.md).
        let freed = unsafe {
            ctx.limbo
                .reclaim_prefix_unreserved(usize::MAX, &ctx.protected, &mut ctx.stats)
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
    }

    fn clear_slots(&self, tid: usize) {
        for h in self.hazards[tid].slots.iter() {
            if h.load(Ordering::Relaxed) != 0 {
                h.store(0, Ordering::Release);
            }
        }
    }
}

impl Smr for HazardPointers {
    type ThreadCtx = HpCtx;

    const NAME: &'static str = "HP";
    const USES_PROTECTION: bool = true;
    // Protection is validated by re-reading the source field; once the source
    // record is unlinked that validation can no longer detect reclamation of
    // the pointee, so traversing out of unlinked records is unsafe.
    const CAN_TRAVERSE_UNLINKED: bool = false;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let hazards = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(HazardSlots {
                    slots: (0..config.hazards_per_thread)
                        .map(|_| AtomicUsize::new(0))
                        .collect(),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            hazards,
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> HpCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.clear_slots(tid);
        HpCtx {
            tid,
            limbo: LimboBag::with_capacity(self.config.hi_watermark + 1),
            scan: ScanState::new(),
            protected: Vec::with_capacity(self.config.hazards_per_thread * self.config.max_threads),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
        // Last chance to free what is already safe; the rest is orphaned.
        self.scan_and_reclaim(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut HpCtx, slot: usize, src: &Atomic<T>) -> Shared<T> {
        let slots = &self.hazards[ctx.tid].slots;
        debug_assert!(slot < slots.len(), "hazard slot index out of range");
        let mut p = src.load(Ordering::Acquire);
        loop {
            // Announce, fence (SeqCst store), then validate against the source.
            slots[slot].store(p.untagged_usize(), Ordering::SeqCst);
            let q = src.load(Ordering::SeqCst);
            if q.ptr_eq(p) {
                return q;
            }
            ctx.stats.protect_failures += 1;
            p = q;
        }
    }

    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        ctx: &mut HpCtx,
        dst_slot: usize,
        _src_slot: usize,
        ptr: Shared<T>,
    ) {
        // The record is already covered by an existing hazard, so announcing
        // it in another slot cannot race with its reclamation.
        self.hazards[ctx.tid].slots[dst_slot].store(ptr.untagged_usize(), Ordering::SeqCst);
    }

    #[inline]
    fn clear_protections(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
    }

    #[inline]
    fn end_op(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut HpCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        ctx.limbo.push(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        ctx.stats.observe_limbo(ctx.limbo.len());
        if self.policy.scan_on_retire(ctx.limbo.len()) {
            self.scan_and_reclaim(ctx);
        }
    }

    fn flush(&self, ctx: &mut HpCtx) {
        self.scan_and_reclaim(ctx);
    }

    fn thread_stats(&self, ctx: &HpCtx) -> ThreadStats {
        ctx.stats
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut HpCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &HpCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for HazardPointers {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn protected_record_is_not_freed() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut owner = smr.register(0);
        let mut reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 7,
            },
        );
        shared.store(node, Ordering::Release);

        // Reader protects the record.
        let p = smr.protect(&mut reader, 0, &shared);
        assert_eq!(unsafe { p.deref().key }, 7);

        // Owner unlinks and retires it, plus filler to force scans.
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        for i in 0..(smr.config().hi_watermark * 2) {
            let f = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut owner, f) };
        }
        assert!(smr.thread_stats(&owner).frees > 0);
        // Protected record still readable (and still in limbo).
        assert_eq!(unsafe { p.deref().key }, 7);
        assert!(smr.limbo_len(&owner) >= 1);

        // Once the reader clears its hazards the record becomes reclaimable.
        smr.clear_protections(&mut reader);
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);

        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn protect_validates_against_concurrent_change() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let a = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        shared.store(a, Ordering::Release);
        let p = smr.protect(&mut ctx, 0, &shared);
        assert!(p.ptr_eq(a));
        // The announced hazard must equal the validated pointer.
        let announced = smr.hazards[0].slots[0].load(Ordering::SeqCst);
        assert_eq!(announced, a.untagged_usize());
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.clear_protections(&mut ctx);
        smr.flush(&mut ctx);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn garbage_is_bounded_by_watermark_plus_hazards() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let cfg = smr.config().clone();
        let mut ctx = smr.register(0);
        let bound = cfg.hi_watermark + cfg.hazards_per_thread * cfg.max_threads;
        for i in 0..(cfg.hi_watermark * 8) {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            assert!(smr.limbo_len(&ctx) <= bound);
        }
        smr.unregister(&mut ctx);
    }

    #[test]
    fn end_op_clears_hazards() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let a = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        shared.store(a, Ordering::Release);
        let _ = smr.protect(&mut ctx, 2, &shared);
        assert_ne!(smr.hazards[0].slots[2].load(Ordering::SeqCst), 0);
        smr.end_op(&mut ctx);
        assert_eq!(smr.hazards[0].slots[2].load(Ordering::SeqCst), 0);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.unregister(&mut ctx);
    }
}
