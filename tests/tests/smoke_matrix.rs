//! Smoke matrix: one fast, named `model_check` per (SMR × data structure)
//! pair, so a broken pairing fails as `smoke_<smr>_<ds>` immediately instead
//! of surfacing deep inside a stress run or a benchmark.
//!
//! Every pair runs a short single-threaded randomized differential test
//! against a `BTreeSet` with a tiny-watermark config, which forces the
//! reclamation paths to execute constantly even at this small scale.
//!
//! 12 reclaimers (incl. the Publish-on-Ping family and WFE) × 6 structures
//! (incl. the HM-list hash map) = 72 model-check cases, plus one
//! multi-threaded chain-unlink stress case per reclaimer on the Harris
//! list (84 total) — the marked-chain batch-unlink path only exists under
//! concurrency.

use conc_ds::{AbTree, DgtTree, HarrisList, HmHashMap, HmList, LazyList};
use integration_tests::{chain_unlink_stress, model_check};
use nbr::{Nbr, NbrPlus};
use smr_baselines::{Debra, HazardEras, HazardPointers, Ibr, Leaky, Qsbr, Rcu, Wfe};
use smr_common::SmrConfig;
use smr_pop::{EpochPop, HpPop};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig::for_tests()
}

const OPS: usize = 3_000;
const KEY_RANGE: u64 = 64;

macro_rules! smoke {
    ($($name:ident: $ds:ident < $smr:ty >;)*) => {
        $(
            #[test]
            fn $name() {
                model_check(&$ds::<$smr>::new(cfg()), OPS, KEY_RANGE, 0xDEAD_BEEF);
            }
        )*
    };
}

smoke! {
    smoke_nbr_lazy_list: LazyList<Nbr>;
    smoke_nbr_harris_list: HarrisList<Nbr>;
    smoke_nbr_hm_list: HmList<Nbr>;
    smoke_nbr_hm_hashmap: HmHashMap<Nbr>;
    smoke_nbr_dgt_tree: DgtTree<Nbr>;
    smoke_nbr_ab_tree: AbTree<Nbr>;

    smoke_nbr_plus_lazy_list: LazyList<NbrPlus>;
    smoke_nbr_plus_harris_list: HarrisList<NbrPlus>;
    smoke_nbr_plus_hm_list: HmList<NbrPlus>;
    smoke_nbr_plus_hm_hashmap: HmHashMap<NbrPlus>;
    smoke_nbr_plus_dgt_tree: DgtTree<NbrPlus>;
    smoke_nbr_plus_ab_tree: AbTree<NbrPlus>;

    smoke_debra_lazy_list: LazyList<Debra>;
    smoke_debra_harris_list: HarrisList<Debra>;
    smoke_debra_hm_list: HmList<Debra>;
    smoke_debra_hm_hashmap: HmHashMap<Debra>;
    smoke_debra_dgt_tree: DgtTree<Debra>;
    smoke_debra_ab_tree: AbTree<Debra>;

    smoke_qsbr_lazy_list: LazyList<Qsbr>;
    smoke_qsbr_harris_list: HarrisList<Qsbr>;
    smoke_qsbr_hm_list: HmList<Qsbr>;
    smoke_qsbr_hm_hashmap: HmHashMap<Qsbr>;
    smoke_qsbr_dgt_tree: DgtTree<Qsbr>;
    smoke_qsbr_ab_tree: AbTree<Qsbr>;

    smoke_rcu_lazy_list: LazyList<Rcu>;
    smoke_rcu_harris_list: HarrisList<Rcu>;
    smoke_rcu_hm_list: HmList<Rcu>;
    smoke_rcu_hm_hashmap: HmHashMap<Rcu>;
    smoke_rcu_dgt_tree: DgtTree<Rcu>;
    smoke_rcu_ab_tree: AbTree<Rcu>;

    smoke_hp_lazy_list: LazyList<HazardPointers>;
    smoke_hp_harris_list: HarrisList<HazardPointers>;
    smoke_hp_hm_list: HmList<HazardPointers>;
    smoke_hp_hm_hashmap: HmHashMap<HazardPointers>;
    smoke_hp_dgt_tree: DgtTree<HazardPointers>;
    smoke_hp_ab_tree: AbTree<HazardPointers>;

    smoke_ibr_lazy_list: LazyList<Ibr>;
    smoke_ibr_harris_list: HarrisList<Ibr>;
    smoke_ibr_hm_list: HmList<Ibr>;
    smoke_ibr_hm_hashmap: HmHashMap<Ibr>;
    smoke_ibr_dgt_tree: DgtTree<Ibr>;
    smoke_ibr_ab_tree: AbTree<Ibr>;

    smoke_he_lazy_list: LazyList<HazardEras>;
    smoke_he_harris_list: HarrisList<HazardEras>;
    smoke_he_hm_list: HmList<HazardEras>;
    smoke_he_hm_hashmap: HmHashMap<HazardEras>;
    smoke_he_dgt_tree: DgtTree<HazardEras>;
    smoke_he_ab_tree: AbTree<HazardEras>;

    smoke_wfe_lazy_list: LazyList<Wfe>;
    smoke_wfe_harris_list: HarrisList<Wfe>;
    smoke_wfe_hm_list: HmList<Wfe>;
    smoke_wfe_hm_hashmap: HmHashMap<Wfe>;
    smoke_wfe_dgt_tree: DgtTree<Wfe>;
    smoke_wfe_ab_tree: AbTree<Wfe>;

    smoke_epoch_pop_lazy_list: LazyList<EpochPop>;
    smoke_epoch_pop_harris_list: HarrisList<EpochPop>;
    smoke_epoch_pop_hm_list: HmList<EpochPop>;
    smoke_epoch_pop_hm_hashmap: HmHashMap<EpochPop>;
    smoke_epoch_pop_dgt_tree: DgtTree<EpochPop>;
    smoke_epoch_pop_ab_tree: AbTree<EpochPop>;

    smoke_hp_pop_lazy_list: LazyList<HpPop>;
    smoke_hp_pop_harris_list: HarrisList<HpPop>;
    smoke_hp_pop_hm_list: HmList<HpPop>;
    smoke_hp_pop_hm_hashmap: HmHashMap<HpPop>;
    smoke_hp_pop_dgt_tree: DgtTree<HpPop>;
    smoke_hp_pop_ab_tree: AbTree<HpPop>;

    smoke_leaky_lazy_list: LazyList<Leaky>;
    smoke_leaky_harris_list: HarrisList<Leaky>;
    smoke_leaky_hm_list: HmList<Leaky>;
    smoke_leaky_hm_hashmap: HmHashMap<Leaky>;
    smoke_leaky_dgt_tree: DgtTree<Leaky>;
    smoke_leaky_ab_tree: AbTree<Leaky>;
}

// ---------------------------------------------------------------------------
// Chain-unlink stress: concurrent adjacent deletions grow multi-node marked
// chains in the Harris list, which the model checks above (single-threaded)
// never do. One case per reclaimer, oversubscribed past CI's core count, so
// every scheme executes either the batch-unlink fast path
// (`CAN_TRAVERSE_UNLINKED`, incl. IBR and HE since the era-hull fix) or the
// Harris-Michael fallback (the HP family) under the scheduling that exposed
// the original marked-chain race.
// ---------------------------------------------------------------------------

macro_rules! chain_unlink {
    ($($name:ident: $smr:ty;)*) => {
        $(
            #[test]
            fn $name() {
                let list = Arc::new(HarrisList::<$smr>::new(cfg().with_max_threads(8)));
                chain_unlink_stress(list, 8, 60, 4, 8);
            }
        )*
    };
}

chain_unlink! {
    chain_unlink_nbr: Nbr;
    chain_unlink_nbr_plus: NbrPlus;
    chain_unlink_debra: Debra;
    chain_unlink_qsbr: Qsbr;
    chain_unlink_rcu: Rcu;
    chain_unlink_hp: HazardPointers;
    chain_unlink_ibr: Ibr;
    chain_unlink_he: HazardEras;
    chain_unlink_wfe: Wfe;
    chain_unlink_epoch_pop: EpochPop;
    chain_unlink_hp_pop: HpPop;
    chain_unlink_leaky: Leaky;
}
