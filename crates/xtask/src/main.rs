//! Workspace maintenance tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! Two tasks:
//!
//! * `bench-diff <a.json> <b.json> [--threshold t]` — compares two
//!   `BENCH_*.json` documents cell-by-cell and prints a speedup table with a
//!   worst / median / geomean summary; with `--threshold` it exits non-zero
//!   when any cell regresses below `t`, which is how CI gates the
//!   telemetry-overhead A/B. See the `bench_diff` module.
//!
//! * `lint` — the SAFETY-comment lint. Walks every `.rs` file under
//!   `crates/` and fails (exit 1) when
//!
//!   1. an `unsafe` block or `unsafe impl` has no justification: no
//!      `// SAFETY:` comment in the immediately preceding comment /
//!      attribute block (or trailing on the same line). `unsafe fn` items
//!      and fn-pointer types are exempt — their contract lives in the
//!      `# Safety` doc section of the trait / function, not at each impl —
//!      as are `#[cfg(test)]` modules (test-only code doesn't ship); or
//!   2. a type declared with `impl_smr_node!` is allocated with a raw
//!      `Box::new` instead of the node-heap recycle ABI
//!      (`recycle::alloc_node_raw` / `Magazine::alloc_node`). Mixing the
//!      global allocator into the node heap is how you get a
//!      `dealloc_node_raw` of a `Box` pointer; the few deliberate
//!      exceptions (list head sentinels that are owned by the structure,
//!      never retired, and freed by `Box`'s own drop) carry an explicit
//!      `lint:allow-box-node` waiver comment.
//!
//! The lint is textual by design: it has no type information, so it trades
//! a small amount of precision (waiver comments, per-file node-name scope)
//! for zero build-time cost and no extra dependencies.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench_diff;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("bench-diff") => bench_diff::run(&mut args),
        Some(other) => {
            eprintln!("unknown task `{other}` (available: lint, bench-diff)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint | bench-diff <a.json> <b.json> [--threshold t]>"
            );
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        lint_file(&rel, &text, &mut findings);
    }

    if findings.is_empty() {
        println!(
            "xtask lint: OK ({} files, every unsafe site justified, node heap ABI respected)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut out = String::new();
        for f in &findings {
            let _ = writeln!(out, "{f}");
        }
        eprint!("{out}");
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask is always run through cargo, which sets this to crates/xtask.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips line comments and blanks out string-literal contents so keyword
/// scans don't fire inside them. Quote tracking is per-line (good enough:
/// the codebase has no multi-line or raw strings containing `unsafe` or
/// `Box::new`).
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
                out.push_str("__");
            } else if c == '"' {
                in_str = false;
                out.push('"');
            } else {
                out.push('_');
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
                out.push_str("__");
            } else if c == '\'' {
                in_char = false;
                out.push('\'');
            } else {
                out.push('_');
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            // Lifetime vs char literal: treat 'x' / '\n' as char only when
            // a closing quote follows within two chars; lifetimes ('a,
            // 'static) never do.
            '\'' => {
                let rest: String = chars.clone().take(3).collect();
                let is_char = rest.len() >= 2
                    && (rest.as_bytes().get(1) == Some(&b'\'')
                        || rest.as_bytes().first() == Some(&b'\\'));
                if is_char {
                    in_char = true;
                }
                out.push('\'');
            }
            _ => out.push(c),
        }
    }
    out
}

fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn is_comment_or_attr(trimmed: &str) -> bool {
    trimmed.starts_with("//")
        || trimmed.starts_with("#[")
        || trimmed.starts_with("#!")
        || trimmed.starts_with("*")
        || trimmed.starts_with("/*")
        || trimmed.ends_with("*/")
}

/// Is every `unsafe` on this line part of an `unsafe fn` item or an
/// `unsafe fn(..)` pointer type? Those are exempt: an `unsafe fn`'s contract
/// belongs in the trait's / function's `# Safety` doc section (and trait
/// *impls* inherit the trait's contract), while a fn-pointer type declares
/// no new obligation at all. What the lint wants justified is each site
/// that *discharges* an obligation: `unsafe` blocks and `unsafe impl`s.
fn is_unsafe_fn_item(code: &str) -> bool {
    let mut rest = code;
    let mut any = false;
    while let Some(pos) = rest.find("unsafe") {
        let at_word = (pos == 0 || !is_ident(rest.as_bytes()[pos - 1]))
            && !rest[pos + 6..]
                .bytes()
                .next()
                .map(is_ident)
                .unwrap_or(false);
        if at_word {
            any = true;
            if !rest[pos + 6..].trim_start().starts_with("fn") {
                return false;
            }
        }
        rest = &rest[pos + 6..];
    }
    any
}

/// Ends the preceding statement, i.e. the line after it starts a new one.
fn stmt_boundary(line: &str) -> bool {
    let trimmed = line.trim();
    if trimmed.is_empty() || is_comment_or_attr(trimmed) {
        return true;
    }
    let code = code_portion(line);
    let code = code.trim_end();
    code.ends_with(';') || code.ends_with('{') || code.ends_with('}') || code.ends_with(',')
}

/// Does a comment justify the unsafe site at `idx`? Accepted positions: a
/// `SAFETY:` anywhere in the enclosing statement's lines (trailing comments
/// included — multi-line expressions put `unsafe` below the statement's
/// first line), or in the comment / attribute block immediately above the
/// statement.
fn unsafe_justified(lines: &[&str], idx: usize) -> bool {
    let mut start = idx;
    while start > 0 && !stmt_boundary(lines[start - 1]) {
        start -= 1;
    }
    if lines[start..=idx].iter().any(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut j = start;
    while j > 0 {
        j -= 1;
        let trimmed = lines[j].trim_start();
        if !is_comment_or_attr(trimmed) {
            break;
        }
        if trimmed.contains("SAFETY:") || trimmed.contains("# Safety") {
            return true;
        }
    }
    false
}

fn lint_file(rel: &Path, text: &str, findings: &mut Vec<String>) {
    let lines: Vec<&str> = text.lines().collect();

    // Node types declared in this file. Scope is per-file: node structs are
    // module-private in this codebase, and a per-file scope cannot
    // false-positive on an unrelated `Node` in another crate.
    let mut node_types: Vec<String> = Vec::new();
    for line in &lines {
        let code = code_portion(line);
        if let Some(pos) = code.find("impl_smr_node!") {
            let rest = &code[pos + "impl_smr_node!".len()..];
            let name: String = rest
                .chars()
                .skip_while(|c| *c == '(' || c.is_whitespace())
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                node_types.push(name);
            }
        }
    }

    let is_recycle_abi = rel.ends_with("crates/smr-common/src/recycle.rs")
        || rel == Path::new("crates/smr-common/src/recycle.rs");

    let mut in_block_comment = false;
    // `#[cfg(test)] mod … { … }` ranges are exempt: test-only unsafe (and
    // test-only Box allocations) don't ship, and justifying each one buries
    // the signal. Tracked by brace depth from the `mod` line.
    let mut test_mod_pending = false;
    let mut test_mod_depth: i64 = 0;
    let mut in_test_mod = false;
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if in_test_mod {
            let code = code_portion(raw);
            test_mod_depth += code.matches('{').count() as i64;
            test_mod_depth -= code.matches('}').count() as i64;
            if test_mod_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }
        if test_mod_pending {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                test_mod_pending = false;
                let code = code_portion(raw);
                test_mod_depth =
                    code.matches('{').count() as i64 - code.matches('}').count() as i64;
                in_test_mod = test_mod_depth > 0;
                continue;
            }
            if !is_comment_or_attr(trimmed) && !trimmed.is_empty() {
                test_mod_pending = false;
            }
        }
        if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
            test_mod_pending = true;
        }
        if in_block_comment {
            if trimmed.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.starts_with("/*") && !trimmed.contains("*/") {
            in_block_comment = true;
            continue;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = code_portion(raw);

        if has_word(&code, "unsafe") && !is_unsafe_fn_item(&code) && !unsafe_justified(&lines, i) {
            findings.push(format!(
                "{}:{}: unsafe without a `// SAFETY:` justification \
                 (add one in the preceding comment block)",
                rel.display(),
                i + 1
            ));
        }

        if !is_recycle_abi && code.contains("Box::new") {
            let waived = raw.contains("lint:allow-box-node") || {
                // Accept the waiver anywhere in the comment block above.
                let mut j = i;
                let mut found = false;
                while j > 0 {
                    j -= 1;
                    let t = lines[j].trim_start();
                    if !is_comment_or_attr(t) {
                        break;
                    }
                    if t.contains("lint:allow-box-node") {
                        found = true;
                        break;
                    }
                }
                found
            };
            for ty in &node_types {
                let needle = format!("Box::new({ty}");
                if let Some(pos) = code.find(&needle) {
                    let end = pos + needle.len();
                    let boundary_ok = !code
                        .as_bytes()
                        .get(end)
                        .map(|b| is_ident(*b))
                        .unwrap_or(false);
                    if boundary_ok && !waived {
                        findings.push(format!(
                            "{}:{}: `Box::new({ty} ...)` allocates an impl_smr_node! type \
                             outside the recycle ABI; use `recycle::alloc_node_raw` / \
                             `Magazine::alloc_node`, or waive a deliberate never-retired \
                             allocation with `// lint:allow-box-node — <why>`",
                            rel.display(),
                            i + 1
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let mut findings = Vec::new();
        lint_file(Path::new("crates/x/src/lib.rs"), src, &mut findings);
        findings
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let f = run("fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains(":2:"));
    }

    #[test]
    fn accepts_safety_comment_above() {
        let f = run("fn f() {\n    // SAFETY: g is fine here.\n    unsafe { g() }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn accepts_safety_comment_through_attributes() {
        let f = run("// SAFETY: q is static.\n#[allow(dead_code)]\nunsafe impl Send for X {}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_fn_items_and_fn_pointer_types_exempt() {
        let f = run(
            "pub unsafe fn f(p: *mut u8) {}\nstruct S { d: unsafe fn(*mut u8) }\nunsafe impl Send for S {}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains(":3:"), "{f:?}");
    }

    #[test]
    fn accepts_trailing_safety_comment() {
        let f = run("let x = unsafe { *p }; // SAFETY: p is valid per the invariant above.\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ignores_unsafe_in_strings_and_comments() {
        let f = run("// this mentions unsafe\nlet s = \"unsafe\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_box_new_of_node_type() {
        let f = run("smr_common::impl_smr_node!(Node);\nlet n = Box::new(Node::new(1));\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("recycle ABI"));
    }

    #[test]
    fn waiver_comment_accepted() {
        let f = run(
            "smr_common::impl_smr_node!(Node);\n// lint:allow-box-node — head sentinel, never retired\nlet n = Box::new(Node::new(1));\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_exempt() {
        let f = run(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        unsafe { h() }\n    }\n}\nfn i() {\n    unsafe { j() }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains(":9:"), "{f:?}");
    }

    #[test]
    fn box_new_of_other_types_ignored() {
        let f = run("smr_common::impl_smr_node!(Node);\nlet n = Box::new(NodeTable::new());\nlet m = Box::new(7u64);\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
