//! # smr-harness — setbench-style microbenchmark harness
//!
//! The evaluation substrate for the NBR reproduction: workload generation,
//! trial driving, peak-memory tracking and one experiment runner per figure of
//! the paper (Section 7 and the appendix).
//!
//! * [`workload`] — operation mixes (50i-50d, 25i-25d, 5i-5d), key ranges,
//!   prefill and stop conditions.
//! * [`driver`] — [`run_trial`](driver::run_trial): prefill, spawn workers,
//!   measure throughput, collect the reclaimer's counters, optionally inject a
//!   stalled thread (experiment E2).
//! * [`alloc_track`] — a counting global allocator so peak live heap bytes can
//!   stand in for the paper's "max resident memory".
//! * [`families`] — runtime dispatch over the (reclaimer × data structure)
//!   matrix.
//! * [`fault`] — the fault-injection adversary: seeded plans of worker
//!   stalls, mid-operation departures and black-holed pings, replayable
//!   from their seed.
//! * [`experiments`] — `e1_*`, `e2_*`, `e3_*`, `e4_*`, `fig5`–`fig8` and the
//!   signal-count ablation, each returning the rows the corresponding figure
//!   plots.
//! * [`report`] — tables, CSV and per-reclaimer throughput series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod driver;
pub mod experiments;
pub mod families;
pub mod fault;
pub mod report;
pub mod workload;

pub use driver::{
    build_and_prefill, run_trial, run_trial_on, Buildable, HmListNoRestart, TrialResult,
};
pub use experiments::ExperimentScale;
pub use families::{build_prefilled, run_with, DsFamily, PrefilledTrial, SmrKind};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use workload::{KeyDist, Op, OpGenerator, StopCondition, WorkloadMix, WorkloadSpec};
