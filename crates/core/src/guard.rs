//! Ergonomic integration layer: how a data-structure author uses NBR.
//!
//! The paper argues (Section 5.3, Figure 2) that integrating NBR is about as
//! hard as two-phase locking: bracket the traversal with `begin_read_phase` /
//! `end_read_phase(reservations)` and restart from the root when neutralized.
//! The raw [`Smr`] hooks express exactly that, but the restart control flow is
//! easy to get subtly wrong (e.g. forgetting to discard a pointer obtained in
//! the aborted read phase). This module offers a structured wrapper:
//!
//! ```
//! use nbr::{NbrPlus, OpResult, ReadPhase, SmrHandle};
//! use smr_common::{Atomic, NodeHeader, Smr, SmrConfig};
//!
//! struct Node { header: NodeHeader, value: u64 }
//! smr_common::impl_smr_node!(Node);
//!
//! let smr = NbrPlus::new(SmrConfig::for_tests());
//! let mut handle = SmrHandle::register(&smr, 0);
//! let slot = Atomic::<Node>::null();
//!
//! // Publish a node, then read it back through a guarded read phase.
//! let node = handle.alloc(Node { header: NodeHeader::new(), value: 7 });
//! slot.store(node, std::sync::atomic::Ordering::Release);
//!
//! let value = handle.run(|phase: &mut ReadPhase<'_, NbrPlus>| {
//!     let p = phase.load(0, &slot)?;                       // checkpointed load
//!     let value = unsafe { p.deref().value };
//!     phase.reserve(&[p.untagged_usize()]);                // enter Φ_write
//!     OpResult::done(value)
//! });
//! assert_eq!(value, 7);
//! # let old = slot.swap(smr_common::Shared::null(), std::sync::atomic::Ordering::AcqRel);
//! # unsafe { handle.retire(old) };
//! ```

use smr_common::{Atomic, Shared, Smr, SmrNode, ThreadStats};

/// Error type signalling that the current read phase was neutralized and every
/// pointer obtained in it must be discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neutralized;

impl std::fmt::Display for Neutralized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "read phase neutralized; restart from the root")
    }
}

impl std::error::Error for Neutralized {}

/// Result of one attempt at an operation body run by [`SmrHandle::run`].
pub enum OpResult<T> {
    /// The operation completed with a value.
    Done(T),
    /// The operation must be retried from the top (validation failed, lost a
    /// CAS, or was neutralized).
    Retry,
}

impl<T> OpResult<T> {
    /// Convenience constructor used at the end of an operation body.
    pub fn done(value: T) -> Result<Self, Neutralized> {
        Ok(Self::Done(value))
    }

    /// Convenience constructor requesting a retry.
    pub fn retry() -> Result<Self, Neutralized> {
        Ok(Self::Retry)
    }
}

impl<T> From<Neutralized> for OpResult<T> {
    fn from(_: Neutralized) -> Self {
        Self::Retry
    }
}

/// A registered thread's handle: the reclaimer reference plus the thread
/// context, with deregistration on drop.
pub struct SmrHandle<'s, S: Smr> {
    smr: &'s S,
    ctx: Option<S::ThreadCtx>,
}

impl<'s, S: Smr> SmrHandle<'s, S> {
    /// Registers the calling thread under slot `tid`.
    pub fn register(smr: &'s S, tid: usize) -> Self {
        Self {
            smr,
            ctx: Some(smr.register(tid)),
        }
    }

    /// The underlying reclaimer.
    pub fn smr(&self) -> &'s S {
        self.smr
    }

    /// Borrows the raw thread context (for calling [`Smr`] hooks directly).
    pub fn ctx_mut(&mut self) -> &mut S::ThreadCtx {
        self.ctx.as_mut().expect("handle already deregistered")
    }

    /// Splits the handle into the reclaimer and the thread context, which is
    /// the shape the data-structure methods expect.
    pub fn parts(&mut self) -> (&'s S, &mut S::ThreadCtx) {
        (
            self.smr,
            self.ctx.as_mut().expect("handle already deregistered"),
        )
    }

    /// Allocates a node through the reclaimer (stamping its birth era).
    pub fn alloc<T: SmrNode>(&mut self, value: T) -> Shared<T> {
        let (smr, ctx) = self.parts();
        smr.alloc(ctx, value)
    }

    /// Retires an unlinked node.
    ///
    /// # Safety
    /// Same contract as [`Smr::retire`].
    pub unsafe fn retire<T: SmrNode>(&mut self, ptr: Shared<T>) {
        let (smr, ctx) = self.parts();
        smr.retire(ctx, ptr);
    }

    /// This thread's SMR counters.
    pub fn stats(&self) -> ThreadStats {
        self.smr
            .thread_stats(self.ctx.as_ref().expect("handle already deregistered"))
    }

    /// Attempts to reclaim everything that is currently safe.
    pub fn flush(&mut self) {
        let (smr, ctx) = self.parts();
        smr.flush(ctx);
    }

    /// Runs one data-structure operation with automatic neutralization /
    /// retry handling.
    ///
    /// The body is invoked with a [`ReadPhase`] guard; loads through the guard
    /// are checkpointed, and returning `Err(Neutralized)` (which the `?`
    /// operator produces from [`ReadPhase::load`]) or `Ok(OpResult::Retry)`
    /// restarts the body from the top — i.e. from the root of the structure,
    /// which is exactly the restriction Section 5.2 imposes.
    pub fn run<T>(
        &mut self,
        mut body: impl FnMut(&mut ReadPhase<'_, S>) -> Result<OpResult<T>, Neutralized>,
    ) -> T {
        let (smr, ctx) = self.parts();
        smr.begin_op(ctx);
        let result = loop {
            smr.begin_read_phase(ctx);
            let mut phase = ReadPhase {
                smr,
                ctx,
                reserved: false,
            };
            match body(&mut phase) {
                Ok(OpResult::Done(v)) => break v,
                Ok(OpResult::Retry) | Err(Neutralized) => continue,
            }
        };
        smr.clear_protections(ctx);
        smr.end_op(ctx);
        result
    }
}

impl<S: Smr> Drop for SmrHandle<'_, S> {
    fn drop(&mut self) {
        if let Some(mut ctx) = self.ctx.take() {
            self.smr.unregister(&mut ctx);
        }
    }
}

/// Guard representing the current read phase of an operation run through
/// [`SmrHandle::run`].
pub struct ReadPhase<'a, S: Smr> {
    smr: &'a S,
    ctx: &'a mut S::ThreadCtx,
    reserved: bool,
}

impl<S: Smr> ReadPhase<'_, S> {
    /// Loads a shared pointer with protection (for HP-style reclaimers) and a
    /// neutralization checkpoint (for NBR). Returns `Err(Neutralized)` when the
    /// read phase must restart; propagate it with `?`.
    pub fn load<T: SmrNode>(
        &mut self,
        slot: usize,
        src: &Atomic<T>,
    ) -> Result<Shared<T>, Neutralized> {
        let p = self.smr.protect(self.ctx, slot, src);
        if self.smr.checkpoint(self.ctx) {
            Err(Neutralized)
        } else {
            Ok(p)
        }
    }

    /// Explicit checkpoint (e.g. once per loop iteration in long scans).
    pub fn checkpoint(&mut self) -> Result<(), Neutralized> {
        if self.smr.checkpoint(self.ctx) {
            Err(Neutralized)
        } else {
            Ok(())
        }
    }

    /// Ends the read phase, reserving the records the write phase will access
    /// (their untagged addresses). After this the operation may lock/CAS
    /// exactly those records.
    pub fn reserve(&mut self, records: &[usize]) {
        self.smr.end_read_phase(self.ctx, records);
        self.reserved = true;
    }

    /// Allocates a node (permitted in the write phase / preamble only; calling
    /// it before [`ReadPhase::reserve`] is a phase-rule violation for NBR —
    /// see Section 4.1 — so this is gated on the reservation having happened).
    pub fn alloc<T: SmrNode>(&mut self, value: T) -> Shared<T> {
        debug_assert!(
            self.reserved || !S::USES_PHASES,
            "allocation inside a Φ_read violates the NBR phase rules (Section 4.1)"
        );
        self.smr.alloc(self.ctx, value)
    }

    /// Retires an unlinked record (write phase only).
    ///
    /// # Safety
    /// Same contract as [`Smr::retire`].
    pub unsafe fn retire<T: SmrNode>(&mut self, ptr: Shared<T>) {
        debug_assert!(
            self.reserved || !S::USES_PHASES,
            "retire inside a Φ_read violates the NBR phase rules (Section 4.1)"
        );
        self.smr.retire(self.ctx, ptr);
    }

    /// Raw access to the underlying reclaimer and context for anything not
    /// covered by the guard methods.
    pub fn raw(&mut self) -> (&S, &mut S::ThreadCtx) {
        (self.smr, self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Nbr, NbrPlus};
    use smr_common::{NodeHeader, SmrConfig};
    use std::sync::atomic::Ordering;

    struct Node {
        header: NodeHeader,
        value: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn run_completes_simple_operation() {
        let smr = NbrPlus::new(SmrConfig::for_tests());
        let mut handle = SmrHandle::register(&smr, 0);
        let slot = Atomic::<Node>::null();
        let node = handle.alloc(Node {
            header: NodeHeader::new(),
            value: 5,
        });
        slot.store(node, Ordering::Release);

        let v = handle.run(|phase| {
            let p = phase.load(0, &slot)?;
            let value = unsafe { p.deref().value };
            phase.reserve(&[p.untagged_usize()]);
            OpResult::done(value)
        });
        assert_eq!(v, 5);

        let old = slot.swap(Shared::null(), Ordering::AcqRel);
        unsafe { handle.retire(old) };
    }

    #[test]
    fn run_retries_until_done() {
        let smr = Nbr::new(SmrConfig::for_tests());
        let mut handle = SmrHandle::register(&smr, 0);
        let mut attempts = 0;
        let out = handle.run(|phase| {
            attempts += 1;
            phase.reserve(&[]);
            if attempts < 3 {
                OpResult::retry()
            } else {
                OpResult::done(attempts)
            }
        });
        assert_eq!(out, 3);
    }

    #[test]
    fn neutralized_load_restarts_the_body() {
        let smr = NbrPlus::new(SmrConfig::for_tests().with_max_threads(2));
        // A second participant whose signal will neutralize us.
        let signaller_ctx = smr.register(1);
        let mut handle = SmrHandle::register(&smr, 0);
        let slot = Atomic::<Node>::null();
        let node = handle.alloc(Node {
            header: NodeHeader::new(),
            value: 11,
        });
        slot.store(node, Ordering::Release);

        let mut first = true;
        let v = handle.run(|phase| {
            if first {
                first = false;
                // Simulate a concurrent reclaimer broadcasting mid-Φ_read.
                phase.raw().0.neutralization().signal_all(1);
                // The next guarded load must observe the neutralization.
                let err = phase.load(0, &slot);
                assert_eq!(err.unwrap_err(), Neutralized);
                return Err(Neutralized);
            }
            let p = phase.load(0, &slot)?;
            let value = unsafe { p.deref().value };
            phase.reserve(&[p.untagged_usize()]);
            OpResult::done(value)
        });
        assert_eq!(v, 11);
        assert!(handle.stats().neutralizations >= 1);

        let old = slot.swap(Shared::null(), Ordering::AcqRel);
        unsafe { handle.retire(old) };
        drop(handle);
        let mut ctx = signaller_ctx;
        smr.unregister(&mut ctx);
    }

    #[test]
    fn handle_drop_deregisters() {
        let smr = NbrPlus::new(SmrConfig::for_tests());
        {
            let _h = SmrHandle::register(&smr, 3);
            assert!(smr.neutralization().registry().is_active(3));
        }
        assert!(!smr.neutralization().registry().is_active(3));
    }
}
