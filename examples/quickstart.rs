//! Quickstart: protect a concurrent lazy list with NBR+.
//!
//! Spawns a handful of threads that hammer a shared `LazyList<NbrPlus>` with
//! inserts, removes and lookups, then prints the throughput and the
//! reclaimer's bookkeeping (how many records were retired, how many were
//! actually freed, how many neutralization signals were sent).
//!
//! Run with:
//! ```text
//! cargo run -p nbr-bench --release --example quickstart
//! ```

use conc_ds::{ConcurrentSet, LazyList};
use nbr::NbrPlus;
use smr_common::{Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let key_range = 10_000u64;
    let run_for = Duration::from_millis(500);

    // The list owns its reclaimer; configure the limbo-bag watermarks here.
    let config = SmrConfig::default()
        .with_max_threads(threads + 2)
        .with_watermarks(1024, 256);
    let list = Arc::new(LazyList::<NbrPlus>::new(config));

    // Prefill to half the key range, as the paper's benchmarks do.
    {
        let mut ctx = list.smr().register(threads); // a spare slot
        for k in 1..=key_range / 2 {
            list.insert(&mut ctx, k * 2);
        }
        list.smr().unregister(&mut ctx);
    }

    println!(
        "running {threads} threads for {run_for:?} on a lazy list of ~{} keys",
        key_range / 2
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let list = Arc::clone(&list);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            // Each thread registers once and reuses its context for every op.
            let mut ctx = list.smr().register(t);
            let mut ops = 0u64;
            let mut x = 0x9E3779B97F4A7C15u64 ^ (t as u64);
            while !stop.load(Ordering::Relaxed) {
                // xorshift key + op selection
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = 1 + x % key_range;
                match x % 4 {
                    0 => {
                        list.insert(&mut ctx, key);
                    }
                    1 => {
                        list.remove(&mut ctx, key);
                    }
                    _ => {
                        list.contains(&mut ctx, key);
                    }
                }
                ops += 1;
            }
            let stats = list.smr().thread_stats(&ctx);
            list.smr().unregister(&mut ctx);
            (ops, stats)
        }));
    }

    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);

    let mut total_ops = 0u64;
    let mut totals = smr_common::ThreadStats::default();
    for h in handles {
        let (ops, stats) = h.join().unwrap();
        total_ops += ops;
        totals += stats;
    }
    let elapsed = started.elapsed();

    println!(
        "throughput: {:.2} Mops/s ({} ops in {:?})",
        total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        total_ops,
        elapsed
    );
    println!(
        "reclamation: {} retired, {} freed, {} still in limbo bags",
        totals.retires,
        totals.frees,
        totals.outstanding()
    );
    println!(
        "neutralization: {} signals sent, {} read phases restarted, {} RGP piggyback reclaims",
        totals.signals_sent, totals.neutralizations, totals.rgp_reclaims
    );
    let mut ctx = list.smr().register(0);
    println!("final set size: {}", list.size(&mut ctx));
    list.smr().unregister(&mut ctx);
}
