//! The external binary search tree of David, Guerraoui & Trigonakis (DGT15,
//! "Asynchronized Concurrency: The Secret to Scaling Concurrent Search Data
//! Structures"), the tree used for experiments E1 and E2 of the paper.
//!
//! * It is *external* (leaf-oriented): internal nodes only route, leaves hold
//!   the set's keys.
//! * Searches are completely synchronization-free.
//! * `insert` locks the parent of the target leaf; `remove` locks the
//!   grandparent and the parent; both validate after locking (the node is not
//!   removed and still points to the child that was read) and retry from the
//!   root on failure. The original uses ticket locks whose version doubles as
//!   the validation stamp; the [`SeqLock`] versioned lock plays that role
//!   here.
//!
//! This is the structure the paper singles out as supported by NBR but **not**
//! by HP-style schemes (Table 1: "no marks, cannot validate HP"): there is no
//! marked bit a hazard-pointer validation could test. We still allow
//! instantiation with HP (the protect hook validates by re-reading the source
//! field, the IBR-benchmark convention) so Figure 3a's HP curve can be
//! reproduced, but correctness under NBR relies only on the phase protocol.
//!
//! NBR integration: the search is the Φ_read; `insert` reserves
//! `[parent, leaf]` and `remove` reserves `[gparent, parent, leaf]` (at most 3
//! reservations, as stated in Section 4.4).

use crate::{check_key, ConcurrentSet, KEY_MAX, KEY_MIN};
use smr_common::{recycle, Atomic, NodeHeader, SeqLock, Shared, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};

/// A node of the external BST. Leaves have both children null.
pub struct Node {
    header: NodeHeader,
    key: u64,
    lock: SeqLock,
    removed: AtomicBool,
    left: Atomic<Node>,
    right: Atomic<Node>,
}
smr_common::impl_smr_node!(Node);

impl Node {
    fn leaf(key: u64) -> Self {
        Self {
            header: NodeHeader::new(),
            key,
            lock: SeqLock::new(),
            removed: AtomicBool::new(false),
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }

    fn internal(key: u64, left: Shared<Node>, right: Shared<Node>) -> Self {
        Self {
            header: NodeHeader::new(),
            key,
            lock: SeqLock::new(),
            removed: AtomicBool::new(false),
            left: Atomic::new(left),
            right: Atomic::new(right),
        }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire).is_null()
    }

    #[inline]
    fn is_removed(&self) -> bool {
        self.removed.load(Ordering::Acquire)
    }

    /// The child an operation on `key` must follow.
    #[inline]
    fn child_for(&self, key: u64) -> &Atomic<Node> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

struct SearchResult {
    gparent: Shared<Node>,
    parent: Shared<Node>,
    leaf: Shared<Node>,
}

/// The DGT external binary search tree.
pub struct DgtTree<S: Smr> {
    smr: S,
    /// Sentinel internal root with key `KEY_MAX`; its left subtree holds every
    /// real key, its right child is a sentinel leaf. Never removed.
    root: Box<Node>,
}

// SAFETY: the tree owns its nodes through `Atomic` links; all shared access
// goes through the `Smr` protection protocol, and `Smr: Send + Sync`.
unsafe impl<S: Smr> Send for DgtTree<S> {}
// SAFETY: as above — mutation is via atomics under per-node locks.
unsafe impl<S: Smr> Sync for DgtTree<S> {}

impl<S: Smr> DgtTree<S> {
    /// Creates an empty tree whose reclaimer is configured by `config`.
    pub fn new(config: SmrConfig) -> Self {
        Self::with_smr(S::new(config))
    }

    /// Creates an empty tree around an existing reclaimer instance.
    pub fn with_smr(smr: S) -> Self {
        let min_leaf = Shared::from_raw(recycle::alloc_node_raw(Node::leaf(KEY_MIN)));
        let max_leaf = Shared::from_raw(recycle::alloc_node_raw(Node::leaf(KEY_MAX)));
        // lint:allow-box-node — root sentinel: owned by the structure,
        // never published for retirement, freed by Box's own drop.
        let root = Box::new(Node::internal(KEY_MAX, min_leaf, max_leaf));
        Self { smr, root }
    }

    #[inline]
    fn root_shared(&self) -> Shared<Node> {
        Shared::from_raw(&*self.root as *const Node as *mut Node)
    }

    /// Synchronization-free search (Φ_read): walk from the root to the leaf
    /// responsible for `key`, remembering the parent and grandparent. Hazard
    /// slots rotate over {0, 1, 2} so the last three nodes stay protected.
    fn traverse(&self, ctx: &mut S::ThreadCtx, key: u64) -> Option<SearchResult> {
        let mut gparent = Shared::null();
        let mut parent = self.root_shared();
        let mut slot = 0usize;
        // SAFETY: `parent` is the root sentinel, owned by the tree.
        let mut curr = self
            .smr
            .protect(ctx, slot, unsafe { parent.deref() }.child_for(key));
        if self.smr.checkpoint(ctx) {
            return None;
        }
        loop {
            // SAFETY: `curr` is covered by `slot` (the `protect` above).
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.is_leaf() {
                return Some(SearchResult {
                    gparent,
                    parent,
                    leaf: curr,
                });
            }
            gparent = parent;
            parent = curr;
            slot = (slot + 1) % 3;
            curr = self.smr.protect(ctx, slot, curr_ref.child_for(key));
            if self.smr.checkpoint(ctx) {
                return None;
            }
        }
    }
}

impl<S: Smr> ConcurrentSet<S> for DgtTree<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let found = loop {
            self.smr.begin_read_phase(ctx);
            let Some(r) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `r.leaf` is still protected by its traversal slot.
            let found = unsafe { r.leaf.deref() }.key == key;
            self.smr.end_read_phase(ctx, &[]);
            break found;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        found
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let inserted = loop {
            self.smr.begin_read_phase(ctx);
            let Some(r) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `r.leaf` is still protected by its traversal slot.
            let leaf_ref = unsafe { r.leaf.deref() };
            if leaf_ref.key == key {
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }

            // Φ_write touches the parent (lock + child swing) and reads the
            // leaf's key again: reserve both.
            self.smr
                .end_read_phase(ctx, &[r.parent.untagged_usize(), r.leaf.untagged_usize()]);

            // SAFETY: `r.parent` was just reserved by `end_read_phase`.
            let parent_ref = unsafe { r.parent.deref() };
            parent_ref.lock.lock();
            let child_slot = parent_ref.child_for(key);
            let valid =
                !parent_ref.is_removed() && child_slot.load(Ordering::Acquire).ptr_eq(r.leaf);
            if !valid {
                parent_ref.lock.unlock();
                continue;
            }
            // Build the replacement subtree: a new internal node routing
            // between the existing leaf and a new leaf holding `key`.
            let new_leaf = self.smr.alloc(ctx, Node::leaf(key));
            let (left, right, routing) = if key < leaf_ref.key {
                (new_leaf, r.leaf, leaf_ref.key)
            } else {
                (r.leaf, new_leaf, key)
            };
            let new_internal = self.smr.alloc(ctx, Node::internal(routing, left, right));
            child_slot.store(new_internal, Ordering::Release);
            parent_ref.lock.unlock();
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        inserted
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let removed = loop {
            self.smr.begin_read_phase(ctx);
            let Some(r) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `r.leaf` is still protected by its traversal slot.
            let leaf_ref = unsafe { r.leaf.deref() };
            if leaf_ref.key != key {
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }
            // The sentinel structure guarantees a real key's leaf always has an
            // internal parent and grandparent.
            debug_assert!(!r.gparent.is_null());

            self.smr.end_read_phase(
                ctx,
                &[
                    r.gparent.untagged_usize(),
                    r.parent.untagged_usize(),
                    r.leaf.untagged_usize(),
                ],
            );

            // SAFETY: `r.gparent` was just reserved by `end_read_phase`.
            let gparent_ref = unsafe { r.gparent.deref() };
            // SAFETY: `r.parent` was just reserved by `end_read_phase`.
            let parent_ref = unsafe { r.parent.deref() };
            // Lock order: ancestor first (consistent tree order ⇒ no deadlock).
            gparent_ref.lock.lock();
            parent_ref.lock.lock();
            let gchild_slot = gparent_ref.child_for(key);
            let child_slot = parent_ref.child_for(key);
            let valid = !gparent_ref.is_removed()
                && !parent_ref.is_removed()
                && gchild_slot.load(Ordering::Acquire).ptr_eq(r.parent)
                && child_slot.load(Ordering::Acquire).ptr_eq(r.leaf);
            if !valid {
                parent_ref.lock.unlock();
                gparent_ref.lock.unlock();
                continue;
            }
            // Splice the parent out: the grandparent adopts the leaf's sibling.
            let sibling = if key < parent_ref.key {
                parent_ref.right.load(Ordering::Acquire)
            } else {
                parent_ref.left.load(Ordering::Acquire)
            };
            gchild_slot.store(sibling, Ordering::Release);
            parent_ref.removed.store(true, Ordering::Release);
            leaf_ref.removed.store(true, Ordering::Release);
            parent_ref.lock.unlock();
            gparent_ref.lock.unlock();
            // SAFETY: both records were just unlinked by this thread (it held
            // the locks), so each is retired exactly once.
            unsafe {
                self.smr.retire(ctx, r.parent);
                self.smr.retire(ctx, r.leaf);
            }
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        removed
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.smr.begin_op(ctx);
        self.smr.begin_read_phase(ctx);
        // Iterative DFS over the (quiescent) tree, counting non-sentinel leaves.
        let mut stack = vec![self.root_shared()];
        let mut count = 0usize;
        while let Some(node) = stack.pop() {
            // SAFETY: `size` runs inside a read phase; under the reclaimers
            // this structure is used with, every node reachable from the
            // root stays dereferenceable for the announced phase.
            let node_ref = unsafe { node.deref() };
            if node_ref.is_leaf() {
                if node_ref.key != KEY_MIN && node_ref.key != KEY_MAX {
                    count += 1;
                }
            } else {
                stack.push(node_ref.left.load(Ordering::Acquire));
                stack.push(node_ref.right.load(Ordering::Acquire));
            }
        }
        self.smr.end_read_phase(ctx, &[]);
        self.smr.end_op(ctx);
        count
    }

    fn name() -> &'static str {
        "dgt-tree"
    }
}

impl<S: Smr> Drop for DgtTree<S> {
    fn drop(&mut self) {
        // Free every node still reachable (unlinked nodes are owned by the
        // reclaimer's limbo bags / orphan pool).
        let mut stack = vec![
            self.root.left.load(Ordering::Relaxed),
            self.root.right.load(Ordering::Relaxed),
        ];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: `&mut self` — no concurrent access remains; every
            // reachable node is exclusively ours and freed exactly once.
            let node_ref = unsafe { node.deref() };
            stack.push(node_ref.left.load(Ordering::Relaxed));
            stack.push(node_ref.right.load(Ordering::Relaxed));
            // SAFETY: as above.
            unsafe { recycle::free_node_raw(node.as_raw()) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::{Nbr, NbrPlus};
    use smr_baselines::{Debra, HazardPointers, Ibr, Qsbr, Rcu};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let tree = DgtTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        assert!(!tree.contains(&mut ctx, 50));
        assert!(tree.insert(&mut ctx, 50));
        assert!(tree.insert(&mut ctx, 30));
        assert!(tree.insert(&mut ctx, 70));
        assert!(tree.insert(&mut ctx, 60));
        assert!(!tree.insert(&mut ctx, 60));
        assert_eq!(tree.size(&mut ctx), 4);
        assert!(tree.contains(&mut ctx, 60));
        assert!(tree.remove(&mut ctx, 50));
        assert!(!tree.remove(&mut ctx, 50));
        assert!(!tree.contains(&mut ctx, 50));
        assert!(tree.contains(&mut ctx, 30) && tree.contains(&mut ctx, 70));
        assert_eq!(tree.size(&mut ctx), 3);
        tree.smr().unregister(&mut ctx);
    }

    #[test]
    fn ascending_and_descending_insertions() {
        let tree = DgtTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        for k in 1..=100u64 {
            assert!(tree.insert(&mut ctx, k));
        }
        for k in (101..=200u64).rev() {
            assert!(tree.insert(&mut ctx, k));
        }
        assert_eq!(tree.size(&mut ctx), 200);
        for k in 1..=200u64 {
            assert!(tree.contains(&mut ctx, k));
            assert!(tree.remove(&mut ctx, k));
        }
        assert_eq!(tree.size(&mut ctx), 0);
        tree.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_under_nbr_plus() {
        let tree = DgtTree::<NbrPlus>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 21);
    }

    #[test]
    fn model_check_under_nbr() {
        let tree = DgtTree::<Nbr>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 22);
    }

    #[test]
    fn model_check_under_debra() {
        let tree = DgtTree::<Debra>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 23);
    }

    #[test]
    fn model_check_under_qsbr() {
        let tree = DgtTree::<Qsbr>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 24);
    }

    #[test]
    fn model_check_under_rcu() {
        let tree = DgtTree::<Rcu>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 25);
    }

    #[test]
    fn model_check_under_hp() {
        let tree = DgtTree::<HazardPointers>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 26);
    }

    #[test]
    fn model_check_under_ibr() {
        let tree = DgtTree::<Ibr>::new(SmrConfig::for_tests());
        model_check(&tree, 5_000, 128, 27);
    }

    #[test]
    fn concurrent_disjoint_stress_nbr_plus() {
        let tree = Arc::new(DgtTree::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(tree, 4, 3_000);
    }

    #[test]
    fn concurrent_disjoint_stress_ibr() {
        let tree = Arc::new(DgtTree::<Ibr>::new(SmrConfig::for_tests()));
        disjoint_key_stress(tree, 4, 3_000);
    }

    #[test]
    fn churn_reclaims_memory() {
        let tree = DgtTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        for round in 0..200u64 {
            for k in 1..=32u64 {
                tree.insert(&mut ctx, k * 7 + round % 11);
            }
            for k in 1..=32u64 {
                tree.remove(&mut ctx, k * 7 + round % 11);
            }
        }
        tree.smr().flush(&mut ctx);
        let s = tree.smr().thread_stats(&ctx);
        assert!(s.retires > 2_000);
        assert!(s.frees > s.retires / 2);
        tree.smr().unregister(&mut ctx);
    }
}
