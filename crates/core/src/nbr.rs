//! NBR — the basic neutralization-based reclaimer (Algorithm 1 of the paper).
//!
//! Each thread accumulates unlinked records in a private limbo bag. When the
//! bag reaches the HiWatermark the thread broadcasts a neutralization signal to
//! every other thread, waits for the reader/writer handshake to complete
//! (readers acknowledge and restart, writers are covered by their
//! reservations), scans all reservations, and frees every unreserved record it
//! retired before the broadcast.

use crate::neutralize::{HandshakeOutcome, NeutralizationCore};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, LimboBag, Magazine, Retired, ScanPolicy, ScanState, Shared, Smr, SmrConfig, SmrNode,
    ThreadStats,
};
use std::sync::Arc;

/// Per-thread context for [`Nbr`].
pub struct NbrCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch for the per-scan reservation snapshot.
    reserved: Vec<usize>,
    mag: Magazine,
    stats: ThreadStats,
}

impl NbrCtx {
    /// The thread's slot index.
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// The NBR reclaimer (Algorithm 1).
pub struct Nbr {
    core: NeutralizationCore,
    policy: ScanPolicy,
    pool: Arc<BlockPool>,
}

impl Nbr {
    /// Access to the shared neutralization core (used by tests and by the
    /// harness to report signal-sequence diagnostics).
    pub fn neutralization(&self) -> &NeutralizationCore {
        &self.core
    }

    /// Signal every other thread, wait for the handshake, and free every
    /// unreserved record retired before the broadcast. Returns the number of
    /// records freed (0 when the handshake timed out and the round was
    /// conceded — see DESIGN.md substitution S1).
    fn reclaim_with_signals(&self, ctx: &mut NbrCtx) -> usize {
        // Combiner adoption: sweep peer bags published while an earlier scan
        // was mid-flight. Adopted records join the prefix before the
        // broadcast below, so they are covered by the same handshake
        // argument as the thread's own retires.
        if self.core.config().combine {
            let (published, bags) = self.core.combiner().adopt();
            if bags > 0 {
                ctx.stats.combine_adoptions += bags;
                trace::emit(
                    ctx.tid,
                    TraceKind::CombineAdopt,
                    published.len() as u64,
                    bags,
                );
            }
            for r in published {
                ctx.limbo.push(r);
            }
        }
        // Survivor adoption: fold departed threads' orphans into this
        // round's prefix — they were unlinked before their owner departed,
        // so the broadcast below covers them like the thread's own retires
        // (`take_orphans` is non-blocking).
        let orphaned = self.core.take_orphans();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        let tail = ctx.limbo.len();
        if tail == 0 {
            return 0;
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        let sw = telemetry::stopwatch_if(self.core.config().telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, tail as u64, 0);
        let ping_sw = telemetry::stopwatch_if(self.core.config().telemetry);
        let (seq, sent) = self.core.signal_all(ctx.tid);
        ctx.stats.signals_sent += sent;
        let freed = match self.core.await_neutralization(ctx.tid, seq) {
            HandshakeOutcome::TimedOut => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_stall.record(ping_sw.elapsed_ns());
                }
                ctx.stats.ping_concessions += 1;
                ctx.stats.reclaim_skips += 1;
                0
            }
            HandshakeOutcome::AllNeutralized => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_rtt.record(ping_sw.elapsed_ns());
                }
                self.core
                    .collect_reservations_into(ctx.tid, &mut ctx.reserved);
                // SAFETY: every record in the prefix was unlinked before the
                // broadcast; the handshake established that every other thread
                // either restarted its read phase (discarding unreserved
                // pointers) or is confined to its reservations, which we
                // exclude below. This is exactly Lemma 1/8 of the paper.
                unsafe {
                    ctx.limbo.reclaim_prefix_unreserved(
                        tail,
                        &ctx.reserved,
                        &mut ctx.stats,
                        &mut ctx.mag,
                    )
                }
            }
        };
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
        freed
    }

    /// HiWatermark trigger: run the scan as the domain's active scanner, or —
    /// when a peer's scan is already mid-flight — publish this thread's bag
    /// to the combiner so that scan (or the next one) sweeps it in the same
    /// ping round instead of stacking a second broadcast.
    fn scan_or_publish(&self, ctx: &mut NbrCtx) {
        if !self.core.config().combine {
            self.reclaim_with_signals(ctx);
            return;
        }
        if self.core.combiner().try_begin() {
            self.reclaim_with_signals(ctx);
            self.core.combiner().finish();
            return;
        }
        let records = ctx.limbo.drain();
        let published = records.len() as u64;
        match self.core.combiner().publish(ctx.tid, records) {
            Ok(()) => {
                ctx.stats.combine_publishes += 1;
                trace::emit(ctx.tid, TraceKind::CombinePublish, published, 0);
            }
            Err(records) => {
                // The slot still holds an unadopted bag: keep the records
                // and retry at the next trigger.
                for r in records {
                    ctx.limbo.push(r);
                }
            }
        }
    }
}

impl Smr for Nbr {
    type ThreadCtx = NbrCtx;

    const NAME: &'static str = "NBR";
    const USES_PHASES: bool = true;

    fn new(config: SmrConfig) -> Self {
        let policy = ScanPolicy::from_config(&config);
        let pool = BlockPool::from_config(&config);
        Self {
            core: NeutralizationCore::new(config),
            policy,
            pool,
        }
    }

    fn config(&self) -> &SmrConfig {
        self.core.config()
    }

    fn register(&self, tid: usize) -> NbrCtx {
        self.core.register(tid);
        NbrCtx {
            tid,
            limbo: LimboBag::with_capacity_and_batch(
                self.core.config().hi_watermark + 1,
                self.core.config().retire_batch_cap(),
            ),
            scan: ScanState::new(),
            reserved: Vec::with_capacity(
                self.core.config().max_reservations * self.core.config().max_threads,
            ),
            mag: Magazine::from_config(&self.pool, self.core.config()),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut NbrCtx) {
        // One last reclamation attempt; anything still unsafe is handed to the
        // orphan pool and destroyed when the reclaimer itself drops.
        self.reclaim_with_signals(ctx);
        let leftovers = ctx.limbo.drain();
        self.core.adopt_orphans(leftovers);
        ctx.mag.flush();
        self.core.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut NbrCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_read_phase(&self, ctx: &mut NbrCtx) {
        self.core.begin_read_phase(ctx.tid);
    }

    #[inline]
    fn end_read_phase(&self, ctx: &mut NbrCtx, reservations: &[usize]) {
        self.core.end_read_phase(ctx.tid, reservations);
    }

    #[inline]
    fn checkpoint(&self, ctx: &mut NbrCtx) -> bool {
        if self.core.checkpoint(ctx.tid) {
            ctx.stats.neutralizations += 1;
            trace::emit(ctx.tid, TraceKind::Neutralized, 0, 0);
            true
        } else {
            false
        }
    }

    #[inline]
    fn end_op(&self, ctx: &mut NbrCtx) {
        self.core.quiesce(ctx.tid);
        // Operation-exit heartbeat: outside any phase a broadcast is always
        // legal, so a thread that never reaches the HiWatermark still empties
        // its bag within a bounded number of its own operations.
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.reclaim_with_signals(ctx);
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut NbrCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: records stage in a small thread-local batch and
        // the watermark policy is only consulted when a batch flushes, so the
        // bag can overshoot the trigger by at most RETIRE_BATCH_CAP - 1.
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
            if self.policy.scan_on_retire(ctx.limbo.len()) {
                trace::emit(
                    ctx.tid,
                    TraceKind::LimboHigh,
                    ctx.limbo.len() as u64,
                    self.policy.hi_watermark as u64,
                );
                self.scan_or_publish(ctx);
            }
        }
    }

    fn flush(&self, ctx: &mut NbrCtx) {
        self.reclaim_with_signals(ctx);
    }

    fn thread_stats(&self, ctx: &NbrCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut NbrCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &NbrCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for Nbr {
    fn drop(&mut self) {
        self.core.drain_orphans();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn new_nbr() -> Nbr {
        Nbr::new(SmrConfig::for_tests().with_max_threads(4))
    }

    fn alloc_and_retire(nbr: &Nbr, ctx: &mut NbrCtx, n: usize) {
        for i in 0..n {
            let p = nbr.alloc(
                ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { nbr.retire(ctx, p) };
        }
    }

    #[test]
    fn single_thread_reclaims_at_hi_watermark() {
        let nbr = new_nbr();
        let hi = nbr.config().hi_watermark;
        let mut ctx = nbr.register(0);
        alloc_and_retire(&nbr, &mut ctx, hi);
        // The watermark crossing must have triggered a full reclamation.
        assert_eq!(nbr.limbo_len(&ctx), 0);
        let s = nbr.thread_stats(&ctx);
        assert_eq!(s.retires, hi as u64);
        assert_eq!(s.frees, hi as u64);
        assert_eq!(s.reclaim_scans, 1);
        nbr.unregister(&mut ctx);
    }

    #[test]
    fn below_watermark_nothing_is_freed() {
        let nbr = new_nbr();
        let hi = nbr.config().hi_watermark;
        let mut ctx = nbr.register(0);
        alloc_and_retire(&nbr, &mut ctx, hi - 1);
        assert_eq!(nbr.limbo_len(&ctx), hi - 1);
        assert_eq!(nbr.thread_stats(&ctx).frees, 0);
        nbr.flush(&mut ctx);
        assert_eq!(nbr.limbo_len(&ctx), 0);
        nbr.unregister(&mut ctx);
    }

    #[test]
    fn reserved_records_survive_reclamation() {
        let nbr = new_nbr();
        let mut reclaimer = nbr.register(0);
        let mut writer = nbr.register(1);

        // The writer reserves one record and sits in its write phase.
        let node = nbr.alloc(
            &mut writer,
            Node {
                header: NodeHeader::new(),
                key: 99,
            },
        );
        nbr.begin_read_phase(&mut writer);
        nbr.end_read_phase(&mut writer, &[node.untagged_usize()]);

        // The reclaimer retires that very record (as if it had unlinked it)
        // plus enough others to cross the watermark.
        unsafe { nbr.retire(&mut reclaimer, node) };
        let hi = nbr.config().hi_watermark;
        alloc_and_retire(&nbr, &mut reclaimer, hi);

        let s = nbr.thread_stats(&reclaimer);
        assert!(s.frees > 0, "unreserved records must be freed");
        assert_eq!(
            nbr.limbo_len(&reclaimer),
            (s.retires - s.frees) as usize,
            "ledger must match the bag"
        );
        assert!(
            nbr.limbo_len(&reclaimer) >= 1,
            "the reserved record must still be in limbo"
        );

        // Once the writer finishes its operation, the record becomes safe.
        nbr.end_op(&mut writer);
        nbr.begin_read_phase(&mut writer);
        nbr.end_read_phase(&mut writer, &[]);
        nbr.flush(&mut reclaimer);
        assert_eq!(nbr.limbo_len(&reclaimer), 0);

        nbr.unregister(&mut writer);
        nbr.unregister(&mut reclaimer);
    }

    #[test]
    fn stalled_reader_blocks_round_but_not_safety() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(4);
        cfg.ack_spin_limit = 32; // concede quickly
        let nbr = Nbr::new(cfg);
        let mut reclaimer = nbr.register(0);
        let mut reader = nbr.register(1);

        // Reader enters a read phase and never checkpoints (simulates a thread
        // stalled between checkpoints).
        nbr.begin_read_phase(&mut reader);

        let hi = nbr.config().hi_watermark;
        alloc_and_retire(&nbr, &mut reclaimer, hi);
        let s = nbr.thread_stats(&reclaimer);
        assert_eq!(
            s.frees, 0,
            "round must be conceded while the reader is silent"
        );
        assert_eq!(s.reclaim_skips, 1);

        // The reader observes the signal at its next checkpoint (restarting its
        // read phase) and eventually finishes its operation; the next
        // reclamation then succeeds.
        assert!(
            nbr.checkpoint(&mut reader),
            "reader must observe the signal"
        );
        nbr.end_read_phase(&mut reader, &[]);
        nbr.end_op(&mut reader);
        nbr.flush(&mut reclaimer);
        assert_eq!(nbr.limbo_len(&reclaimer), 0);

        nbr.unregister(&mut reader);
        nbr.unregister(&mut reclaimer);
    }

    #[test]
    fn neutralization_counter_increments_on_restart() {
        let nbr = new_nbr();
        let mut a = nbr.register(0);
        let mut b = nbr.register(1);
        nbr.begin_read_phase(&mut b);
        nbr.neutralization().signal_all(0);
        assert!(nbr.checkpoint(&mut b));
        assert_eq!(nbr.thread_stats(&b).neutralizations, 1);
        nbr.unregister(&mut b);
        nbr.unregister(&mut a);
    }

    #[test]
    fn unregister_hands_unsafe_records_to_orphan_pool() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(4);
        cfg.ack_spin_limit = 16;
        let nbr = Nbr::new(cfg);
        let mut reader = nbr.register(1);
        let mut victim = nbr.register(0);
        nbr.begin_read_phase(&mut reader); // never acknowledges

        alloc_and_retire(&nbr, &mut victim, 5);
        nbr.unregister(&mut victim);
        assert_eq!(
            nbr.neutralization().orphan_count(),
            5,
            "records that could not be proven safe must be orphaned, not leaked or freed"
        );
        nbr.unregister(&mut reader);
        // Dropping the reclaimer drains the orphan pool (asserted implicitly:
        // miri/asan builds would flag a leak or double free).
        drop(nbr);
    }

    #[test]
    fn garbage_is_bounded_by_watermark_plus_reservations() {
        // Lemma 10 analogue: with readers that always acknowledge, a thread's
        // limbo bag never exceeds HiWatermark + R*(N-1) right after retire.
        let nbr = new_nbr();
        let cfg = nbr.config().clone();
        let mut ctx = nbr.register(0);
        // Coalescing slack: the policy is consulted only on batch flush, so
        // the bag may overshoot the trigger by at most one unfilled batch.
        let bound = cfg.hi_watermark
            + cfg.max_reservations * (cfg.max_threads - 1)
            + (smr_common::RETIRE_BATCH_CAP - 1);
        for i in 0..(cfg.hi_watermark * 8) {
            let p = nbr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { nbr.retire(&mut ctx, p) };
            assert!(
                nbr.limbo_len(&ctx) <= bound,
                "limbo bag exceeded the Lemma 10 bound: {} > {}",
                nbr.limbo_len(&ctx),
                bound
            );
        }
        nbr.unregister(&mut ctx);
    }
}
