//! `applicability` — Table 1 of the paper (which SMR schemes can be used with
//! which data structures) restricted to the structures and reclaimers
//! implemented in this workspace, plus the Section 5.3 usability comparison
//! (extra reclamation-related lines of code per structure).
//!
//! The "yes/no" entries follow the paper's analysis (Section B of its
//! appendix); entries marked `impl` are additionally demonstrated by this
//! repository's code (the structure is instantiated with that reclaimer in the
//! test suite and benches).

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    assert!(
        !smr_common::telemetry::trace_compiled_in(),
        "bench binary built with the smr-common `trace` feature on; measurements would be invalid"
    );
    println!("Table 1 — applicability of SMR schemes to the implemented data structures");
    println!("(paper rows LL05, HL01, HM04, DGT15, B17a; `impl` = exercised by this repo's tests)");
    println!();
    println!("| structure | NBR / NBR+ | EBR family (DEBRA/QSBR/RCU) | HP / IBR / HE |");
    println!("|---|---|---|---|");
    println!("| lazy list (LL05) | yes, impl | yes, impl | no per the paper (breaks wait-free contains); run here IBR-benchmark-style, impl |");
    println!("| Harris list (HL01) | yes, impl | yes, impl | yes, impl |");
    println!("| Harris-Michael list (HM04), original | **no** (Φ_read resumes from pred) | yes, impl | yes, impl |");
    println!("| Harris-Michael list, restart-from-root variant (E4) | yes, impl | yes, impl | yes, impl |");
    println!("| DGT external BST (DGT15) | yes, impl | yes, impl | no per the paper (no marks ⇒ cannot validate); run here with re-read validation, impl |");
    println!("| (a,b)-tree (stand-in for Brown's ABTree, B17a) | yes, impl | yes, impl | no per the paper; run here with re-read validation, impl |");
    println!();
    println!("Structures the paper lists as incompatible with NBR and not built here:");
    println!("  BCCO10 / DVY14b (bottom-up rebalancing AVL trees), RM15 (internal BST),");
    println!("  EFRB14 (searches resume from ancestors), BPA20 (interpolation search tree).");
    println!();

    println!("Usability (Section 5.3, Figure 2) — extra reclamation-related lines in this repo's");
    println!("lazy-list integration, counted over insert/remove/contains:");
    println!();
    println!("| scheme | extra calls | what the programmer writes |");
    println!("|---|---|---|");
    println!("| DEBRA  | 2 per operation | begin_op / end_op |");
    println!("| NBR/NBR+ | 4 per operation + 1 checkpoint per loop | begin_op/end_op, begin/end read phase with reservations, checkpoint in the traversal |");
    println!("| HP | 2 per pointer hop + failure paths | protect on every hop, clear_protections, restart on validation failure |");
    println!();
    println!("This matches the paper's qualitative ordering DEBRA << NBR << HP (Figure 2) and its");
    println!("quantitative observation of ~10 extra lines for NBR vs ~30 for HP.");
}
