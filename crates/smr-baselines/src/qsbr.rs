//! Quiescent-state-based reclamation (QSBR).
//!
//! QSBR relies on each thread periodically passing through a *quiescent state*
//! in which it holds no references to shared records — in this benchmark (as in
//! the paper's adaptation of the IBR benchmark's QSBR), the boundary between
//! two data-structure operations. The global epoch may advance once every
//! registered thread has been quiescent during the current epoch; records
//! retired in epoch `e` are freed once the retiring thread observes epoch
//! `e + 2`.
//!
//! Like all EBR-family schemes it has no garbage bound: a thread that stalls
//! inside an operation (never reaching a quiescent state) pins the epoch
//! forever (experiment E2).

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState, Shared,
    Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

const BAGS: usize = 3;
/// Sentinel meaning "offline": the thread is not running operations at all and
/// must not block epoch advancement.
const OFFLINE: u64 = u64::MAX;

struct QsbrSlot {
    /// The last global epoch at which this thread was quiescent, or [`OFFLINE`].
    quiescent_epoch: AtomicU64,
}

/// Per-thread context for [`Qsbr`].
pub struct QsbrCtx {
    tid: usize,
    bags: [LimboBag; BAGS],
    bag_epochs: [u64; BAGS],
    local_epoch: u64,
    retires_since_check: usize,
    scan: ScanState,
    mag: Magazine,
    stats: ThreadStats,
}

/// The QSBR reclaimer.
pub struct Qsbr {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    epoch: EraClock,
    slots: Vec<CachePadded<QsbrSlot>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
}

impl Qsbr {
    /// The global epoch can advance once every online thread has been
    /// quiescent in the current epoch. Single-fence scan (see DESIGN.md): one
    /// SeqCst fence, then Acquire loads of every announcement — a stale read
    /// can only under-report a thread's progress, which blocks the advance
    /// (conservative).
    fn try_advance(&self, ctx: &mut QsbrCtx) {
        fence(Ordering::SeqCst);
        let current = self.epoch.now();
        for tid in self.registry.active_tids() {
            let q = self.slots[tid].quiescent_epoch.load(Ordering::Acquire);
            if q == OFFLINE {
                continue;
            }
            if q < current {
                return;
            }
        }
        if self.epoch.advance_from(current) {
            ctx.stats.epoch_advances += 1;
            trace::emit(ctx.tid, TraceKind::EraAdvance, current + 1, 0);
        }
    }

    fn sync_local_epoch(&self, ctx: &mut QsbrCtx, observed: u64) {
        if observed == ctx.local_epoch {
            return;
        }
        ctx.local_epoch = observed;
        let reclaimable =
            (0..BAGS).any(|i| !ctx.bags[i].is_empty() && ctx.bag_epochs[i] + 2 <= observed);
        let sw = if reclaimable {
            let limbo: usize = ctx.bags.iter().map(|b| b.len()).sum();
            trace::emit(ctx.tid, TraceKind::ScanBegin, limbo as u64, 0);
            telemetry::stopwatch_if(self.config.telemetry)
        } else {
            None
        };
        let frees_before = ctx.stats.frees;
        for i in 0..BAGS {
            if !ctx.bags[i].is_empty() && ctx.bag_epochs[i] + 2 <= observed {
                // SAFETY: two epoch advances require every online thread to
                // have been quiescent twice since these records were retired;
                // any operation that could have referenced them has ended.
                unsafe { ctx.bags[i].reclaim_all(&mut ctx.stats, &mut ctx.mag) };
            }
        }
        if reclaimable {
            trace::emit(
                ctx.tid,
                TraceKind::ScanEnd,
                ctx.stats.frees - frees_before,
                0,
            );
            if let Some(sw) = sw {
                ctx.stats.tel.scan.record(sw.elapsed_ns());
            }
        }
        let idx = (observed as usize) % BAGS;
        if ctx.bags[idx].is_empty() {
            ctx.bag_epochs[idx] = observed;
        }
        // Survivor adoption: departed threads' orphans join the current
        // bag and wait two further advances like any fresh retire
        // (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
            let idx = (observed as usize) % BAGS;
            for r in orphaned {
                ctx.bags[idx].push(r);
            }
        }
    }
}

impl Smr for Qsbr {
    type ThreadCtx = QsbrCtx;

    const NAME: &'static str = "QSBR";

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(QsbrSlot {
                    quiescent_epoch: AtomicU64::new(OFFLINE),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            epoch: EraClock::new(),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> QsbrCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        let now = self.epoch.now();
        // A freshly registered thread is quiescent by definition.
        self.slots[tid].quiescent_epoch.store(now, Ordering::SeqCst);
        let cap = self.config.retire_batch_cap();
        QsbrCtx {
            tid,
            bags: [
                LimboBag::with_batch(cap),
                LimboBag::with_batch(cap),
                LimboBag::with_batch(cap),
            ],
            bag_epochs: [now; BAGS],
            local_epoch: now,
            retires_since_check: 0,
            scan: ScanState::new(),
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut QsbrCtx) {
        smr_common::check::unpin_epoch(ctx.tid);
        self.slots[ctx.tid]
            .quiescent_epoch
            .store(OFFLINE, Ordering::SeqCst);
        let mut leftovers = Vec::new();
        for bag in ctx.bags.iter_mut() {
            leftovers.extend(bag.drain());
        }
        self.orphans.adopt(leftovers);
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut QsbrCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_op(&self, ctx: &mut QsbrCtx) {
        // Operations run "inside" whatever epoch the thread last observed; the
        // quiescent announcement happens at the end of the operation.
        let e = self.epoch.now();
        // Oracle mirror: while this op runs, the stale quiescent announcement
        // caps the observable epoch at `e + 1`, so no record retired at an
        // epoch >= e can be freed (frees need retire + 2 <= observed). Pinning
        // at `e` therefore never over-claims.
        smr_common::check::pin_epoch(ctx.tid, e);
        self.sync_local_epoch(ctx, e);
    }

    #[inline]
    fn end_op(&self, ctx: &mut QsbrCtx) {
        // Oracle mirror: drop the pin before announcing quiescence — the
        // scans below may free this thread's own bags, which is legal once
        // the op is over (claims must stay a subset of real announcements).
        smr_common::check::unpin_epoch(ctx.tid);
        // Quiescent state: announce the current epoch and occasionally try to
        // advance it. Release suffices for the announcement: it orders the
        // finished operation's reads before the store (the direction safety
        // needs), and a scan that sees the old value merely delays the
        // advance (conservative).
        let e = self.epoch.now();
        self.slots[ctx.tid]
            .quiescent_epoch
            .store(e, Ordering::Release);
        ctx.retires_since_check += 1;
        if ctx.retires_since_check >= self.config.epoch_freq {
            ctx.retires_since_check = 0;
            self.try_advance(ctx);
            // The epoch-paced advance is QSBR's regular scan: restart the
            // heartbeat window so the op-exit trigger only fires when this
            // path has been starved (ScanState::tick_op's pacing contract).
            ctx.scan.note_scan();
        }
        let pending = self.limbo_len(ctx);
        if ctx.scan.tick_op(&self.policy, pending) {
            ctx.stats.heartbeat_scans += 1;
            ctx.scan.note_scan();
            // Heartbeat: nudge the epoch forward and free whatever two
            // completed grace periods have made safe, so a thread retiring
            // slowly still returns memory.
            self.try_advance(ctx);
            self.sync_local_epoch(ctx, self.epoch.now());
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut QsbrCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Stamp with the epoch read *now*, not the one cached at `begin_op`:
        // this thread's quiescent announcement from its *previous* op does
        // not block mid-op epoch advances, so a reader beginning in epoch
        // `e+1` before this record's unlink can hold a pointer while a
        // stale-`e` bag is freed at `e+2`. Re-reading restores the grace
        // period argument: the `e'+1 → e'+2` advance requires every thread
        // to go quiescent after the epoch reached `e'+1`, which postdates
        // this retire and hence the unlink (same stale-stamp shape smr-check
        // caught in DEBRA).
        self.sync_local_epoch(ctx, self.epoch.now());
        let idx = (ctx.local_epoch as usize) % BAGS;
        // Retire coalescing: stage in the current epoch's bag (stamped
        // before staging — see the sync above); peak-limbo bookkeeping is
        // amortized to batch flushes.
        let flushed = ctx.bags[idx].stage(Retired::new(ptr.as_raw(), ctx.local_epoch));
        ctx.stats.retires += 1;
        if flushed {
            let total: usize = ctx.bags.iter().map(|b| b.len()).sum();
            ctx.stats.observe_limbo(total);
        }
    }

    #[inline]
    fn validation_stamp(&self, ctx: &mut QsbrCtx) -> Option<u64> {
        // Sound for QSBR for the same reason as DEBRA: `local_epoch`
        // re-syncs to the global epoch at every `begin_op`, so stamp
        // equality between two operations means the global epoch never
        // advanced in between — and a record retired at epoch `e` is only
        // freed once its owner observes epoch `e + 2`.
        if self.config.memo {
            Some(ctx.local_epoch)
        } else {
            None
        }
    }

    fn flush(&self, ctx: &mut QsbrCtx) {
        for _ in 0..3 {
            let e = self.epoch.now();
            self.slots[ctx.tid]
                .quiescent_epoch
                .store(e, Ordering::SeqCst);
            self.try_advance(ctx);
            self.sync_local_epoch(ctx, self.epoch.now());
        }
    }

    fn thread_stats(&self, ctx: &QsbrCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut QsbrCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &QsbrCtx) -> usize {
        ctx.bags.iter().map(|b| b.len()).sum()
    }
}

impl Drop for Qsbr {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn op_with_retire(smr: &Qsbr, ctx: &mut QsbrCtx, key: u64) {
        smr.begin_op(ctx);
        let p = smr.alloc(
            ctx,
            Node {
                header: NodeHeader::new(),
                key,
            },
        );
        unsafe { smr.retire(ctx, p) };
        smr.end_op(ctx);
    }

    #[test]
    fn reclamation_happens_across_quiescent_states() {
        let smr = Qsbr::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..100 {
            op_with_retire(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn thread_that_never_quiesces_blocks_reclamation() {
        let smr = Qsbr::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut stalled = smr.register(1);
        smr.begin_op(&mut stalled);
        // Make the stalled thread's announcement stale: it has not been
        // quiescent since the current epoch began.
        // (Its registration-time announcement counts for the current epoch, so
        // force one advance first via the worker.)
        for i in 0..500 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        let frees_so_far = smr.thread_stats(&worker).frees;
        // After the first couple of epochs, the stalled thread pins everything.
        for i in 0..200 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        let frees_after = smr.thread_stats(&worker).frees;
        assert_eq!(
            frees_after - frees_so_far,
            0,
            "no further reclamation may happen while a thread never quiesces"
        );
        smr.end_op(&mut stalled);
        smr.unregister(&mut stalled);
        smr.unregister(&mut worker);
    }

    #[test]
    fn offline_threads_do_not_block() {
        let smr = Qsbr::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut other = smr.register(1);
        smr.unregister(&mut other); // goes offline immediately
        for i in 0..100 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        assert!(smr.thread_stats(&worker).frees > 0);
        smr.unregister(&mut worker);
    }
}
