//! Figure 3b (experiment E1): throughput of the lazy list (LL05) under the
//! three operation mixes, one Criterion series per reclaimer. The expected
//! shape (paper, Section 7): the EBR family and NBR+ cluster together, HP and
//! IBR trail far behind because of their per-hop protection cost on the long
//! list traversals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::LazyListFamily;
use smr_harness::WorkloadMix;

const KEY_RANGE: u64 = 2_048;

fn bench_fig3b(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    // One prefilled list per reclaimer, shared across the three mix groups
    // and every Criterion sample (satellite of the ROADMAP "share prefilled
    // structures" item).
    let runners = helpers::prefilled_runners::<LazyListFamily>(KEY_RANGE, threads);
    for (mix, mix_label) in [
        (WorkloadMix::UPDATE_HEAVY, "50i-50d"),
        (WorkloadMix::BALANCED, "25i-25d"),
        (WorkloadMix::READ_HEAVY, "5i-5d"),
    ] {
        let mut group = c.benchmark_group(format!("fig3b_lazylist_{mix_label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for (kind, runner) in &runners {
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter_custom(|iters| {
                    let spec = helpers::spec_for_iters(mix, KEY_RANGE, threads, iters);
                    runner.run(&spec).duration
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig3b);
criterion_main!(benches);
