//! Deterministic forced-interleaving reproducer for the marked-chain
//! traversal race that kept `CAN_TRAVERSE_UNLINKED = false` on the interval
//! reclaimers (ROADMAP, "IBR chain-traversal race").
//!
//! The interleaving below is the Harris-list scenario distilled to its four
//! checkpoints, driven from **one** test thread through two registered
//! contexts, so every step lands exactly where the race needs it (the same
//! spirit as `recycle_aba.rs`'s forced address reuse — no timing, no luck):
//!
//! ```text
//! traverser R                      writer W
//! -----------                      --------
//! protect(A)  @ era e1
//!                                  insert B after A      (birth b > e1)
//!                                  mark A, mark B
//!                                  batch-unlink A→B, retire A then B
//!                                  (churn: era advances past B's retire r)
//! read A.next → B  @ era e2        -- A.next is frozen by A's mark, so the
//! (validated protect)                 hop lands on the unlinked B; e2 > r
//!                                  scan
//! deref B                          -- must still be alive!
//! ```
//!
//! B's lifetime `[b, r]` lies **strictly between** R's two announced eras:
//! `e1 < b ≤ r < e2`. A reclaimer that checks announced eras as *points*
//! (pre-fix hazard eras) covers B with neither era and frees it while R
//! holds a validated pointer — with the PR-4 recycling pool the block is
//! immediately re-issued, so the stale deref reads another record's bytes.
//! A reclaimer that pins the *contiguous interval* between its announced
//! bounds (IBR; post-fix HE via the per-thread era hull) keeps B: the hull
//! `[e1, e2] ⊇ [b, r]`. See DESIGN.md, "Traversals through unlinked records
//! under the interval reclaimers".
//!
//! The writer-side steps use only public `Smr` API calls, and the traverser
//! side issues the exact `protect` sequence the Harris list's `search` emits,
//! so the reproducer is red on the pre-fix scan and is kept as a regression
//! test (1 000 seeded variations of the era paddings) now that it is green.

use smr_baselines::{HazardEras, Ibr};
use smr_common::{Atomic, NodeHeader, Smr, SmrConfig};
use std::sync::atomic::Ordering;

/// Mark bit, exactly as the Harris list uses it on `next` pointers.
const MARK: usize = 1;

struct Node {
    header: NodeHeader,
    key: u64,
    next: Atomic<Node>,
}
smr_common::impl_smr_node!(Node);

fn node(key: u64) -> Node {
    Node {
        header: NodeHeader::new(),
        key,
        next: Atomic::null(),
    }
}

/// Advance the global era by `n` steps without touching the limbo bag
/// (`epoch_freq = 1` makes every allocation an era advance; the block is
/// immediately taken back as never-published).
fn advance_era<S: Smr>(smr: &S, ctx: &mut S::ThreadCtx, n: u64) {
    for i in 0..n.max(1) {
        let p = smr.alloc(ctx, node(1_000 + i));
        // SAFETY: allocated above, never published.
        unsafe { smr.dealloc_unpublished(ctx, p) };
    }
}

/// Config that never scans on its own: the test chooses the scan point.
fn quiet_config() -> SmrConfig {
    SmrConfig::for_tests()
        .with_epoch_freqs(1, usize::MAX)
        .with_watermarks(1 << 20, 8)
        .with_scan_heartbeat_ops(0)
}

/// One forced interleaving. `pad` varies the era distances between the four
/// checkpoints (seeded by the caller); the gap shape `e1 < birth ≤ retire
/// < e2` holds for every positive padding, so each iteration is the same
/// race with differently spaced eras.
fn run_interleaving<S: Smr>(smr: &S, pad: [u64; 3]) {
    let mut w = smr.register(0);
    let mut r = smr.register(1);

    // W: head → A → tail.
    let tail = smr.alloc(&mut w, node(u64::MAX));
    let a = smr.alloc(&mut w, node(10));
    unsafe { a.deref() }.next.store(tail, Ordering::Release);
    let head = Atomic::new(a);

    // R: begin an operation and protect A, announcing era e1 (slot 0) — the
    // Harris list's first hop.
    smr.begin_op(&mut r);
    let ra = smr.protect(&mut r, 0, &head);
    assert_eq!(ra.untagged_usize(), a.untagged_usize());
    assert_eq!(unsafe { ra.deref().key }, 10);

    // W: era moves on, then B is inserted *after* R's announcement, so B's
    // birth era is strictly greater than e1.
    advance_era(smr, &mut w, pad[0]);
    let b = smr.alloc(&mut w, node(20));
    unsafe { b.deref() }.next.store(tail, Ordering::Release);
    unsafe { a.deref() }.next.store(b, Ordering::Release);
    advance_era(smr, &mut w, pad[1]);

    // W: logically delete B then A (mark = freeze their next pointers), then
    // batch-unlink the whole chain with one store on head (the Harris
    // phase-3 CAS) and retire it in chain order: A first, then B.
    unsafe { b.deref() }
        .next
        .store(tail.with_tag(MARK), Ordering::Release);
    unsafe { a.deref() }
        .next
        .store(b.with_tag(MARK), Ordering::Release);
    head.store(tail, Ordering::Release);
    unsafe { smr.retire(&mut w, a) };
    unsafe { smr.retire(&mut w, b) };

    // W: era keeps moving, so B's whole lifetime is now in the past.
    advance_era(smr, &mut w, pad[2]);

    // R: the traversal hops through the *unlinked* A. A's next is frozen by
    // the mark, so the validated protect returns B — at an era strictly
    // greater than B's retire era.
    let rb = smr.protect(&mut r, 1, unsafe { &ra.deref().next });
    assert_eq!(rb.untagged_usize(), b.untagged_usize());

    // W: reclamation scan. R's announced eras are e1 (covering A) and
    // e2 > retire(B); only the contiguous hull [e1, e2] covers B.
    smr.flush(&mut w);

    assert_eq!(
        smr.limbo_len(&w),
        2,
        "both chain records must survive the scan while the traverser's \
         announced interval spans their lifetimes"
    );
    // The deref the Harris list would do next. If B had been freed, the
    // recycling magazine re-issues its block to the next allocation (LIFO),
    // so a stale key here is the use-after-free made visible.
    assert_eq!(unsafe { rb.with_tag(0).deref().key }, 20);

    // Wind down: once R lets go, the chain must be reclaimable.
    smr.clear_protections(&mut r);
    smr.end_op(&mut r);
    smr.flush(&mut w);
    assert_eq!(smr.limbo_len(&w), 0, "released chain must be freed");
    unsafe { smr.retire(&mut w, tail) };
    smr.flush(&mut w);
    smr.unregister(&mut r);
    smr.unregister(&mut w);
}

fn seeded_paddings(iterations: u64) -> impl Iterator<Item = [u64; 3]> {
    let mut state = 0x5EED_CAFE_F00D_u64;
    (0..iterations).map(move |_| {
        let mut next = || {
            // SplitMix64 step — deterministic, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        [1 + next() % 7, 1 + next() % 7, 1 + next() % 7]
    })
}

/// The reproducer proper. Red on the pre-fix hazard-eras scan (point-era
/// sweep frees B on the very first iteration); green for ≥ 1 000 seeded
/// iterations with the per-thread era-hull scan.
#[test]
fn hazard_eras_marked_chain_traversal_pins_the_unlinked_chain() {
    for pad in seeded_paddings(1_000) {
        let smr = HazardEras::new(quiet_config());
        run_interleaving(&smr, pad);
    }
}

/// The same interleaving under IBR: the announced `[lower, upper]` interval
/// is contiguous by construction, so this holds pre- and post-fix — the
/// evidence that the residual race was the era-gap, not interval
/// reclamation per se.
#[test]
fn ibr_marked_chain_traversal_pins_the_unlinked_chain() {
    for pad in seeded_paddings(1_000) {
        let smr = Ibr::new(quiet_config());
        run_interleaving(&smr, pad);
    }
}
