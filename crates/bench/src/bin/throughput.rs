//! `throughput` — the machine-readable perf-trajectory harness.
//!
//! Runs the read-mostly list matrix (scheme × structure × key range at the CI
//! thread count) and writes one JSON document per invocation. The output is
//! committed as `BENCH_<pr>.json` at the repo root so every perf-oriented PR
//! leaves a comparable record; pass `--baseline <prior.json>` to embed the
//! prior run's numbers and per-cell speedups in the new document.
//!
//! ```text
//! cargo run -p nbr-bench --release --bin throughput -- \
//!     [--out BENCH_3.json] [--baseline old.json] [--trials 3] \
//!     [--millis 300] [--threads N] [--tiny] [--label note] \
//!     [--zipf theta]
//! ```
//!
//! `--zipf <theta>` switches the key distribution from uniform to a YCSB
//! Zipfian with the given `θ ∈ (0, 1)`; zipfian cells carry a `|zipf<θ>`
//! suffix in their key so they never collide with uniform baselines.
//!
//! Each cell is emitted on its own line with a stable `key`
//! (`scheme|structure|mix|r<range>|t<threads>`), which is what the baseline
//! parser keys on — keep the format line-oriented.

use smr_common::SmrConfig;
use smr_harness::families::{HarrisListFamily, HmListRestartFamily};
use smr_harness::{
    run_with, KeyDist, SmrKind, StopCondition, TrialResult, WorkloadMix, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

struct Args {
    out: String,
    baseline: Option<String>,
    trials: usize,
    millis: u64,
    threads: usize,
    key_ranges: Vec<u64>,
    label: String,
    key_dist: KeyDist,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_3.json".to_string(),
        baseline: None,
        trials: 3,
        millis: 300,
        threads: default_threads(),
        key_ranges: vec![200, 2_048],
        label: String::new(),
        key_dist: KeyDist::Uniform,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--trials" => args.trials = val("--trials").parse().expect("--trials"),
            "--millis" => args.millis = val("--millis").parse().expect("--millis"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--label" => args.label = val("--label"),
            "--zipf" => {
                let theta: f64 = val("--zipf").parse().expect("--zipf");
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "--zipf theta must lie in (0, 1), got {theta}"
                );
                args.key_dist = KeyDist::Zipf(theta);
            }
            "--tiny" => {
                // CI smoke scale: one short trial, one key range.
                args.trials = 1;
                args.millis = 40;
                args.key_ranges = vec![200];
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// One measured cell of the matrix.
struct Cell {
    key: String,
    scheme: &'static str,
    ds: &'static str,
    mops: f64,
    peak_limbo: u64,
    retires: u64,
    frees: u64,
}

fn cell_key(r: &TrialResult, dist: KeyDist) -> String {
    let suffix = match dist {
        KeyDist::Uniform => String::new(),
        KeyDist::Zipf(_) => format!("|{}", dist.label()),
    };
    format!(
        "{}|{}|{}|r{}|t{}{}",
        r.smr, r.ds, r.mix, r.key_range, r.threads, suffix
    )
}

/// Extracts `"key": mops` pairs (plus peak limbo) from a prior run's JSON.
/// The format is line-oriented by construction, so a full JSON parser is not
/// needed: every cell line carries `"key":"..."` and `"mops":<f64>`.
fn parse_baseline(text: &str) -> BTreeMap<String, (f64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(key) = extract_str(line, "\"key\":\"") else {
            continue;
        };
        let Some(mops) = extract_num(line, "\"mops\":") else {
            continue;
        };
        let peak = extract_num(line, "\"peak_limbo\":").unwrap_or(0.0) as u64;
        out.insert(key, (mops, peak));
    }
    out
}

/// Escapes a user-supplied string for embedding in a JSON string literal
/// (`--label` is free text; every other interpolated string is a fixed
/// scheme/structure label).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn extract_str(line: &str, tag: &str) -> Option<String> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, tag: &str) -> Option<f64> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_once<F: smr_harness::DsFamily>(kind: SmrKind, key_range: u64, args: &Args) -> TrialResult {
    let spec = WorkloadSpec::new(
        WorkloadMix::READ_HEAVY,
        key_range,
        args.threads,
        StopCondition::Duration(Duration::from_millis(args.millis)),
    )
    .with_key_dist(args.key_dist);
    let config = SmrConfig::default()
        .with_max_threads(args.threads + 4)
        .with_watermarks(1024, 256)
        .with_signal_cost_ns(2_000);
    run_with::<F>(kind, &spec, config)
}

fn main() {
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        parse_baseline(&text)
    });

    // One runner closure per cell of the matrix, so the trial loop below can
    // *interleave*: every cell runs once per pass over the whole matrix,
    // rather than all N trials back-to-back. CI-grade machines see *bursty*
    // interference (a noisy neighbour for a few seconds); back-to-back
    // trials let one burst swallow every sample of a single cell, while
    // interleaved passes spread it across the matrix — best-of-N then
    // converges per cell instead of condemning whichever cell the burst hit.
    type Runner = Box<dyn Fn(&Args) -> TrialResult>;
    let schemes = SmrKind::all();
    let mut runners: Vec<Runner> = Vec::new();
    for &key_range in &args.key_ranges {
        for &kind in schemes {
            runners.push(Box::new(move |a| {
                run_once::<HarrisListFamily>(kind, key_range, a)
            }));
            runners.push(Box::new(move |a| {
                run_once::<HmListRestartFamily>(kind, key_range, a)
            }));
        }
    }

    let mut best: Vec<Option<TrialResult>> = runners.iter().map(|_| None).collect();
    for pass in 0..args.trials.max(1) {
        eprintln!("pass {}/{}", pass + 1, args.trials.max(1));
        for (slot, runner) in best.iter_mut().zip(&runners) {
            let r = runner(&args);
            if slot.as_ref().map(|b| r.mops > b.mops).unwrap_or(true) {
                *slot = Some(r);
            }
        }
    }

    let cells: Vec<Cell> = best
        .into_iter()
        .map(|r| {
            let r = r.expect("at least one pass ran");
            eprintln!(
                "  {:<28} {:>8.3} Mops/s  peak_limbo={} retired={} freed={}",
                cell_key(&r, args.key_dist),
                r.mops,
                r.smr_totals.peak_limbo,
                r.smr_totals.retires,
                r.smr_totals.frees
            );
            Cell {
                key: cell_key(&r, args.key_dist),
                scheme: r.smr,
                ds: r.ds,
                mops: r.mops,
                peak_limbo: r.smr_totals.peak_limbo,
                retires: r.smr_totals.retires,
                frees: r.smr_totals.frees,
            }
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"harness\": \"throughput\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&args.label));
    let _ = writeln!(out, "  \"mix\": \"5i-5d\",");
    let _ = writeln!(out, "  \"key_dist\": \"{}\",", args.key_dist.label());
    let _ = writeln!(out, "  \"threads\": {},", args.threads);
    let _ = writeln!(out, "  \"trials\": {},", args.trials);
    let _ = writeln!(out, "  \"trial_millis\": {},", args.millis);
    let _ = writeln!(out, "  \"cells\": [");
    let n = cells.len();
    for (i, c) in cells.iter().enumerate() {
        let mut line = format!(
            "    {{\"key\":\"{}\",\"scheme\":\"{}\",\"ds\":\"{}\",\"mops\":{:.4},\"peak_limbo\":{},\"retires\":{},\"frees\":{}",
            c.key, c.scheme, c.ds, c.mops, c.peak_limbo, c.retires, c.frees
        );
        if let Some(base) = &baseline {
            if let Some(&(bm, bp)) = base.get(&c.key) {
                let _ = write!(
                    line,
                    ",\"baseline_mops\":{:.4},\"baseline_peak_limbo\":{},\"speedup\":{:.4}",
                    bm,
                    bp,
                    if bm > 0.0 { c.mops / bm } else { 0.0 }
                );
            }
        }
        let _ = write!(line, "}}{}", if i + 1 < n { "," } else { "" });
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    if let Some(base) = &baseline {
        let matched = cells.iter().filter(|c| base.contains_key(&c.key)).count();
        if matched == 0 {
            eprintln!(
                "warning: no cell key matched the baseline — check that \
                 --threads (and the key ranges / distribution) match the \
                 baseline run, or every speedup field will be absent"
            );
        }
        let improved: Vec<&Cell> = cells
            .iter()
            .filter(|c| {
                base.get(&c.key)
                    .map(|&(bm, _)| bm > 0.0 && c.mops / bm >= 1.10)
                    .unwrap_or(false)
            })
            .collect();
        eprintln!(
            "cells ≥ 1.10x over baseline: {} of {} ({} matched)",
            improved.len(),
            cells.len(),
            matched
        );
        for c in improved {
            let (bm, _) = base[&c.key];
            eprintln!(
                "  {}: {:.3} → {:.3} ({:.2}x)",
                c.key,
                bm,
                c.mops,
                c.mops / bm
            );
        }
    }
}
