//! Experiment runners: one function per figure of the paper's evaluation.
//!
//! | function | paper figure | what it sweeps |
//! |---|---|---|
//! | [`e1_dgt_throughput`] | Fig. 3a | DGT tree, 3 mixes × thread counts × reclaimers |
//! | [`e1_lazylist_throughput`] | Fig. 3b | lazy list, 3 mixes × thread counts × reclaimers |
//! | [`e2_peak_memory`] | Fig. 4c / 4d | DGT tree, peak memory with/without a stalled thread |
//! | [`e3_abtree_contention`] | Fig. 4a | (a,b)-tree, large vs. tiny key range |
//! | [`e4_hmlist_restarts`] | Fig. 4b | HM list: NBR+ vs. DEBRA with/without forced restarts |
//! | [`fig5_dgt_sizes`] | Fig. 5 | DGT tree across key-range sizes |
//! | [`fig6_lazylist_sizes`] | Fig. 6 | lazy list across small key-range sizes |
//! | [`fig7_harris_sizes`] | Fig. 7 | Harris list across key-range sizes |
//! | [`fig8_abtree_sizes`] | Fig. 8 | (a,b)-tree across key-range sizes |
//! | [`ablation_signal_counts`] | §5 / Table-style ablation | NBR vs NBR+ signals per reclaimed record |
//!
//! All runners scale with an [`ExperimentScale`]: the paper's 4-socket,
//! 192-thread machine and 5-second trials are far outside what a CI container
//! can run, so `quick()` shrinks key ranges, durations and thread counts while
//! preserving the comparisons (see DESIGN.md, substitution S2). `full()`
//! restores the paper's key ranges and mixes for use on larger machines.

use crate::driver::TrialResult;
use crate::families::{
    run_with, AbTreeFamily, DgtTreeFamily, DsFamily, HarrisListFamily, HmListNoRestartFamily,
    HmListRestartFamily, LazyListFamily, SmrKind,
};
use crate::workload::{StopCondition, WorkloadMix, WorkloadSpec};
use smr_common::SmrConfig;
use std::time::Duration;

/// Scaling knobs for the experiment runners.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Key range for the tree experiments (paper: 2 M).
    pub tree_key_range: u64,
    /// Key range for the list experiments (paper: 20 K).
    pub list_key_range: u64,
    /// The "high contention" key range (paper: 200).
    pub small_key_range: u64,
    /// Thread counts to sweep (the paper sweeps 24–252; here the sweep is
    /// derived from the host's parallelism and includes oversubscription).
    pub thread_counts: Vec<usize>,
    /// Stop condition per trial (paper: 5-second timed trials).
    pub stop: StopCondition,
    /// Operation mixes to sweep.
    pub mixes: Vec<WorkloadMix>,
    /// Simulated cost of one neutralization signal in nanoseconds.
    pub signal_cost_ns: u64,
}

impl ExperimentScale {
    /// Thread counts derived from the host: 1, the core count, and 2× the core
    /// count (oversubscribed, exercising property P4).
    pub fn host_thread_counts() -> Vec<usize> {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        let mut counts = vec![1, 2, cores, cores * 2];
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// CI-sized scale: small key ranges, short trials. The *shape* of every
    /// comparison is preserved; absolute numbers are not comparable to the
    /// paper's testbed.
    pub fn quick() -> Self {
        Self {
            tree_key_range: 65_536,
            list_key_range: 2_048,
            small_key_range: 200,
            thread_counts: Self::host_thread_counts(),
            stop: StopCondition::Duration(Duration::from_millis(120)),
            mixes: vec![
                WorkloadMix::UPDATE_HEAVY,
                WorkloadMix::BALANCED,
                WorkloadMix::READ_HEAVY,
            ],
            signal_cost_ns: 2_000,
        }
    }

    /// A minimal scale for smoke tests and Criterion benches.
    pub fn smoke() -> Self {
        Self {
            tree_key_range: 8_192,
            list_key_range: 512,
            small_key_range: 128,
            thread_counts: vec![2],
            stop: StopCondition::TotalOps(30_000),
            mixes: vec![WorkloadMix::UPDATE_HEAVY],
            signal_cost_ns: 0,
        }
    }

    /// The paper's parameters (only sensible on a large multi-socket machine).
    pub fn full() -> Self {
        Self {
            tree_key_range: 2_000_000,
            list_key_range: 20_000,
            small_key_range: 200,
            thread_counts: Self::host_thread_counts(),
            stop: StopCondition::Duration(Duration::from_secs(5)),
            mixes: vec![
                WorkloadMix::UPDATE_HEAVY,
                WorkloadMix::BALANCED,
                WorkloadMix::READ_HEAVY,
            ],
            signal_cost_ns: 2_000,
        }
    }

    /// SMR configuration sized for a given maximum thread count.
    pub fn smr_config(&self, threads: usize) -> SmrConfig {
        SmrConfig::default()
            .with_max_threads((threads + 4).max(8))
            .with_watermarks(1024, 256)
            .with_signal_cost_ns(self.signal_cost_ns)
    }

    fn spec(&self, mix: WorkloadMix, key_range: u64, threads: usize) -> WorkloadSpec {
        WorkloadSpec::new(mix, key_range, threads, self.stop)
    }
}

/// Runs one (structure, reclaimer set) throughput sweep: every mix × thread
/// count × reclaimer.
fn throughput_sweep<F: DsFamily>(
    scale: &ExperimentScale,
    key_range: u64,
    kinds: &[SmrKind],
) -> Vec<TrialResult> {
    let mut out = Vec::new();
    for &mix in &scale.mixes {
        for &threads in &scale.thread_counts {
            for &kind in kinds {
                let spec = scale.spec(mix, key_range, threads);
                out.push(run_with::<F>(kind, &spec, scale.smr_config(threads)));
            }
        }
    }
    out
}

/// E1 (Figure 3a): DGT tree throughput.
pub fn e1_dgt_throughput(scale: &ExperimentScale) -> Vec<TrialResult> {
    throughput_sweep::<DgtTreeFamily>(scale, scale.tree_key_range, SmrKind::e1_set())
}

/// E1 (Figure 3b): lazy-list throughput.
pub fn e1_lazylist_throughput(scale: &ExperimentScale) -> Vec<TrialResult> {
    throughput_sweep::<LazyListFamily>(scale, scale.list_key_range, SmrKind::e1_set())
}

/// E2 (Figures 4c / 4d): peak memory of the DGT tree under an update-heavy
/// workload, with or without one stalled thread.
pub fn e2_peak_memory(scale: &ExperimentScale, stalled: bool) -> Vec<TrialResult> {
    let threads = scale
        .thread_counts
        .iter()
        .copied()
        .max()
        .unwrap_or(2)
        .max(2);
    let mut out = Vec::new();
    for &kind in SmrKind::e1_set() {
        let spec = scale
            .spec(WorkloadMix::UPDATE_HEAVY, scale.tree_key_range, threads)
            .with_stalled_thread(stalled);
        out.push(run_with::<DgtTreeFamily>(
            kind,
            &spec,
            scale.smr_config(threads + 1),
        ));
    }
    out
}

/// E3 (Figure 4a): (a,b)-tree throughput at a large and a tiny key range
/// (low vs. high contention), NBR+ / NBR / DEBRA / none.
pub fn e3_abtree_contention(scale: &ExperimentScale) -> Vec<TrialResult> {
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Leaky,
    ];
    let mut out = Vec::new();
    for &key_range in &[scale.tree_key_range, scale.small_key_range] {
        for &threads in &scale.thread_counts {
            for &kind in &kinds {
                let spec = scale.spec(WorkloadMix::UPDATE_HEAVY, key_range, threads);
                out.push(run_with::<AbTreeFamily>(
                    kind,
                    &spec,
                    scale.smr_config(threads),
                ));
            }
        }
    }
    out
}

/// E4 (Figure 4b): the cost of forcing the Harris-Michael list to restart from
/// the root. Compares NBR+ (restart variant), DEBRA on the restart variant
/// ("debra-restarts"), DEBRA on the original ("debra-norestarts"), and none.
pub fn e4_hmlist_restarts(scale: &ExperimentScale) -> Vec<TrialResult> {
    let mut out = Vec::new();
    for &key_range in &[scale.list_key_range, scale.small_key_range] {
        for &threads in &scale.thread_counts {
            let spec = scale.spec(WorkloadMix::UPDATE_HEAVY, key_range, threads);
            let cfg = scale.smr_config(threads);
            out.push(run_with::<HmListRestartFamily>(
                SmrKind::NbrPlus,
                &spec,
                cfg.clone(),
            ));
            out.push(run_with::<HmListRestartFamily>(
                SmrKind::Debra,
                &spec,
                cfg.clone(),
            ));
            out.push(run_with::<HmListNoRestartFamily>(
                SmrKind::Debra,
                &spec,
                cfg.clone(),
            ));
            out.push(run_with::<HmListRestartFamily>(SmrKind::Leaky, &spec, cfg));
        }
    }
    out
}

/// Figure 5: DGT tree throughput across key-range sizes (appendix).
pub fn fig5_dgt_sizes(scale: &ExperimentScale, sizes: &[u64]) -> Vec<TrialResult> {
    let mut out = Vec::new();
    for &size in sizes {
        out.extend(throughput_sweep::<DgtTreeFamily>(
            scale,
            size,
            SmrKind::e1_set(),
        ));
    }
    out
}

/// Figure 6: lazy-list throughput across small key-range sizes (appendix).
pub fn fig6_lazylist_sizes(scale: &ExperimentScale, sizes: &[u64]) -> Vec<TrialResult> {
    let mut out = Vec::new();
    for &size in sizes {
        out.extend(throughput_sweep::<LazyListFamily>(
            scale,
            size,
            SmrKind::e1_set(),
        ));
    }
    out
}

/// Figure 7: Harris-list throughput across key-range sizes (appendix, E3
/// extension).
pub fn fig7_harris_sizes(scale: &ExperimentScale, sizes: &[u64]) -> Vec<TrialResult> {
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Leaky,
    ];
    let mut out = Vec::new();
    for &size in sizes {
        out.extend(throughput_sweep::<HarrisListFamily>(scale, size, &kinds));
    }
    out
}

/// Figure 8: (a,b)-tree throughput across key-range sizes (appendix, E3
/// extension).
pub fn fig8_abtree_sizes(scale: &ExperimentScale, sizes: &[u64]) -> Vec<TrialResult> {
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Leaky,
    ];
    let mut out = Vec::new();
    for &size in sizes {
        out.extend(throughput_sweep::<AbTreeFamily>(scale, size, &kinds));
    }
    out
}

/// Ablation (Section 5): NBR vs NBR+ signal traffic for the same workload.
/// The paper's motivation for NBR+ is the O(n²) → O(n) reduction in signals;
/// this runs both on the DGT tree and reports signals sent and records freed
/// so the signals-per-free ratio can be compared.
pub fn ablation_signal_counts(scale: &ExperimentScale) -> Vec<TrialResult> {
    let mut out = Vec::new();
    let threads = scale.thread_counts.iter().copied().max().unwrap_or(2);
    for &kind in &[SmrKind::Nbr, SmrKind::NbrPlus] {
        let spec = scale.spec(WorkloadMix::UPDATE_HEAVY, scale.tree_key_range, threads);
        // Stretch the op-exit heartbeat past the watermark cycle (1024
        // retires) for this ablation: the default 1024-op heartbeat
        // broadcasts every ~512 retires, which keeps every bag below the
        // HiWatermark and replaces Algorithm 2's watermark dynamics — the
        // piggyback path NBR+ exists to measure then never engages at all
        // (rgp_reclaims flatlines at zero). The heartbeat is this port's
        // own short-trial addition, not the paper's; the ablation should
        // measure the paper's reclamation dynamics.
        let config = scale.smr_config(threads).with_scan_heartbeat_ops(8192);
        out.push(run_with::<DgtTreeFamily>(kind, &spec, config));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_the_ablation() {
        let scale = ExperimentScale::smoke();
        let results = ablation_signal_counts(&scale);
        assert_eq!(results.len(), 2);
        let nbr = &results[0];
        let plus = &results[1];
        assert_eq!(nbr.smr, "NBR");
        assert_eq!(plus.smr, "NBR+");
        assert!(nbr.total_ops > 0 && plus.total_ops > 0);
    }

    #[test]
    fn smoke_scale_runs_e4() {
        let scale = ExperimentScale::smoke();
        let results = e4_hmlist_restarts(&scale);
        // 2 key ranges × 1 thread count × 4 configurations.
        assert_eq!(results.len(), 8);
        assert!(results.iter().any(|r| r.ds == "hm-list-norestart"));
        assert!(results.iter().any(|r| r.ds == "hm-list-restart"));
    }

    #[test]
    fn host_thread_counts_are_sorted_unique() {
        let counts = ExperimentScale::host_thread_counts();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(counts, sorted);
        assert!(!counts.is_empty());
    }
}
