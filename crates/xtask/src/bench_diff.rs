//! `bench-diff` — compare two `BENCH_*.json` trajectory documents.
//!
//! ```text
//! cargo run -p xtask -- bench-diff <baseline.json> <new.json> [--threshold 0.95]
//! ```
//!
//! Both files are outputs of the `throughput` bin: line-oriented cell arrays
//! where each cell carries `"key":"..."` and `"mops":<f64>` (and, since the
//! telemetry layer landed, `"op_p99_ns":<u64>`). Cells are matched by key;
//! the report lists per-cell speedups (new / baseline) worst-first, then the
//! worst / median / geometric-mean summary. With `--threshold t`, exits
//! non-zero when any matched cell's speedup falls below `t` — the regression
//! gate used both by CI and by the telemetry-overhead A/B
//! (`throughput` vs `throughput --no-telemetry`).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed cell: throughput plus the optional op-latency p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSample {
    pub mops: f64,
    pub op_p99_ns: Option<u64>,
}

/// Extracts the cells of a `throughput` JSON document. Line-oriented by the
/// emitter's construction — no full JSON parser needed (same contract as the
/// `--baseline` parser inside the `throughput` bin).
pub fn parse_cells(text: &str) -> BTreeMap<String, CellSample> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(key) = extract_str(line, "\"key\":\"") else {
            continue;
        };
        let Some(mops) = extract_num(line, "\"mops\":") else {
            continue;
        };
        let op_p99_ns = extract_num(line, "\"op_p99_ns\":").map(|v| v as u64);
        out.insert(key, CellSample { mops, op_p99_ns });
    }
    out
}

fn extract_str(line: &str, tag: &str) -> Option<String> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, tag: &str) -> Option<f64> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One row of the diff: a key matched in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    pub key: String,
    pub base_mops: f64,
    pub new_mops: f64,
    pub speedup: f64,
    pub base_p99: Option<u64>,
    pub new_p99: Option<u64>,
}

/// Joins two cell maps on key and computes per-cell speedups, worst first.
pub fn diff(
    base: &BTreeMap<String, CellSample>,
    new: &BTreeMap<String, CellSample>,
) -> Vec<DiffRow> {
    let mut rows: Vec<DiffRow> = new
        .iter()
        .filter_map(|(key, n)| {
            let b = base.get(key)?;
            if b.mops <= 0.0 {
                return None;
            }
            Some(DiffRow {
                key: key.clone(),
                base_mops: b.mops,
                new_mops: n.mops,
                speedup: n.mops / b.mops,
                base_p99: b.op_p99_ns,
                new_p99: n.op_p99_ns,
            })
        })
        .collect();
    rows.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap());
    rows
}

/// Summary statistics over the matched rows: (worst, median, geometric mean).
/// `None` when nothing matched.
pub fn summarize(rows: &[DiffRow]) -> Option<(f64, f64, f64)> {
    if rows.is_empty() {
        return None;
    }
    // Rows are sorted ascending by construction.
    let worst = rows[0].speedup;
    let median = rows[rows.len() / 2].speedup;
    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    Some((worst, median, geomean))
}

/// Renders the diff as a markdown table plus the summary line.
pub fn render(rows: &[DiffRow], base_name: &str, new_name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### bench-diff: {new_name} vs {base_name}");
    let _ = writeln!(
        out,
        "| cell | base Mops/s | new Mops/s | speedup | base p99 ns | new p99 ns |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let fmt_p99 = |p: Option<u64>| p.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "| {} | {:.3} | {:.3} | {:.3}x | {} | {} |",
            r.key,
            r.base_mops,
            r.new_mops,
            r.speedup,
            fmt_p99(r.base_p99),
            fmt_p99(r.new_p99),
        );
    }
    if let Some((worst, median, geomean)) = summarize(rows) {
        let _ = writeln!(
            out,
            "\n{} cells matched; worst {:.3}x, median {:.3}x, geomean {:.3}x",
            rows.len(),
            worst,
            median,
            geomean
        );
    } else {
        let _ = writeln!(
            out,
            "\nno cell keys matched — were the two runs taken with the same \
             --threads / key ranges / distribution?"
        );
    }
    out
}

/// Entry point for `cargo run -p xtask -- bench-diff`.
pub fn run(args: &mut impl Iterator<Item = String>) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut threshold: Option<f64> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--threshold requires a value");
                    std::process::exit(2);
                });
                threshold = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--threshold: {e}");
                    std::process::exit(2);
                }));
            }
            other => files.push(other.to_string()),
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        eprintln!(
            "usage: cargo run -p xtask -- bench-diff <baseline.json> <new.json> [--threshold 0.95]"
        );
        return ExitCode::FAILURE;
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("read {p}: {e}");
            std::process::exit(2);
        })
    };
    let base = parse_cells(&read(base_path));
    let new = parse_cells(&read(new_path));
    let rows = diff(&base, &new);
    print!("{}", render(&rows, base_path, new_path));
    if rows.is_empty() {
        // A diff that compared nothing must not pass a threshold gate.
        return if threshold.is_some() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if let Some(t) = threshold {
        let (worst, _, _) = summarize(&rows).expect("rows is non-empty");
        if worst < t {
            let below = rows.iter().filter(|r| r.speedup < t).count();
            eprintln!("FAIL: {below} cell(s) below the {t:.2}x threshold (worst {worst:.3}x)");
            return ExitCode::FAILURE;
        }
        eprintln!("OK: every matched cell is at or above {t:.2}x");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cells: &[(&str, f64, Option<u64>)]) -> String {
        let mut s = String::from("{\n  \"cells\": [\n");
        for (k, m, p) in cells {
            s.push_str(&format!("    {{\"key\":\"{k}\",\"mops\":{m:.4}"));
            if let Some(p) = p {
                s.push_str(&format!(",\"op_p99_ns\":{p}"));
            }
            s.push_str("},\n");
        }
        s.push_str("  ]\n}\n");
        s
    }

    #[test]
    fn parses_cells_with_and_without_percentiles() {
        let text = doc(&[("a|r200|t4", 1.5, Some(900)), ("b|r200|t4", 0.5, None)]);
        let cells = parse_cells(&text);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells["a|r200|t4"].op_p99_ns, Some(900));
        assert_eq!(cells["b|r200|t4"].op_p99_ns, None);
        assert!((cells["b|r200|t4"].mops - 0.5).abs() < 1e-9);
    }

    #[test]
    fn diff_matches_keys_and_sorts_worst_first() {
        let base = parse_cells(&doc(&[
            ("fast", 1.0, None),
            ("slow", 1.0, None),
            ("only-in-base", 1.0, None),
        ]));
        let new = parse_cells(&doc(&[
            ("fast", 2.0, None),
            ("slow", 0.5, None),
            ("only-in-new", 9.0, None),
        ]));
        let rows = diff(&base, &new);
        assert_eq!(rows.len(), 2, "unmatched keys are dropped");
        assert_eq!(rows[0].key, "slow");
        assert!((rows[0].speedup - 0.5).abs() < 1e-9);
        assert_eq!(rows[1].key, "fast");
    }

    #[test]
    fn summary_reports_worst_median_geomean() {
        let base = parse_cells(&doc(&[
            ("a", 1.0, None),
            ("b", 1.0, None),
            ("c", 1.0, None),
        ]));
        let new = parse_cells(&doc(&[
            ("a", 0.8, None),
            ("b", 1.0, None),
            ("c", 1.25, None),
        ]));
        let rows = diff(&base, &new);
        let (worst, median, geomean) = summarize(&rows).unwrap();
        assert!((worst - 0.8).abs() < 1e-9);
        assert!((median - 1.0).abs() < 1e-9);
        assert!((geomean - 1.0).abs() < 1e-9, "0.8 * 1.0 * 1.25 = 1.0");
    }

    #[test]
    fn zero_baseline_cells_are_skipped() {
        let base = parse_cells(&doc(&[("z", 0.0, None)]));
        let new = parse_cells(&doc(&[("z", 1.0, None)]));
        assert!(diff(&base, &new).is_empty());
    }

    #[test]
    fn render_includes_summary_and_percentiles() {
        let base = parse_cells(&doc(&[("k", 1.0, Some(1000))]));
        let new = parse_cells(&doc(&[("k", 1.1, Some(1100))]));
        let rows = diff(&base, &new);
        let text = render(&rows, "old.json", "new.json");
        assert!(text.contains("| k | 1.000 | 1.100 | 1.100x | 1000 | 1100 |"));
        assert!(text.contains("1 cells matched"));
    }
}
