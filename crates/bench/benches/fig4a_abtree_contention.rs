//! Figure 4a (experiment E3): (a,b)-tree throughput at a large key range (low
//! contention) and at a tiny key range of 200 (high contention, every
//! operation restarts from the root frequently), for NBR+, NBR, DEBRA and the
//! leaky baseline. The paper's expectation: NBR+ ≥ DEBRA at low contention and
//! comparable at high contention — i.e. restarting from the root costs little.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::AbTreeFamily;
use smr_harness::{SmrKind, WorkloadMix};

fn bench_fig4a(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    let kinds = [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Leaky,
    ];
    for (key_range, label) in [(65_536u64, "range64k"), (200u64, "range200")] {
        // One prefilled tree per reclaimer, shared across every Criterion
        // sample of this size group (the 32 K-key prefill per sample was the
        // bulk of the group's wall-clock).
        let runners = helpers::prefilled_runners_for::<AbTreeFamily>(&kinds, key_range, threads);
        let mut group = c.benchmark_group(format!("fig4a_abtree_{label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for (kind, runner) in &runners {
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter_custom(|iters| {
                    let spec = helpers::spec_for_iters(
                        WorkloadMix::UPDATE_HEAVY,
                        key_range,
                        threads,
                        iters,
                    );
                    runner.run(&spec).duration
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
