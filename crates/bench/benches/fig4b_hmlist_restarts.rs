//! Figure 4b (experiment E4): the cost of forcing the Harris-Michael list to
//! restart from the root after auxiliary unlinks. Four configurations, as in
//! the paper: NBR+ on the restart variant, DEBRA on the restart variant
//! ("debra-restarts"), DEBRA on the original list ("debra-norestarts"), and
//! the leaky baseline on the restart variant.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::{HmListNoRestartFamily, HmListRestartFamily};
use smr_harness::{run_with, SmrKind, WorkloadMix};

fn bench_fig4b(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    for (key_range, label) in [(2_048u64, "range2k"), (200u64, "range200")] {
        let mut group = c.benchmark_group(format!("fig4b_hmlist_{label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));

        group.bench_function("nbr+-restarts", |b| {
            b.iter_custom(|iters| {
                let spec =
                    helpers::spec_for_iters(WorkloadMix::UPDATE_HEAVY, key_range, threads, iters);
                run_with::<HmListRestartFamily>(SmrKind::NbrPlus, &spec, helpers::bench_config())
                    .duration
            });
        });
        group.bench_function("debra-restarts", |b| {
            b.iter_custom(|iters| {
                let spec =
                    helpers::spec_for_iters(WorkloadMix::UPDATE_HEAVY, key_range, threads, iters);
                run_with::<HmListRestartFamily>(SmrKind::Debra, &spec, helpers::bench_config())
                    .duration
            });
        });
        group.bench_function("debra-norestarts", |b| {
            b.iter_custom(|iters| {
                let spec =
                    helpers::spec_for_iters(WorkloadMix::UPDATE_HEAVY, key_range, threads, iters);
                run_with::<HmListNoRestartFamily>(SmrKind::Debra, &spec, helpers::bench_config())
                    .duration
            });
        });
        group.bench_function("none-restarts", |b| {
            b.iter_custom(|iters| {
                let spec =
                    helpers::spec_for_iters(WorkloadMix::UPDATE_HEAVY, key_range, threads, iters);
                run_with::<HmListRestartFamily>(SmrKind::Leaky, &spec, helpers::bench_config())
                    .duration
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fig4b);
criterion_main!(benches);
