//! Epoch-stamped per-thread lookup memo for Zipf-hot `contains` calls.
//!
//! A skewed read-mostly workload (the paper's Zipf(0.99) distribution) sends
//! most lookups to a handful of keys, and every one of them pays a full
//! traversal. This module caches `(structure, key) → node pointer` in a small
//! **thread-local direct-mapped table**, stamped with the reclaimer clock
//! value [`Smr::validation_stamp`](smr_common::Smr::validation_stamp)
//! returned when the entry was recorded. A later lookup whose current stamp
//! equals the recorded one may dereference the cached pointer without
//! re-traversing: by the stamp contract, no record retired at or after the
//! recorded era has been freed in between, and the node was observed
//! *unmarked* (hence not yet retired) when it was recorded — so the memory
//! is still a node, and one mark-bit + key check re-establishes presence.
//!
//! Any mismatch — wrong structure, wrong key, stale stamp, marked node,
//! recycled key — falls back to the ordinary traversal, which refreshes the
//! entry. Schemes whose clock cannot support the argument (the interval,
//! hazard and phase families) return `None` from `validation_stamp` and the
//! memo is bypassed entirely; see DESIGN.md, "Memo validation against the
//! reclaimer clock".
//!
//! The table is thread-local and never shared, so there is no coherence
//! traffic and no synchronization on the hit path. Entries are tagged with a
//! per-structure-instance `memo_id` (from a process-global counter, never
//! reused) so a table outliving a structure can never serve its stale
//! pointers to a new one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of direct-mapped slots per thread. Power of two; sized to cover
/// the hot set of a Zipf(0.99) key distribution while keeping the table a
/// few cache lines.
pub const MEMO_SLOTS: usize = 64;

/// One direct-mapped entry. `memo_id == 0` means empty.
#[derive(Clone, Copy)]
struct Entry {
    memo_id: u64,
    key: u64,
    addr: usize,
    stamp: u64,
}

const EMPTY: Entry = Entry {
    memo_id: 0,
    key: 0,
    addr: 0,
    stamp: 0,
};

thread_local! {
    static TABLE: RefCell<[Entry; MEMO_SLOTS]> = const { RefCell::new([EMPTY; MEMO_SLOTS]) };
}

/// Process-global structure-instance counter. Starts at 1 so 0 can mean
/// "empty slot"; monotonically increasing, never reused.
static NEXT_MEMO_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh memo identity for one structure instance.
pub fn next_memo_id() -> u64 {
    NEXT_MEMO_ID.fetch_add(1, Ordering::Relaxed)
}

#[inline]
fn slot(key: u64) -> usize {
    (key as usize) & (MEMO_SLOTS - 1)
}

/// Returns the cached node address for `(memo_id, key)` if the entry exists
/// and its recorded stamp equals `stamp`. The caller still owns the
/// re-validation of the node itself (mark bit + key); a hit here only
/// certifies that dereferencing the address is as safe as it was when the
/// entry was stored.
#[inline]
pub fn lookup(memo_id: u64, key: u64, stamp: u64) -> Option<usize> {
    TABLE.with(|t| {
        let e = t.borrow()[slot(key)];
        (e.memo_id == memo_id && e.key == key && e.stamp == stamp).then_some(e.addr)
    })
}

/// Records `(memo_id, key) → addr` at `stamp`, evicting whatever occupied
/// the slot. Only call with a node that was observed **unmarked** under the
/// operation whose validation stamp is `stamp`.
#[inline]
pub fn store(memo_id: u64, key: u64, addr: usize, stamp: u64) {
    TABLE.with(|t| {
        t.borrow_mut()[slot(key)] = Entry {
            memo_id,
            key,
            addr,
            stamp,
        };
    });
}

/// Drops the entry for `(memo_id, key)` if present — the eager invalidation
/// a `remove` performs on its own key so this thread's next lookup does not
/// waste a validation on a node it just deleted.
#[inline]
pub fn invalidate(memo_id: u64, key: u64) {
    TABLE.with(|t| {
        let mut table = t.borrow_mut();
        let e = &mut table[slot(key)];
        if e.memo_id == memo_id && e.key == key {
            *e = EMPTY;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_requires_exact_stamp() {
        let id = next_memo_id();
        store(id, 7, 0xDEAD_B000, 3);
        assert_eq!(lookup(id, 7, 3), Some(0xDEAD_B000));
        assert_eq!(lookup(id, 7, 4), None, "stale stamp must miss");
        assert_eq!(
            lookup(id, 7 + MEMO_SLOTS as u64, 3),
            None,
            "slot collision must miss"
        );
    }

    #[test]
    fn memo_ids_partition_structures() {
        let a = next_memo_id();
        let b = next_memo_id();
        store(a, 9, 0x1000, 1);
        assert_eq!(lookup(b, 9, 1), None, "another structure's entry must miss");
        store(b, 9, 0x2000, 1);
        assert_eq!(lookup(a, 9, 1), None, "direct-mapped slot was evicted");
        assert_eq!(lookup(b, 9, 1), Some(0x2000));
    }

    #[test]
    fn invalidate_is_scoped_to_the_owner() {
        let a = next_memo_id();
        let b = next_memo_id();
        store(a, 5, 0x3000, 2);
        invalidate(b, 5);
        assert_eq!(
            lookup(a, 5, 2),
            Some(0x3000),
            "foreign invalidate is a no-op"
        );
        invalidate(a, 5);
        assert_eq!(lookup(a, 5, 2), None);
    }
}
