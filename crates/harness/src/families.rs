//! Runtime dispatch over the statically-typed (reclaimer × data structure)
//! matrix.
//!
//! Data structures are generic over `S: Smr` and monomorphized per reclaimer;
//! the experiment runners, however, want to iterate "for every reclaimer the
//! paper compares". [`SmrKind`] names each reclaimer and
//! [`run_with`] dispatches one trial to the right monomorphization of
//! [`run_trial`](crate::driver::run_trial) for a given [`DsFamily`].

use crate::driver::{
    build_and_prefill, run_trial, run_trial_on, Buildable, HmListNoRestart, TrialResult,
};
use crate::workload::WorkloadSpec;
use conc_ds::{AbTree, DgtTree, HarrisList, HmHashMap, HmList, LazyList};
use nbr::{Nbr, NbrPlus};
use smr_baselines::{Debra, HazardEras, HazardPointers, Ibr, Leaky, Qsbr, Rcu, Wfe};
use smr_common::{Smr, SmrConfig};
use smr_pop::{EpochPop, HpPop};
use std::marker::PhantomData;
use std::sync::Arc;

/// The reclamation algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmrKind {
    /// NBR+ (Algorithm 2) — the paper's primary contribution.
    NbrPlus,
    /// NBR (Algorithm 1).
    Nbr,
    /// DEBRA-style epoch-based reclamation.
    Debra,
    /// Quiescent-state-based reclamation.
    Qsbr,
    /// RCU-style epoch reclamation.
    Rcu,
    /// Hazard pointers.
    Hp,
    /// Interval-based reclamation (2GEIBR).
    Ibr,
    /// Hazard eras.
    He,
    /// Wait-free eras (robust: bounded garbage under stalled threads).
    Wfe,
    /// Publish-on-Ping epoch reclamation (private epoch reservations,
    /// published on ping over the cooperative channel).
    EpochPop,
    /// Publish-on-Ping hazard pointers (private per-hop slots, published on
    /// ping over the cooperative channel).
    HpPop,
    /// No reclamation (leaky upper bound).
    Leaky,
}

impl SmrKind {
    /// The label used in benchmark output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SmrKind::NbrPlus => "NBR+",
            SmrKind::Nbr => "NBR",
            SmrKind::Debra => "DEBRA",
            SmrKind::Qsbr => "QSBR",
            SmrKind::Rcu => "RCU",
            SmrKind::Hp => "HP",
            SmrKind::Ibr => "IBR",
            SmrKind::He => "HE",
            SmrKind::Wfe => "WFE",
            SmrKind::EpochPop => "EpochPOP",
            SmrKind::HpPop => "HP-POP",
            SmrKind::Leaky => "none",
        }
    }

    /// The full set compared in experiment E1 (Figure 3).
    pub fn e1_set() -> &'static [SmrKind] {
        &[
            SmrKind::NbrPlus,
            SmrKind::Debra,
            SmrKind::Qsbr,
            SmrKind::Rcu,
            SmrKind::Ibr,
            SmrKind::Hp,
            SmrKind::Leaky,
        ]
    }

    /// Every implemented reclaimer (E1 set plus NBR, HE, WFE and the
    /// Publish-on-Ping family).
    pub fn all() -> &'static [SmrKind] {
        &[
            SmrKind::NbrPlus,
            SmrKind::Nbr,
            SmrKind::Debra,
            SmrKind::Qsbr,
            SmrKind::Rcu,
            SmrKind::Ibr,
            SmrKind::He,
            SmrKind::Wfe,
            SmrKind::Hp,
            SmrKind::EpochPop,
            SmrKind::HpPop,
            SmrKind::Leaky,
        ]
    }

    /// Parses a label (as printed by [`SmrKind::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::all()
            .iter()
            .copied()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }
}

/// A family of data structures: one generic definition instantiable with any
/// reclaimer.
pub trait DsFamily {
    /// The concrete structure for reclaimer `S`.
    type Ds<S: Smr>: Buildable<S> + Send + Sync;
    /// Family label used in reports.
    fn label() -> &'static str;
}

/// The lazy list (LL05).
pub struct LazyListFamily;
impl DsFamily for LazyListFamily {
    type Ds<S: Smr> = LazyList<S>;
    fn label() -> &'static str {
        "lazy-list"
    }
}

/// The Harris lock-free list (HL01).
pub struct HarrisListFamily;
impl DsFamily for HarrisListFamily {
    type Ds<S: Smr> = HarrisList<S>;
    fn label() -> &'static str {
        "harris-list"
    }
}

/// The Harris-Michael list modified to restart from the root (E4).
pub struct HmListRestartFamily;
impl DsFamily for HmListRestartFamily {
    type Ds<S: Smr> = HmList<S>;
    fn label() -> &'static str {
        "hm-list-restart"
    }
}

/// The original Harris-Michael list (E4's "norestarts" baseline).
pub struct HmListNoRestartFamily;
impl DsFamily for HmListNoRestartFamily {
    type Ds<S: Smr> = HmListNoRestart<S>;
    fn label() -> &'static str {
        "hm-list-norestart"
    }
}

/// The DGT external BST (E1 trees, E2).
pub struct DgtTreeFamily;
impl DsFamily for DgtTreeFamily {
    type Ds<S: Smr> = DgtTree<S>;
    fn label() -> &'static str {
        "dgt-tree"
    }
}

/// The (a,b)-tree (E3; substitution S3 for Brown's ABTree).
pub struct AbTreeFamily;
impl DsFamily for AbTreeFamily {
    type Ds<S: Smr> = AbTree<S>;
    fn label() -> &'static str {
        "ab-tree"
    }
}

/// The fixed-size hash map of Harris-Michael-list buckets (HMLHT).
pub struct HmHashMapFamily;
impl DsFamily for HmHashMapFamily {
    type Ds<S: Smr> = HmHashMap<S>;
    fn label() -> &'static str {
        "hm-hashmap"
    }
}

/// Runs one trial of `spec` for data-structure family `F` under the reclaimer
/// named by `kind`.
pub fn run_with<F: DsFamily>(kind: SmrKind, spec: &WorkloadSpec, config: SmrConfig) -> TrialResult {
    match kind {
        SmrKind::NbrPlus => run_trial::<NbrPlus, F::Ds<NbrPlus>>(spec, config),
        SmrKind::Nbr => run_trial::<Nbr, F::Ds<Nbr>>(spec, config),
        SmrKind::Debra => run_trial::<Debra, F::Ds<Debra>>(spec, config),
        SmrKind::Qsbr => run_trial::<Qsbr, F::Ds<Qsbr>>(spec, config),
        SmrKind::Rcu => run_trial::<Rcu, F::Ds<Rcu>>(spec, config),
        SmrKind::Hp => run_trial::<HazardPointers, F::Ds<HazardPointers>>(spec, config),
        SmrKind::Ibr => run_trial::<Ibr, F::Ds<Ibr>>(spec, config),
        SmrKind::He => run_trial::<HazardEras, F::Ds<HazardEras>>(spec, config),
        SmrKind::Wfe => run_trial::<Wfe, F::Ds<Wfe>>(spec, config),
        SmrKind::EpochPop => run_trial::<EpochPop, F::Ds<EpochPop>>(spec, config),
        SmrKind::HpPop => run_trial::<HpPop, F::Ds<HpPop>>(spec, config),
        SmrKind::Leaky => run_trial::<Leaky, F::Ds<Leaky>>(spec, config),
    }
}

/// A prefilled (reclaimer × structure) instance that can run the measured
/// portion of many trials — the type-erased handle benchmark matrices hold so
/// one prefill is shared across operation mixes and Criterion samples.
pub trait PrefilledTrial: Send + Sync {
    /// Runs the measured portion of `spec` on the shared structure (no
    /// prefill — see [`run_trial_on`]).
    fn run(&self, spec: &WorkloadSpec) -> TrialResult;
}

struct Prefilled<S: Smr, DS: Buildable<S> + Send + Sync> {
    ds: Arc<DS>,
    _smr: PhantomData<fn() -> S>,
}

impl<S: Smr, DS: Buildable<S> + Send + Sync> PrefilledTrial for Prefilled<S, DS> {
    fn run(&self, spec: &WorkloadSpec) -> TrialResult {
        run_trial_on::<S, DS>(&self.ds, spec)
    }
}

/// Builds and prefills one structure of family `F` under the reclaimer named
/// by `kind`, returning a reusable trial runner. `spec` supplies the key
/// range, prefill size and thread count used for the prefill phase.
pub fn build_prefilled<F: DsFamily>(
    kind: SmrKind,
    spec: &WorkloadSpec,
    config: SmrConfig,
) -> Box<dyn PrefilledTrial> {
    fn mk<S: Smr, DS: Buildable<S> + Send + Sync>(
        spec: &WorkloadSpec,
        config: SmrConfig,
    ) -> Box<dyn PrefilledTrial> {
        Box::new(Prefilled::<S, DS> {
            ds: build_and_prefill::<S, DS>(spec, config),
            _smr: PhantomData,
        })
    }
    match kind {
        SmrKind::NbrPlus => mk::<NbrPlus, F::Ds<NbrPlus>>(spec, config),
        SmrKind::Nbr => mk::<Nbr, F::Ds<Nbr>>(spec, config),
        SmrKind::Debra => mk::<Debra, F::Ds<Debra>>(spec, config),
        SmrKind::Qsbr => mk::<Qsbr, F::Ds<Qsbr>>(spec, config),
        SmrKind::Rcu => mk::<Rcu, F::Ds<Rcu>>(spec, config),
        SmrKind::Hp => mk::<HazardPointers, F::Ds<HazardPointers>>(spec, config),
        SmrKind::Ibr => mk::<Ibr, F::Ds<Ibr>>(spec, config),
        SmrKind::He => mk::<HazardEras, F::Ds<HazardEras>>(spec, config),
        SmrKind::Wfe => mk::<Wfe, F::Ds<Wfe>>(spec, config),
        SmrKind::EpochPop => mk::<EpochPop, F::Ds<EpochPop>>(spec, config),
        SmrKind::HpPop => mk::<HpPop, F::Ds<HpPop>>(spec, config),
        SmrKind::Leaky => mk::<Leaky, F::Ds<Leaky>>(spec, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{StopCondition, WorkloadMix};

    #[test]
    fn labels_parse_back() {
        for &k in SmrKind::all() {
            assert_eq!(SmrKind::parse(k.label()), Some(k));
        }
        assert_eq!(SmrKind::parse("nbr+"), Some(SmrKind::NbrPlus));
        assert_eq!(SmrKind::parse("unknown"), None);
    }

    #[test]
    fn e1_set_is_subset_of_all() {
        for k in SmrKind::e1_set() {
            assert!(SmrKind::all().contains(k));
        }
    }

    #[test]
    fn dispatch_runs_every_reclaimer_on_the_lazy_list() {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            128,
            2,
            StopCondition::TotalOps(4_000),
        )
        .with_prefill(64);
        let config = SmrConfig::default()
            .with_max_threads(8)
            .with_watermarks(128, 32);
        for &kind in SmrKind::all() {
            let r = run_with::<LazyListFamily>(kind, &spec, config.clone());
            assert_eq!(r.smr, kind.label(), "label mismatch for {kind:?}");
            assert!(r.total_ops >= 4_000);
        }
    }
}
