//! Tagged atomic pointers.
//!
//! Lock-free lists in the paper's evaluation (Harris list, Harris-Michael
//! list) steal the low bit of a node's `next` pointer as the *mark* ("logically
//! deleted") flag. [`Atomic<T>`]/[`Shared<T>`] provide that representation:
//! a `Shared<T>` is a word that packs an (aligned) `*mut T` and a small tag in
//! the low bits, and an `Atomic<T>` is its atomically updatable cell.
//!
//! Unlike `crossbeam_epoch::Atomic`, these types are *reclamation agnostic*:
//! they do not tie loads to a guard. Which loads are safe is governed by the
//! SMR protocol the data structure is instrumented with (see the
//! [`Smr`](crate::Smr) trait); this is exactly the discipline the paper's
//! C++ artifact uses.

use core::fmt;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicUsize, Ordering};

/// Number of low bits available for tags. Nodes are heap allocated and at
/// least 8-byte aligned in every data structure in this workspace, so two tag
/// bits are always available; we only ever use bit 0 (the Harris mark).
pub const TAG_BITS: usize = 2;
/// Mask selecting the tag bits of a packed word.
pub const TAG_MASK: usize = (1 << TAG_BITS) - 1;

/// A pointer-with-tag snapshot, as loaded from an [`Atomic<T>`].
///
/// `Shared` is `Copy` and carries no lifetime or guard: dereferencing it is
/// `unsafe` and is only sound while the governing SMR protocol protects the
/// pointee (read phase for NBR, hazard slot for HP, active epoch for EBR, …).
pub struct Shared<T> {
    data: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<T> {}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("ptr", &(self.untagged_usize() as *const T))
            .field("tag", &self.tag())
            .finish()
    }
}

impl<T> Default for Shared<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Shared<T> {
    /// The null pointer (tag 0).
    #[inline]
    pub const fn null() -> Self {
        Self {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Packs a raw pointer (tag 0). The pointer must be aligned to at least
    /// `1 << TAG_BITS` bytes (any heap-allocated node is).
    #[inline]
    pub fn from_raw(ptr: *mut T) -> Self {
        let data = ptr as usize;
        debug_assert_eq!(data & TAG_MASK, 0, "pointer not sufficiently aligned");
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a `Shared` from a packed word (pointer | tag).
    #[inline]
    pub fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// The packed word (pointer | tag).
    #[inline]
    pub fn into_usize(self) -> usize {
        self.data
    }

    /// The pointer portion as a usize (tag stripped).
    #[inline]
    pub fn untagged_usize(self) -> usize {
        self.data & !TAG_MASK
    }

    /// The pointer portion (tag stripped).
    #[inline]
    pub fn as_raw(self) -> *mut T {
        self.untagged_usize() as *mut T
    }

    /// The tag in the low bits.
    #[inline]
    pub fn tag(self) -> usize {
        self.data & TAG_MASK
    }

    /// Returns the same pointer with the given tag.
    #[inline]
    pub fn with_tag(self, tag: usize) -> Self {
        debug_assert!(tag <= TAG_MASK);
        Self {
            data: self.untagged_usize() | (tag & TAG_MASK),
            _marker: PhantomData,
        }
    }

    /// True if the pointer portion is null (regardless of tag).
    #[inline]
    pub fn is_null(self) -> bool {
        self.untagged_usize() == 0
    }

    /// Dereferences the (untagged) pointer.
    ///
    /// # Safety
    /// The pointee must be protected from reclamation by the governing SMR
    /// protocol for the duration of the borrow, and must not be null.
    #[inline]
    pub unsafe fn deref<'a>(self) -> &'a T {
        debug_assert!(!self.is_null());
        crate::check::assert_live(self.untagged_usize());
        &*self.as_raw()
    }

    /// Dereferences the (untagged) pointer, returning `None` when null.
    ///
    /// # Safety
    /// Same contract as [`Shared::deref`].
    #[inline]
    pub unsafe fn as_ref<'a>(self) -> Option<&'a T> {
        if self.is_null() {
            None
        } else {
            crate::check::assert_live(self.untagged_usize());
            Some(&*self.as_raw())
        }
    }

    /// Two `Shared`s point to the same record, ignoring tags.
    #[inline]
    pub fn ptr_eq(self, other: Self) -> bool {
        self.untagged_usize() == other.untagged_usize()
    }
}

/// An atomic cell holding a tagged pointer.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` is a word-sized atomic cell; the pointee is only ever
// touched through `Shared::deref`, whose own contract (caller-proved
// protection) carries the burden — so sharing the cell needs no more than
// `T: Send + Sync` for the access it can hand out.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above — `load`/`store`/`compare_exchange` are atomic.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}
// SAFETY: `Shared<T>` is a plain tagged pointer value; dereferencing it is
// its own unsafe contract, so the value may move between threads whenever
// `T` itself tolerates shared cross-thread access.
unsafe impl<T: Send + Sync> Send for Shared<T> {}
// SAFETY: as above — `Shared<T>` exposes no interior mutation of its own.
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = Shared::<T>::from_usize(self.data.load(Ordering::Relaxed));
        write!(f, "Atomic({:?})", s)
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Atomic<T> {
    /// A cell holding null.
    pub const fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// A cell holding `shared`.
    pub fn new(shared: Shared<T>) -> Self {
        Self {
            data: AtomicUsize::new(shared.into_usize()),
            _marker: PhantomData,
        }
    }

    /// A cell holding the given raw pointer (tag 0).
    pub fn from_raw(ptr: *mut T) -> Self {
        Self::new(Shared::from_raw(ptr))
    }

    /// Atomically loads the tagged pointer.
    #[inline]
    pub fn load(&self, order: Ordering) -> Shared<T> {
        crate::check::preempt("atomic.load", self as *const _ as usize);
        Shared::from_usize(self.data.load(order))
    }

    /// The raw atomic word backing this cell, for type-erased helper
    /// protocols (WFE parks the word's address on its help board so a
    /// fulfiller can load it without knowing `T` — and without the
    /// instrumentation preempt point of [`Atomic::load`], which must not
    /// fire inside a lock-held critical section under the deterministic
    /// explorer). The word's encoding is `Shared::into_usize`.
    #[inline]
    pub fn raw_word(&self) -> &AtomicUsize {
        &self.data
    }

    /// Atomically stores the tagged pointer.
    #[inline]
    pub fn store(&self, val: Shared<T>, order: Ordering) {
        crate::check::preempt("atomic.store", self as *const _ as usize);
        self.data.store(val.into_usize(), order);
    }

    /// Atomically swaps the tagged pointer, returning the previous value.
    #[inline]
    pub fn swap(&self, val: Shared<T>, order: Ordering) -> Shared<T> {
        crate::check::preempt("atomic.swap", self as *const _ as usize);
        Shared::from_usize(self.data.swap(val.into_usize(), order))
    }

    /// Compare-and-swap. On failure returns the actual current value.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        crate::check::preempt("atomic.cas", self as *const _ as usize);
        self.data
            .compare_exchange(current.into_usize(), new.into_usize(), success, failure)
            .map(Shared::from_usize)
            .map_err(Shared::from_usize)
    }

    /// Weak compare-and-swap (may fail spuriously); use in retry loops.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        crate::check::preempt("atomic.cas-weak", self as *const _ as usize);
        self.data
            .compare_exchange_weak(current.into_usize(), new.into_usize(), success, failure)
            .map(Shared::from_usize)
            .map_err(Shared::from_usize)
    }

    /// Atomically ORs tag bits into the word (e.g. setting the Harris mark).
    /// Returns the previous value.
    #[inline]
    pub fn fetch_or_tag(&self, tag: usize, order: Ordering) -> Shared<T> {
        crate::check::preempt("atomic.fetch-or-tag", self as *const _ as usize);
        Shared::from_usize(self.data.fetch_or(tag & TAG_MASK, order))
    }

    /// Consumes the cell, returning the held pointer.
    pub fn into_shared(self) -> Shared<T> {
        Shared::from_usize(self.data.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};

    #[test]
    fn null_roundtrip() {
        let s = Shared::<u64>::null();
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        assert!(s.as_raw().is_null());
        assert!(unsafe { s.as_ref() }.is_none());
    }

    #[test]
    fn tag_packing_roundtrip() {
        let b = Box::into_raw(Box::new(7u64));
        let s = Shared::from_raw(b);
        assert_eq!(s.tag(), 0);
        let m = s.with_tag(1);
        assert_eq!(m.tag(), 1);
        assert_eq!(m.as_raw(), b);
        assert!(m.ptr_eq(s));
        assert_ne!(m, s);
        assert_eq!(m.with_tag(0), s);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn null_with_tag_is_still_null() {
        let s = Shared::<u64>::null().with_tag(1);
        assert!(s.is_null());
        assert_eq!(s.tag(), 1);
    }

    #[test]
    fn atomic_load_store_swap() {
        let b = Box::into_raw(Box::new(1u64));
        let c = Box::into_raw(Box::new(2u64));
        let a = Atomic::from_raw(b);
        assert_eq!(a.load(Acquire).as_raw(), b);
        a.store(Shared::from_raw(c), Release);
        assert_eq!(a.load(Acquire).as_raw(), c);
        let old = a.swap(Shared::null(), AcqRel);
        assert_eq!(old.as_raw(), c);
        assert!(a.load(Relaxed).is_null());
        unsafe {
            drop(Box::from_raw(b));
            drop(Box::from_raw(c));
        }
    }

    #[test]
    fn atomic_cas_success_and_failure() {
        let b = Box::into_raw(Box::new(1u64));
        let c = Box::into_raw(Box::new(2u64));
        let a = Atomic::from_raw(b);
        let cur = a.load(Acquire);
        assert!(a
            .compare_exchange(cur, Shared::from_raw(c), SeqCst, Relaxed)
            .is_ok());
        // Second CAS with the stale expected value must fail and report the
        // actual current value.
        let err = a
            .compare_exchange(cur, Shared::null(), SeqCst, Relaxed)
            .unwrap_err();
        assert_eq!(err.as_raw(), c);
        unsafe {
            drop(Box::from_raw(b));
            drop(Box::from_raw(c));
        }
    }

    #[test]
    fn fetch_or_tag_marks_pointer() {
        let b = Box::into_raw(Box::new(5u64));
        let a = Atomic::from_raw(b);
        let prev = a.fetch_or_tag(1, SeqCst);
        assert_eq!(prev.tag(), 0);
        let now = a.load(Acquire);
        assert_eq!(now.tag(), 1);
        assert_eq!(now.as_raw(), b);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn deref_reads_pointee() {
        let b = Box::into_raw(Box::new(99u64));
        let s = Shared::from_raw(b).with_tag(1);
        assert_eq!(unsafe { *s.deref() }, 99);
        unsafe { drop(Box::from_raw(b)) };
    }
}
