//! The "none" reclaimer: retire is a no-op in the sense that nothing is ever
//! freed while the benchmark runs.
//!
//! The paper's evaluation includes a *leaky* configuration as the upper bound
//! on throughput — it pays no reclamation cost at all, at the price of
//! unbounded memory. To keep the test-suite and examples leak-free, retired
//! records are still tracked and destroyed when the reclaimer itself is
//! dropped (i.e. after every participating thread has finished), which costs
//! nothing on the hot path.

use crate::util::OrphanPool;
use smr_common::{
    BlockPool, LimboBag, Magazine, Retired, Shared, Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::Arc;

/// Per-thread context for [`Leaky`].
pub struct LeakyCtx {
    tid: usize,
    limbo: LimboBag,
    mag: Magazine,
    stats: ThreadStats,
}

/// The leaky ("none") reclaimer.
pub struct Leaky {
    config: SmrConfig,
    registry: smr_common::Registry,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
}

impl Smr for Leaky {
    type ThreadCtx = LeakyCtx;

    const NAME: &'static str = "none";

    fn new(config: SmrConfig) -> Self {
        config.validate();
        Self {
            registry: smr_common::Registry::new(config.max_threads),
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> LeakyCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        LeakyCtx {
            tid,
            limbo: LimboBag::with_batch(self.config.retire_batch_cap()),
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut LeakyCtx) {
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut LeakyCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut LeakyCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: nothing is ever swept here, so staging only
        // amortizes the segment pushes and peak-limbo bookkeeping.
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
    }

    #[inline]
    fn validation_stamp(&self, _ctx: &mut LeakyCtx) -> Option<u64> {
        // Trivially sound: the leaky reclaimer never frees during the run,
        // so any constant stamp validates.
        if self.config.memo {
            Some(0)
        } else {
            None
        }
    }

    fn thread_stats(&self, ctx: &LeakyCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut LeakyCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &LeakyCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for Leaky {
    fn drop(&mut self) {
        // SAFETY: the reclaimer outlives every registered thread's use of the
        // data structure by contract (it owns the orphaned records only after
        // their threads deregistered, and dropping it means the structure is
        // gone).
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn never_frees_during_operation() {
        let smr = Leaky::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..100 {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
        }
        assert_eq!(smr.thread_stats(&ctx).frees, 0);
        assert_eq!(smr.limbo_len(&ctx), 100);
        smr.unregister(&mut ctx);
        assert_eq!(
            smr.thread_stats(&ctx).frees,
            0,
            "unregister must not free either"
        );
    }

    #[test]
    fn drop_releases_everything() {
        let smr = Leaky::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..10 {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
        }
        smr.unregister(&mut ctx);
        drop(smr); // would be reported by leak checkers if it leaked
    }

    #[test]
    fn stats_track_retires() {
        let smr = Leaky::new(SmrConfig::for_tests());
        let mut ctx = smr.register(3);
        let p = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 0,
            },
        );
        unsafe { smr.retire(&mut ctx, p) };
        let s = smr.thread_stats(&ctx);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.retires, 1);
        assert_eq!(s.outstanding(), 1);
        smr.unregister(&mut ctx);
    }
}
