//! Figure 7 (appendix, E3 extension): Harris lock-free list throughput across
//! list sizes. At CI scale two sizes are swept (small = high contention,
//! larger = moderate); the full sweep (200 / 2 K / 20 K × three mixes) is
//! available via `cargo run -p nbr-bench --release --bin experiments -- --fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::HarrisListFamily;
use smr_harness::WorkloadMix;

fn bench_fig7(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    for (key_range, label) in [(200u64, "range200"), (2_048u64, "range2k")] {
        // One prefilled list per reclaimer, shared across every Criterion
        // sample of this size group.
        let runners = helpers::prefilled_runners::<HarrisListFamily>(key_range, threads);
        let mut group = c.benchmark_group(format!("fig7_harris_{label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for (kind, runner) in &runners {
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter_custom(|iters| {
                    let spec = helpers::spec_for_iters(
                        WorkloadMix::UPDATE_HEAVY,
                        key_range,
                        threads,
                        iters,
                    );
                    runner.run(&spec).duration
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
