//! # smr-baselines — the SMR algorithms NBR is compared against
//!
//! Reimplementations of the reclamation schemes used as baselines in the
//! paper's evaluation (Section 7), all behind the common
//! [`Smr`](smr_common::Smr) trait so every data structure in `conc-ds` can be
//! run against every reclaimer:
//!
//! | name | module | family | bounded garbage? |
//! |---|---|---|---|
//! | `DEBRA` | [`debra`] | epoch-based (fastest EBR) | no |
//! | `QSBR` | [`qsbr`] | quiescent-state-based | no |
//! | `RCU` | [`rcu`] | epoch/era read-side critical sections | no |
//! | `HP` | [`hazard`] | hazard pointers | yes |
//! | `IBR` | [`ibr`] | interval-based (2GEIBR) | yes |
//! | `HE` | [`hazard_eras`] | hazard eras | yes |
//! | `WFE` | [`wfe`] | wait-free eras (robust: bounded under stall) | yes |
//! | `none` | [`leaky`] | no reclamation (throughput upper bound) | n/a |
//!
//! The NBR and NBR+ algorithms themselves live in the `nbr` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod debra;
pub mod hazard;
pub mod hazard_eras;
pub mod ibr;
pub mod leaky;
pub mod qsbr;
pub mod rcu;
pub mod util;
pub mod wfe;

pub use debra::{Debra, DebraCtx};
pub use hazard::{HazardPointers, HpCtx};
pub use hazard_eras::{HazardEras, HeCtx};
pub use ibr::{Ibr, IbrCtx};
pub use leaky::{Leaky, LeakyCtx};
pub use qsbr::{Qsbr, QsbrCtx};
pub use rcu::{Rcu, RcuCtx};
pub use wfe::{Wfe, WfeCtx};
