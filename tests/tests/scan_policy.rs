//! The adaptive scan trigger ([`smr_common::ScanPolicy`]): short trials must
//! return memory under every reclaiming scheme, and the extra
//! heartbeat-triggered scans must never weaken the per-scheme garbage bounds
//! asserted in `garbage_bound.rs`.

use smr_common::SmrConfig;
use smr_harness::families::HarrisListFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};

/// Every reclaiming scheme — including the Publish-on-Ping family, whose
/// heartbeat scans run a full ping/publish/ack handshake (the workers keep
/// answering pings at their per-hop checkpoints, so short trials still free
/// memory). Leaky is excluded by construction (it never frees).
fn reclaiming_schemes() -> Vec<SmrKind> {
    SmrKind::all()
        .iter()
        .copied()
        .filter(|&k| k != SmrKind::Leaky)
        .collect()
}

/// The ROADMAP failure mode ("HP reclaims nothing below the watermark"): a
/// short trial whose per-thread retire count stays far below `hi_watermark`
/// must still free memory under every scheme, because the operation-exit
/// heartbeat scans once per `scan_heartbeat_ops` completed operations.
#[test]
fn every_scheme_frees_memory_below_the_hi_watermark() {
    let config = SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(100_000, 25_000) // unreachably high watermarks
        .with_scan_heartbeat_ops(256);
    // Update-heavy on a small list: ~25% of ops retire a record, so 30 K ops
    // across 2 threads retire a few thousand records — far below the
    // watermark, but dozens of heartbeat windows.
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        512,
        2,
        StopCondition::TotalOps(30_000),
    );
    for kind in reclaiming_schemes() {
        let r = run_with::<HarrisListFamily>(kind, &spec, config.clone());
        assert!(
            r.smr_totals.retires < config.hi_watermark as u64,
            "{}: trial must stay below the hi watermark to be meaningful",
            kind.label()
        );
        assert!(
            r.smr_totals.frees > 0,
            "{} freed nothing out of {} retires below the watermark \
             (heartbeat_scans={}, reclaim_scans={})",
            kind.label(),
            r.smr_totals.retires,
            r.smr_totals.heartbeat_scans,
            r.smr_totals.reclaim_scans,
        );
    }
}

/// With the heartbeat disabled the seed behaviour returns: hazard pointers
/// free nothing below the watermark (the control for the test above; the
/// epoch/era families still reclaim through their `epoch_freq`-paced scans).
#[test]
fn disabled_heartbeat_restores_fixed_watermark_behaviour() {
    let config = SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(100_000, 25_000)
        .with_scan_heartbeat_ops(0);
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        512,
        2,
        StopCondition::TotalOps(30_000),
    );
    let r = run_with::<HarrisListFamily>(SmrKind::Hp, &spec, config.clone());
    assert_eq!(
        r.smr_totals.frees, 0,
        "HP with no heartbeat and an unreachable watermark must free nothing"
    );
    assert_eq!(r.smr_totals.heartbeat_scans, 0);
}

/// Heartbeat scans are bounded work: at most one scan per
/// `scan_heartbeat_ops` completed operations per thread.
#[test]
fn heartbeat_scan_count_is_bounded_by_ops() {
    let heartbeat = 256u64;
    let total_ops = 40_000u64;
    let config = SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(100_000, 25_000)
        .with_scan_heartbeat_ops(heartbeat as usize);
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        512,
        2,
        StopCondition::TotalOps(total_ops),
    );
    for kind in reclaiming_schemes() {
        let r = run_with::<HarrisListFamily>(kind, &spec, config.clone());
        // Workers overshoot the ops budget by at most one 64-op batch each;
        // allow generous slack on top of total/heartbeat.
        let bound = r.total_ops / heartbeat + 2 * spec.threads as u64;
        assert!(
            r.smr_totals.heartbeat_scans <= bound,
            "{}: {} heartbeat scans exceeds the pacing bound {}",
            kind.label(),
            r.smr_totals.heartbeat_scans,
            bound
        );
    }
}
