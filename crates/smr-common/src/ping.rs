//! The cooperative per-thread ping/ack channel.
//!
//! Two families of reclaimers in this workspace are built on the same
//! handshake: a *pinger* (usually a thread about to reclaim) bumps a global
//! sequence number and delivers it to every registered thread's `pending`
//! slot; each *pingee* observes the ping at its next hook site (an NBR
//! checkpoint, a POP protect/poll point), performs whatever its scheme
//! requires (restart the read phase for NBR, publish private reservations for
//! the Publish-on-Ping schemes) and stores an acknowledgement; the pinger
//! waits — bounded — until every thread is observed acknowledged or exempt.
//!
//! The channel is the cooperative substitute for the `pthread_kill`
//! broadcasts of NBR (PPoPP 2021) and of the Publish-on-Ping reclaimers
//! (PPoPP 2025): "sending a signal" is `pending[t].fetch_max(seq)`,
//! "the handler ran" is `acked[t] >= seq`. See DESIGN.md (substitution S1 and
//! "Publish-on-Ping on the cooperative channel") for the safety arguments the
//! two users build on top.
//!
//! # Memory ordering contract
//!
//! * [`PingChannel::poll`] loads `pending` with `SeqCst`; a pingee that
//!   observes a ping and then [`PingChannel::ack`]s (a `SeqCst` store)
//!   guarantees that every store it performed *before* the ack (published
//!   reservations, acknowledged restarts) is visible to a pinger that
//!   subsequently observes `acked >= seq` — the observation reads from the
//!   `SeqCst` ack store and therefore synchronizes with it.
//! * The pinger's post-handshake scan should still issue one `SeqCst` fence
//!   before reading reservation slots (single-fence scan, DESIGN.md); the
//!   ack edge alone covers only the slots of threads that acknowledged
//!   *this* sequence number, not exempt threads.

use crate::pad::CachePadded;
use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Per-thread channel endpoints. `pending` is multi-writer (any pinger);
/// `acked` is single-writer (the owning thread); `strikes`/`departed` are
/// the degradation state (multi-writer, monotone until the slot resets).
#[derive(Debug)]
struct PingSlot {
    pending: AtomicU64,
    acked: AtomicU64,
    /// Consecutive conceded rounds charged to this slot. Each strike halves
    /// the spin window the *next* pinger grants it, so a silent peer costs
    /// one full-budget concession and then geometrically less per scan
    /// instead of a full `ack_spin_limit` timeout forever.
    strikes: AtomicU64,
    /// The owning thread left without quiescing (fault injection, crash
    /// detection). Departed slots are permanently exempt from handshakes and
    /// skipped by broadcasts until the slot is reset by a re-registration.
    departed: AtomicBool,
}

/// Outcome of a bounded wait for acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingOutcome {
    /// Every registered thread was observed acknowledged or exempt.
    AllAcked,
    /// Some thread stayed silent past the spin limit; the caller must treat
    /// the round as failed (for the reclaimers: concede and skip).
    TimedOut,
}

/// The shared ping/ack handshake state for up to `max_threads` threads.
pub struct PingChannel {
    seq: AtomicU64,
    /// Simulated per-ping delivery cost in nanoseconds (models the
    /// user↔kernel round trip of a real `pthread_kill`; 0 disables it).
    ping_cost_ns: u64,
    slots: Vec<CachePadded<PingSlot>>,
}

impl std::fmt::Debug for PingChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PingChannel")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("threads", &self.slots.len())
            .finish()
    }
}

impl PingChannel {
    /// Creates a channel for `max_threads` threads with the given simulated
    /// per-ping delivery cost.
    pub fn new(max_threads: usize, ping_cost_ns: u64) -> Self {
        Self {
            seq: AtomicU64::new(0),
            ping_cost_ns,
            slots: (0..max_threads)
                .map(|_| {
                    CachePadded::new(PingSlot {
                        pending: AtomicU64::new(0),
                        acked: AtomicU64::new(0),
                        strikes: AtomicU64::new(0),
                        departed: AtomicBool::new(false),
                    })
                })
                .collect(),
        }
    }

    /// Number of thread slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current value of the global ping sequence (diagnostics/tests).
    #[inline]
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Catches a (re)registering thread's slot up with the global sequence: a
    /// fresh thread holds no pointers, so it trivially acknowledges every
    /// ping sent before it existed.
    ///
    /// `fetch_max`, not plain stores: a pinger whose broadcast raced this
    /// registration may already have delivered a *newer* sequence into
    /// `pending`; overwriting it would leave the pinger spinning its whole
    /// budget for an acknowledgement this thread no longer knows it owes
    /// (never unsafe — the round would be conceded — but a wasted round).
    /// Keeping the newer `pending` makes the fresh thread observe and ack it
    /// at its first poll instead.
    pub fn reset_slot(&self, tid: usize) {
        let seq = self.seq.load(Ordering::SeqCst);
        self.slots[tid].pending.fetch_max(seq, Ordering::SeqCst);
        self.slots[tid].acked.fetch_max(seq, Ordering::SeqCst);
        // A fresh owner starts with a clean record: no strikes, not departed.
        self.slots[tid].strikes.store(0, Ordering::SeqCst);
        self.slots[tid].departed.store(false, Ordering::SeqCst);
    }

    /// Marks `tid`'s slot as departed: its owner left (or was killed) without
    /// quiescing. From now on broadcasts skip the slot and handshakes treat
    /// it as exempt, so one dead peer stops costing a timeout per scan. A
    /// later [`PingChannel::reset_slot`] (re-registration) clears the mark.
    pub fn mark_departed(&self, tid: usize) {
        self.slots[tid].departed.store(true, Ordering::SeqCst);
    }

    /// Whether `tid`'s slot is marked departed.
    #[inline]
    pub fn is_departed(&self, tid: usize) -> bool {
        self.slots[tid].departed.load(Ordering::SeqCst)
    }

    /// Consecutive conceded rounds currently charged to `tid`
    /// (diagnostics/tests).
    #[inline]
    pub fn strikes(&self, tid: usize) -> u64 {
        self.slots[tid].strikes.load(Ordering::SeqCst)
    }

    /// Pings every registered thread except `sender`, returning the sequence
    /// number of this broadcast and the number of pings delivered.
    pub fn ping_all(&self, sender: usize, registry: &Registry) -> (u64, u64) {
        crate::check::preempt("ping.broadcast", 0);
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let mut sent = 0u64;
        for tid in registry.active_tids() {
            if tid == sender || self.is_departed(tid) {
                // A departed owner will never poll; paying the simulated
                // delivery cost for it would charge every broadcast for a
                // thread that no longer exists.
                continue;
            }
            self.slots[tid].pending.fetch_max(seq, Ordering::SeqCst);
            sent += 1;
            self.simulate_ping_cost();
        }
        crate::telemetry::trace::emit(sender, crate::telemetry::TraceKind::PingSent, seq, sent);
        (seq, sent)
    }

    /// Busy-waits for the configured per-ping cost, keeping the
    /// signal-count trade-offs (NBR vs NBR+, ping-paced POP scans)
    /// measurable on machines where an atomic store is nearly free.
    #[inline]
    fn simulate_ping_cost(&self) {
        let ns = self.ping_cost_ns;
        if ns == 0 {
            return;
        }
        let start = std::time::Instant::now();
        let budget = Duration::from_nanos(ns);
        while start.elapsed() < budget {
            std::hint::spin_loop();
        }
    }

    /// Checks `tid`'s endpoint for an unacknowledged ping. Returns the
    /// sequence number to acknowledge, or `None` when nothing new is pending.
    /// One `SeqCst` load on the owner-local `pending` line — the per-hook
    /// cost a pingee pays.
    #[inline]
    pub fn poll(&self, tid: usize) -> Option<u64> {
        crate::check::preempt("ping.poll", tid);
        let slot = &self.slots[tid];
        let pending = slot.pending.load(Ordering::SeqCst);
        if pending > slot.acked.load(Ordering::Relaxed) {
            Some(pending)
        } else {
            None
        }
    }

    /// Acknowledges ping `seq` on behalf of `tid`. Callers must complete
    /// their scheme's ping obligation (restart bookkeeping, publishing
    /// private reservations) **before** acking — the `SeqCst` store is the
    /// release edge the pinger's `acked` observation synchronizes with.
    #[inline]
    pub fn ack(&self, tid: usize, seq: u64) {
        let slot = &self.slots[tid];
        slot.acked.store(seq, Ordering::SeqCst);
        crate::telemetry::trace::emit(tid, crate::telemetry::TraceKind::PingAcked, seq, 0);
        // An ack proves the owner is alive and polling: forgive its strikes
        // so the next handshake grants it a full spin window again.
        if slot.strikes.load(Ordering::Relaxed) != 0 {
            slot.strikes.store(0, Ordering::Relaxed);
        }
    }

    /// Whether `tid` has acknowledged sequence `seq` (or newer).
    #[inline]
    pub fn acked_at_least(&self, tid: usize, seq: u64) -> bool {
        self.slots[tid].acked.load(Ordering::SeqCst) >= seq
    }

    /// Waits (bounded) until every registered thread other than `sender` is
    /// observed either acknowledging `seq` or `exempt`. `while_waiting` runs
    /// on every spin iteration so the waiter can service its *own* incoming
    /// pings — without it, two threads pinging each other concurrently would
    /// both burn their whole spin budget (a ping deadlock resolved only by
    /// the timeout).
    ///
    /// The wait backs off from spinning to yielding so that, on
    /// oversubscribed machines, a descheduled pingee gets the CPU it needs to
    /// reach its next hook site. The per-thread iteration count is bounded by
    /// `spin_limit >> strikes(tid)` (floored at one iteration): a peer that
    /// conceded the previous round gets half the window this round, so a
    /// permanently silent peer degrades to O(1) iterations per scan instead
    /// of head-of-line blocking every scan for the full budget. Departed
    /// slots are exempt outright. On any expiry the remaining peers are
    /// still *checked* (their acks observed, no further spinning — the round
    /// is conceded regardless) and only the expired peers are charged a
    /// strike.
    pub fn await_acks(
        &self,
        sender: usize,
        seq: u64,
        registry: &Registry,
        spin_limit: usize,
        exempt: impl Fn(usize) -> bool,
        mut while_waiting: impl FnMut(),
    ) -> PingOutcome {
        let mut conceded = false;
        let mut silent = 0u64;
        for tid in registry.active_tids() {
            if tid == sender {
                continue;
            }
            let slot = &self.slots[tid];
            let allowance = if conceded {
                // The round is already lost; observe this peer's state once
                // but do not grant it a spin window (and below, do not charge
                // it a strike for a window it never got).
                0
            } else {
                let strikes = slot.strikes.load(Ordering::SeqCst).min(63);
                (spin_limit >> strikes).max(1)
            };
            let mut backoff = crate::Backoff::new();
            let mut iterations = 0usize;
            loop {
                if slot.departed.load(Ordering::SeqCst) || exempt(tid) {
                    break;
                }
                if self.acked_at_least(tid, seq) {
                    break;
                }
                iterations += 1;
                if iterations > allowance {
                    if allowance > 0 {
                        let strikes = slot.strikes.fetch_add(1, Ordering::SeqCst) + 1;
                        crate::telemetry::trace::emit(
                            sender,
                            crate::telemetry::TraceKind::PingStrike,
                            tid as u64,
                            strikes,
                        );
                    }
                    conceded = true;
                    silent += 1;
                    break;
                }
                // Under the deterministic explorer this is the *only* way the
                // awaited pingee ever runs: the wait must yield the schedule.
                crate::check::preempt("ping.await-acks", tid);
                while_waiting();
                backoff.snooze();
            }
        }
        if conceded {
            crate::telemetry::trace::emit(
                sender,
                crate::telemetry::TraceKind::PingConceded,
                seq,
                silent,
            );
            PingOutcome::TimedOut
        } else {
            PingOutcome::AllAcked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(n: usize) -> (PingChannel, Registry) {
        (PingChannel::new(n, 0), Registry::new(n))
    }

    #[test]
    fn poll_sees_ping_once_after_ack() {
        let (ch, reg) = chan(2);
        reg.register_tid(0);
        reg.register_tid(1);
        assert_eq!(ch.poll(1), None, "no ping yet");
        let (seq, sent) = ch.ping_all(0, &reg);
        assert_eq!(sent, 1);
        assert_eq!(ch.poll(1), Some(seq));
        ch.ack(1, seq);
        assert_eq!(ch.poll(1), None, "ping must be consumed by the ack");
        assert_eq!(
            ch.await_acks(0, seq, &reg, 64, |_| false, || {}),
            PingOutcome::AllAcked
        );
    }

    #[test]
    fn silent_thread_times_out() {
        let (ch, reg) = chan(2);
        reg.register_tid(0);
        reg.register_tid(1);
        let (seq, _) = ch.ping_all(0, &reg);
        assert_eq!(
            ch.await_acks(0, seq, &reg, 32, |_| false, || {}),
            PingOutcome::TimedOut
        );
    }

    #[test]
    fn exempt_thread_needs_no_ack() {
        let (ch, reg) = chan(2);
        reg.register_tid(0);
        reg.register_tid(1);
        let (seq, _) = ch.ping_all(0, &reg);
        assert_eq!(
            ch.await_acks(0, seq, &reg, 32, |tid| tid == 1, || {}),
            PingOutcome::AllAcked
        );
    }

    #[test]
    fn reset_slot_catches_up_with_sequence() {
        let (ch, reg) = chan(4);
        reg.register_tid(0);
        ch.ping_all(0, &reg);
        ch.ping_all(0, &reg);
        // A thread registering later is not a straggler for old pings.
        reg.register_tid(1);
        ch.reset_slot(1);
        assert_eq!(ch.poll(1), None);
        assert_eq!(
            ch.await_acks(0, ch.current_seq(), &reg, 32, |_| false, || {}),
            PingOutcome::AllAcked
        );
    }

    #[test]
    fn concurrent_pings_coalesce_to_latest() {
        let (ch, reg) = chan(3);
        for t in 0..3 {
            reg.register_tid(t);
        }
        let (s1, _) = ch.ping_all(0, &reg);
        let (s2, _) = ch.ping_all(1, &reg);
        assert!(s2 > s1);
        // Thread 2 acks once, covering both broadcasts.
        let seen = ch.poll(2).expect("ping pending");
        assert_eq!(seen, s2);
        ch.ack(2, seen);
        assert!(ch.acked_at_least(2, s1));
        assert!(ch.acked_at_least(2, s2));
    }

    #[test]
    fn while_waiting_hook_runs() {
        let (ch, reg) = chan(2);
        reg.register_tid(0);
        reg.register_tid(1);
        let (seq, _) = ch.ping_all(0, &reg);
        let mut calls = 0usize;
        let outcome = ch.await_acks(0, seq, &reg, 16, |_| false, || calls += 1);
        assert_eq!(outcome, PingOutcome::TimedOut);
        assert!(calls > 0, "the waiter must get a chance to self-service");
    }

    #[test]
    fn black_holed_peer_window_decays_geometrically() {
        let (ch, reg) = chan(2);
        reg.register_tid(0);
        reg.register_tid(1);
        // Thread 1 never acks. Each conceded round halves the spin window the
        // next round grants it: full budget once, then geometrically less.
        let spin_limit = 64usize;
        let mut costs = Vec::new();
        for _ in 0..4 {
            let (seq, _) = ch.ping_all(0, &reg);
            let mut spins = 0usize;
            let outcome = ch.await_acks(0, seq, &reg, spin_limit, |_| false, || spins += 1);
            assert_eq!(outcome, PingOutcome::TimedOut);
            costs.push(spins);
        }
        assert_eq!(costs[0], spin_limit, "first round pays the full budget");
        for w in costs.windows(2) {
            assert!(
                w[1] <= w[0] / 2,
                "window must at least halve per conceded round: {costs:?}"
            );
        }
        assert_eq!(ch.strikes(1), 4);
        // An ack forgives the strikes: the peer gets a full window again.
        let (seq, _) = ch.ping_all(0, &reg);
        ch.ack(1, seq);
        assert_eq!(ch.strikes(1), 0);
        assert_eq!(
            ch.await_acks(0, seq, &reg, spin_limit, |_| false, || {}),
            PingOutcome::AllAcked
        );
    }

    #[test]
    fn departed_peer_costs_no_spins_and_no_pings() {
        let (ch, reg) = chan(3);
        reg.register_tid(0);
        reg.register_tid(1);
        reg.register_tid(2);
        ch.mark_departed(1);
        assert!(ch.is_departed(1));
        // Broadcast skips the departed slot entirely.
        let (seq, sent) = ch.ping_all(0, &reg);
        assert_eq!(sent, 1, "only the live peer is pinged");
        ch.ack(2, seq);
        let mut spins = 0usize;
        assert_eq!(
            ch.await_acks(0, seq, &reg, 64, |_| false, || spins += 1),
            PingOutcome::AllAcked,
            "a departed peer must not block the handshake"
        );
        assert_eq!(spins, 0, "no spin window is granted to a departed slot");
        // Re-registration of the slot clears the mark.
        ch.reset_slot(1);
        assert!(!ch.is_departed(1));
    }

    #[test]
    fn concession_still_observes_remaining_acks_without_spinning() {
        let (ch, reg) = chan(3);
        reg.register_tid(0);
        reg.register_tid(1);
        reg.register_tid(2);
        let (seq, _) = ch.ping_all(0, &reg);
        ch.ack(2, seq); // tid 2 acks, tid 1 stays silent
        assert_eq!(
            ch.await_acks(0, seq, &reg, 16, |_| false, || {}),
            PingOutcome::TimedOut
        );
        // Only the silent peer is charged; the peer that acked keeps a clean
        // record (an expired round must not poison live threads downstream).
        assert_eq!(ch.strikes(1), 1);
        assert_eq!(ch.strikes(2), 0);
    }

    #[test]
    fn ping_all_skips_sender_and_inactive() {
        let (ch, reg) = chan(8);
        reg.register_tid(0);
        reg.register_tid(3);
        reg.register_tid(5);
        let (_, sent) = ch.ping_all(3, &reg);
        assert_eq!(sent, 2);
    }
}
