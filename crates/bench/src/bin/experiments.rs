//! `experiments` — regenerates the tables behind every figure of the paper's
//! evaluation and prints them (the output recorded in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p nbr-bench --release --bin experiments -- [--quick|--full|--smoke] [--csv] [--help] [SELECTORS...]
//!
//! selectors (default: all):
//!   --e1-tree   Figure 3a   DGT tree throughput
//!   --e1-list   Figure 3b   lazy-list throughput
//!   --e2        Figures 4c/4d  peak memory with/without a stalled thread
//!   --e3        Figure 4a   (a,b)-tree low/high contention
//!   --e4        Figure 4b   HM-list restart cost
//!   --fig5      Figure 5    DGT tree across sizes
//!   --fig6      Figure 6    lazy list across sizes
//!   --fig7      Figure 7    Harris list across sizes
//!   --fig8      Figure 8    (a,b)-tree across sizes
//!   --ablation  Section 5   NBR vs NBR+ signal traffic
//! ```

use smr_harness::experiments::{
    ablation_signal_counts, e1_dgt_throughput, e1_lazylist_throughput, e2_peak_memory,
    e3_abtree_contention, e4_hmlist_restarts, fig5_dgt_sizes, fig6_lazylist_sizes,
    fig7_harris_sizes, fig8_abtree_sizes, ExperimentScale,
};
use smr_harness::{report, TrialResult};

#[global_allocator]
static ALLOC: smr_harness::alloc_track::CountingAlloc = smr_harness::alloc_track::CountingAlloc;

struct Options {
    scale: ExperimentScale,
    csv: bool,
    selected: Vec<String>,
}

const SELECTORS: &[&str] = &[
    "e1-tree", "e1-list", "e2", "e3", "e4", "fig5", "fig6", "fig7", "fig8", "ablation",
];

fn usage() -> String {
    format!(
        "usage: experiments [--quick|--full|--smoke] [--csv] [SELECTORS...]\n\
         selectors (default: all): {}",
        SELECTORS
            .iter()
            .map(|s| format!("--{s}"))
            .collect::<Vec<_>>()
            .join(" ")
    )
}

fn parse_args() -> Options {
    let mut scale = ExperimentScale::quick();
    let mut csv = false;
    let mut selected = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => scale = ExperimentScale::full(),
            "--quick" => scale = ExperimentScale::quick(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            s if s.starts_with("--") && SELECTORS.contains(&s.trim_start_matches("--")) => {
                selected.push(s.trim_start_matches("--").to_string())
            }
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                std::process::exit(2);
            }
        }
    }
    Options {
        scale,
        csv,
        selected,
    }
}

fn emit(opts: &Options, title: &str, rows: &[TrialResult]) {
    if opts.csv {
        println!("# {title}");
        println!("{}", report::to_csv(rows));
    } else {
        println!("{}", report::to_table(title, rows));
        println!("{}", report::to_throughput_series(title, rows));
    }
}

fn wants(opts: &Options, name: &str) -> bool {
    opts.selected.is_empty() || opts.selected.iter().any(|s| s == name)
}

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    assert!(
        !smr_common::telemetry::trace_compiled_in(),
        "bench binary built with the smr-common `trace` feature on; measurements would be invalid"
    );
    let opts = parse_args();
    let scale = &opts.scale;
    eprintln!(
        "running experiments: threads={:?}, tree range={}, list range={}",
        scale.thread_counts, scale.tree_key_range, scale.list_key_range
    );

    if wants(&opts, "e1-tree") {
        emit(
            &opts,
            "Figure 3a (E1) — DGT tree throughput",
            &e1_dgt_throughput(scale),
        );
    }
    if wants(&opts, "e1-list") {
        emit(
            &opts,
            "Figure 3b (E1) — lazy-list throughput",
            &e1_lazylist_throughput(scale),
        );
    }
    if wants(&opts, "e2") {
        emit(
            &opts,
            "Figure 4c (E2) — peak memory, one thread stalled",
            &e2_peak_memory(scale, true),
        );
        emit(
            &opts,
            "Figure 4d (E2) — peak memory, no stalled thread",
            &e2_peak_memory(scale, false),
        );
    }
    if wants(&opts, "e3") {
        emit(
            &opts,
            "Figure 4a (E3) — (a,b)-tree, low vs high contention",
            &e3_abtree_contention(scale),
        );
    }
    if wants(&opts, "e4") {
        emit(
            &opts,
            "Figure 4b (E4) — HM-list restart-from-root cost",
            &e4_hmlist_restarts(scale),
        );
    }
    if wants(&opts, "fig5") {
        let sizes = [scale.list_key_range.max(4_096), scale.tree_key_range];
        emit(
            &opts,
            "Figure 5 — DGT tree across key-range sizes",
            &fig5_dgt_sizes(scale, &sizes),
        );
    }
    if wants(&opts, "fig6") {
        let sizes = [scale.small_key_range, 2_048];
        emit(
            &opts,
            "Figure 6 — lazy list across key-range sizes",
            &fig6_lazylist_sizes(scale, &sizes),
        );
    }
    if wants(&opts, "fig7") {
        let sizes = [scale.small_key_range, 2_048, scale.list_key_range];
        emit(
            &opts,
            "Figure 7 — Harris list across key-range sizes",
            &fig7_harris_sizes(scale, &sizes),
        );
    }
    if wants(&opts, "fig8") {
        let sizes = [scale.tree_key_range / 8, scale.tree_key_range];
        emit(
            &opts,
            "Figure 8 — (a,b)-tree across key-range sizes",
            &fig8_abtree_sizes(scale, &sizes),
        );
    }
    if wants(&opts, "ablation") {
        emit(
            &opts,
            "Ablation — NBR vs NBR+ signal traffic",
            &ablation_signal_counts(scale),
        );
    }
}
