//! Recycling end-to-end: the node-block pool must take the global allocator
//! off the steady-state hot path.
//!
//! This binary installs the counting global allocator and runs the same
//! single-threaded 50i-50d churn twice over a Harris list — once with the
//! recycling pool, once with `--no-recycle` semantics — and asserts that with
//! recycling the number of *global-allocator* calls during the measured
//! window collapses to the warm-up residue (limbo segment buffers, one-off
//! scratch growth), while the bypass run pays roughly one allocation per
//! successful insert.
//!
//! Kept alone in its own test binary: the allocator counters are
//! process-global, so a concurrently running test would pollute the deltas.

use conc_ds::{ConcurrentSet, HarrisList};
use nbr::NbrPlus;
use smr_common::{Smr, SmrConfig};
use smr_harness::alloc_track::{self, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARM_OPS: u64 = 4_000;
const MEASURED_OPS: u64 = 20_000;
const KEY_RANGE: u64 = 128;

/// Alternating insert/remove churn over a rolling key window: every pair of
/// operations allocates one node and retires one node at steady state.
fn churn(list: &HarrisList<NbrPlus>, ctx: &mut <NbrPlus as Smr>::ThreadCtx, ops: u64) {
    for i in 0..ops {
        let key = 1 + (i / 2) % KEY_RANGE;
        if i % 2 == 0 {
            list.insert(ctx, key);
        } else {
            list.remove(ctx, key);
        }
    }
}

/// Runs the workload and returns (global allocations during the measured
/// window, merged thread stats).
fn measure(recycle: bool) -> (u64, smr_common::ThreadStats) {
    let config = SmrConfig::for_tests()
        .with_max_threads(4)
        .with_recycle(recycle);
    let list = HarrisList::<NbrPlus>::new(config);
    let mut ctx = list.smr().register(0);
    churn(&list, &mut ctx, WARM_OPS);
    let before = alloc_track::total_allocs();
    churn(&list, &mut ctx, MEASURED_OPS);
    let during = alloc_track::total_allocs() - before;
    let stats = list.smr().thread_stats(&ctx);
    list.smr().unregister(&mut ctx);
    (during, stats)
}

#[test]
fn steady_state_bounds_global_allocator_calls() {
    assert!(alloc_track::is_installed());

    let (allocs_pooled, stats_pooled) = measure(true);
    let (allocs_bypassed, stats_bypassed) = measure(false);

    // Sanity of the workload: the bypass run pays the allocator roughly once
    // per successful insert (~MEASURED_OPS / 2).
    assert!(
        allocs_bypassed as f64 > MEASURED_OPS as f64 / 4.0,
        "bypass run must hit the global allocator per insert, saw {allocs_bypassed}"
    );
    assert_eq!(stats_bypassed.pool_hits, 0, "--no-recycle must not pool");
    assert_eq!(
        stats_bypassed.pool_recycled, 0,
        "--no-recycle must not pool"
    );

    // The recycling run must be bounded by the warm-up residue: once the
    // pool is primed, nodes cycle magazine → structure → limbo → magazine
    // without touching the global allocator.
    assert!(
        allocs_pooled < MEASURED_OPS / 20,
        "recycling must bound global allocations to the residue, saw {allocs_pooled} in {MEASURED_OPS} ops"
    );
    assert!(
        allocs_pooled * 8 < allocs_bypassed,
        "recycling ({allocs_pooled}) must beat the bypass ({allocs_bypassed}) by far"
    );

    // And the pool counters must explain where the allocations went.
    assert!(
        stats_pooled.pool_hits > stats_pooled.pool_misses,
        "steady state must be dominated by pool hits: {} hits vs {} misses",
        stats_pooled.pool_hits,
        stats_pooled.pool_misses
    );
    assert!(stats_pooled.pool_recycled > 0);
}
