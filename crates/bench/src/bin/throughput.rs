//! `throughput` — the machine-readable perf-trajectory harness.
//!
//! Runs the read-mostly list matrix (scheme × structure × key range at the CI
//! thread count) plus an update-heavy (50i-50d) Harris-list block — the cells
//! where marked chains form and the batch unlink fires — and writes one JSON
//! document per invocation. The output is
//! committed as `BENCH_<pr>.json` at the repo root so every perf-oriented PR
//! leaves a comparable record; pass `--baseline <prior.json>` to embed the
//! prior run's numbers and per-cell speedups in the new document.
//!
//! ```text
//! cargo run -p nbr-bench --release --bin throughput -- \
//!     [--out BENCH_8.json] [--baseline old.json] [--trials 3] \
//!     [--millis 300] [--threads N] [--tiny] [--label note] \
//!     [--zipf theta] [--no-recycle] [--no-telemetry] [--ab notel.json]
//! ```
//!
//! `--zipf <theta>` switches the *whole* matrix from uniform keys to a YCSB
//! Zipfian with the given `θ ∈ (0, 1)`. Without the flag, the uniform matrix
//! is followed by a skewed-key block — every scheme × structure at the
//! smallest key range under `Zipf(0.99)` — so each baseline also records the
//! hot-spot contention profile. Zipfian cells carry a `|zipf<θ>` suffix in
//! their key so they never collide with uniform cells.
//!
//! `--no-recycle` bypasses the node-block recycling pool (A/B against the
//! magazine/depot allocator of `smr-common::recycle`); each cell reports its
//! pool hit/miss counters either way.
//!
//! `--no-telemetry` bypasses every tier-1 telemetry clock read (the harness's
//! op-latency sampling and the schemes' scan/ping stopwatches) — the A/B
//! baseline for measuring what the always-on histograms cost. Cells from such
//! a run report zeroed percentiles; compare against a default run with
//! `xtask bench-diff` (DESIGN.md records the measured overhead).
//!
//! `--ab <notel.json>` runs that A/B *inside one process*: every pass over
//! the matrix runs twice, once with telemetry and once with the clocks
//! bypassed, the two arms alternating which goes first per pass. Each cell
//! reports the pass whose back-to-back on/off ratio is the *median* over
//! passes — both arms from that one pass, so their ratio is the median
//! paired overhead (A/B mode only; plain runs keep best-of-N). The on arm
//! lands in `--out`, the off arm at the `--ab` path. Within-pass pairing is
//! what makes the ratio drift-immune: per-arm order statistics land on
//! different passes, so scheduler luck masquerades as overhead the way two
//! separate invocations do. The pass count is adaptive per cell (`--trials`
//! is ignored in A/B mode): sampling continues until the IQR-estimated
//! standard error of the median ratio falls below 1.5%, so noisy cells earn
//! more passes.
//!
//! Each cell is emitted on its own line with a stable `key`
//! (`scheme|structure|mix|r<range>|t<threads>`), which is what the baseline
//! parser keys on — keep the format line-oriented.

use smr_common::SmrConfig;
use smr_harness::alloc_track::{self, CountingAlloc};
use smr_harness::families::{HarrisListFamily, HmListRestartFamily};
use smr_harness::{
    run_with, KeyDist, SmrKind, StopCondition, TrialResult, WorkloadMix, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Counting global allocator: lets every cell report the *residual*
/// global-allocator traffic next to its pool hit/miss counters, so the
/// recycling claim ("malloc is off the hot path") is visible in the JSON
/// rather than asserted.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Clone)]
struct Args {
    out: String,
    telemetry: bool,
    /// Interleaved same-process telemetry A/B: the path the telemetry-off
    /// arm's document is written to (the on arm goes to `out`).
    ab: Option<String>,
    baseline: Option<String>,
    trials: usize,
    millis: u64,
    threads: usize,
    key_ranges: Vec<u64>,
    label: String,
    key_dist: KeyDist,
    /// Extra skewed-key block (Zipf 0.99 at the smallest key range) appended
    /// to a uniform matrix; disabled when `--zipf` overrides the whole run.
    zipf_block: bool,
    recycle: bool,
    /// CI smoke scale (`--tiny`): short trials, one key range, and a bounded
    /// A/B pass budget so the smoke job can't run open-ended.
    tiny: bool,
    /// Feature-ablation arm for `--ab`: instead of telemetry on/off, the off
    /// arm disables one hot-path feature (`no-coalesce` | `no-combine` |
    /// `no-memo`) while both arms keep telemetry on. Same cell-interleaved
    /// paired-median protocol either way.
    ab_arm: Option<&'static str>,
    coalesce: bool,
    combine: bool,
    memo: bool,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_8.json".to_string(),
        telemetry: true,
        ab: None,
        baseline: None,
        trials: 3,
        millis: 300,
        threads: default_threads(),
        key_ranges: vec![200, 2_048],
        label: String::new(),
        key_dist: KeyDist::Uniform,
        zipf_block: true,
        recycle: true,
        tiny: false,
        ab_arm: None,
        coalesce: true,
        combine: true,
        memo: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--trials" => args.trials = val("--trials").parse().expect("--trials"),
            "--millis" => args.millis = val("--millis").parse().expect("--millis"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--label" => args.label = val("--label"),
            "--zipf" => {
                let theta: f64 = val("--zipf").parse().expect("--zipf");
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "--zipf theta must lie in (0, 1), got {theta}"
                );
                args.key_dist = KeyDist::Zipf(theta);
                args.zipf_block = false;
            }
            "--no-recycle" => args.recycle = false,
            "--no-telemetry" => args.telemetry = false,
            "--ab" => args.ab = Some(val("--ab")),
            "--ab-arm" => {
                args.ab_arm = Some(match val("--ab-arm").as_str() {
                    "no-coalesce" => "no-coalesce",
                    "no-combine" => "no-combine",
                    "no-memo" => "no-memo",
                    other => {
                        panic!("unknown --ab-arm {other} (expected no-coalesce|no-combine|no-memo)")
                    }
                });
            }
            "--tiny" => {
                // CI smoke scale: one short trial, one key range.
                args.trials = 1;
                args.millis = 40;
                args.key_ranges = vec![200];
                args.tiny = true;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// One measured cell of the matrix.
struct Cell {
    /// Global-allocator calls observed process-wide while this cell's best
    /// pass ran (prefill + trial; the recycling residue plus harness noise).
    global_allocs: u64,
    key: String,
    scheme: &'static str,
    ds: &'static str,
    mops: f64,
    peak_limbo: u64,
    retires: u64,
    frees: u64,
    pool_hits: u64,
    pool_misses: u64,
    /// Sampled op-latency percentiles (ns): p50/p99/p999/max.
    op_p50: u64,
    op_p99: u64,
    op_p999: u64,
    op_max: u64,
    /// Reclamation-scan duration p99 (ns).
    scan_p99: u64,
    heartbeat_scans: u64,
    ping_concessions: u64,
    orphan_adoptions: u64,
    /// Flat-combined scan publication traffic (hand-offs / sweeps that
    /// adopted at least one published bag).
    combine_publishes: u64,
    combine_adoptions: u64,
    /// Zipf-hot lookup memo traffic (stamp-validated hits / fallbacks).
    memo_hits: u64,
    memo_misses: u64,
}

impl Cell {
    /// Fraction of pool-eligible allocations served from recycled blocks.
    fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

fn cell_key(r: &TrialResult, dist: KeyDist) -> String {
    let suffix = match dist {
        KeyDist::Uniform => String::new(),
        KeyDist::Zipf(_) => format!("|{}", dist.label()),
    };
    format!(
        "{}|{}|{}|r{}|t{}{}",
        r.smr, r.ds, r.mix, r.key_range, r.threads, suffix
    )
}

/// Extracts `"key": mops` pairs (plus peak limbo) from a prior run's JSON.
/// The format is line-oriented by construction, so a full JSON parser is not
/// needed: every cell line carries `"key":"..."` and `"mops":<f64>`.
fn parse_baseline(text: &str) -> BTreeMap<String, (f64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(key) = extract_str(line, "\"key\":\"") else {
            continue;
        };
        let Some(mops) = extract_num(line, "\"mops\":") else {
            continue;
        };
        let peak = extract_num(line, "\"peak_limbo\":").unwrap_or(0.0) as u64;
        out.insert(key, (mops, peak));
    }
    out
}

/// Escapes a user-supplied string for embedding in a JSON string literal
/// (`--label` is free text; every other interpolated string is a fixed
/// scheme/structure label).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn extract_str(line: &str, tag: &str) -> Option<String> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, tag: &str) -> Option<f64> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_once<F: smr_harness::DsFamily>(
    kind: SmrKind,
    mix: WorkloadMix,
    key_range: u64,
    dist: KeyDist,
    args: &Args,
) -> TrialResult {
    let spec = WorkloadSpec::new(
        mix,
        key_range,
        args.threads,
        StopCondition::Duration(Duration::from_millis(args.millis)),
    )
    .with_key_dist(dist)
    .with_telemetry(args.telemetry);
    let config = SmrConfig::default()
        .with_max_threads(args.threads + 4)
        .with_watermarks(1024, 256)
        .with_signal_cost_ns(2_000)
        .with_recycle(args.recycle)
        .with_telemetry(args.telemetry)
        .with_coalesce(args.coalesce)
        .with_combine(args.combine)
        .with_memo(args.memo);
    run_with::<F>(kind, &spec, config)
}

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    assert!(
        !smr_common::telemetry::trace_compiled_in(),
        "bench binary built with the smr-common `trace` feature on; measurements would be invalid"
    );
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        parse_baseline(&text)
    });

    // One runner closure per cell of the matrix, so the trial loop below can
    // *interleave*: every cell runs once per pass over the whole matrix,
    // rather than all N trials back-to-back. CI-grade machines see *bursty*
    // interference (a noisy neighbour for a few seconds); back-to-back
    // trials let one burst swallow every sample of a single cell, while
    // interleaved passes spread it across the matrix — best-of-N then
    // converges per cell instead of condemning whichever cell the burst hit.
    type Runner = Box<dyn Fn(&Args) -> TrialResult>;
    let schemes = SmrKind::all();
    let mut runners: Vec<(KeyDist, Runner)> = Vec::new();
    let row_set = |runners: &mut Vec<(KeyDist, Runner)>, key_range: u64, dist: KeyDist| {
        for &kind in schemes {
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HarrisListFamily>(kind, WorkloadMix::READ_HEAVY, key_range, dist, a)
                }),
            ));
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HmListRestartFamily>(
                        kind,
                        WorkloadMix::READ_HEAVY,
                        key_range,
                        dist,
                        a,
                    )
                }),
            ));
        }
    };
    for &key_range in &args.key_ranges {
        row_set(&mut runners, key_range, args.key_dist);
    }
    if args.zipf_block {
        // Skewed-key block: the YCSB hot-spot distribution at the smallest
        // (most contended) key range, one row per scheme × structure.
        row_set(&mut runners, args.key_ranges[0], KeyDist::Zipf(0.99));
    }
    // Update-heavy (50i-50d) Harris-list block at the smallest key range:
    // constant deletions are what grow marked chains, so these are the cells
    // where the interval reclaimers' batch unlink (vs. the pre-PR-5
    // one-node-at-a-time fallback) actually fires and the win is recorded in
    // the trajectory. Cells carry the `50i-50d` mix in their key, so they
    // never collide with the read-mostly matrix.
    {
        let key_range = args.key_ranges[0];
        let dist = args.key_dist;
        for &kind in schemes {
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HarrisListFamily>(
                        kind,
                        WorkloadMix::UPDATE_HEAVY,
                        key_range,
                        dist,
                        a,
                    )
                }),
            ));
        }
    }

    type Samples = Vec<Vec<(TrialResult, u64)>>;
    let run_cell = |slot: &mut Vec<(TrialResult, u64)>, runner: &Runner, a: &Args| {
        let allocs_before = alloc_track::total_allocs();
        let r = runner(a);
        let allocs = alloc_track::total_allocs() - allocs_before;
        slot.push((r, allocs));
    };

    let passes = args.trials.max(1);
    let mut best: Samples = runners.iter().map(|_| Vec::new()).collect();
    let mut best_off: Samples = runners.iter().map(|_| Vec::new()).collect();
    assert!(
        args.ab_arm.is_none() || args.ab.is_some(),
        "--ab-arm requires --ab <path> for the feature-off arm's document"
    );
    let args_off = args.ab.as_ref().map(|_| {
        let mut a = args.clone();
        match args.ab_arm {
            // Default A/B: telemetry overhead (on vs. clocks bypassed).
            None => {
                assert!(
                    args.telemetry,
                    "--ab measures telemetry overhead; it cannot be combined with --no-telemetry"
                );
                a.telemetry = false;
            }
            // Feature-ablation A/B: both arms keep telemetry; the off arm
            // disables exactly one hot-path feature.
            Some("no-coalesce") => a.coalesce = false,
            Some("no-combine") => a.combine = false,
            Some("no-memo") => a.memo = false,
            Some(other) => unreachable!("validated at parse time: {other}"),
        }
        a
    });
    if let Some(off) = &args_off {
        // A/B mode: paired *adaptive* sampling, cell by cell. The two arms
        // of one pass run back-to-back (machine-level drift slower than one
        // trial hits both alike), alternating which goes first per pass so
        // ordering bias (cache warm-up, allocator state) cannot favour an
        // arm; within-pass pairing, not matrix-level interleaving, is the
        // drift defence here. Each cell keeps sampling until the standard
        // error of its median paired ratio — estimated robustly from the
        // IQR, so outlier passes don't inflate it — drops below the SE target,
        // so cells with bimodal scheduling on an oversubscribed host earn
        // more passes instead of a fixed budget being sized for the worst
        // cell. The stopping rule never looks at the ratio itself, only at
        // its precision, so it does not bias the recorded median.
        // At CI smoke scale the budget is bounded instead: the smoke gate is
        // 0.80× on 40 ms trials and the committed full-scale recording is
        // the real A/B, so unresolved cells are acceptable there while an
        // open-ended run would blow the job timeout.
        let (min_passes, max_passes, se_target) = if args.tiny {
            (5, 15, 0.03)
        } else {
            (15, 240, 0.015)
        };
        // The overhead floor the committed A/B is held to (`xtask bench-diff
        // --threshold 0.95`, see DESIGN.md). A cell whose median lands near
        // the boundary at the default precision hasn't *decided* anything —
        // a ±1.5-SE draw flips the verdict — so such cells keep sampling
        // until the boundary is cleared by 2.5 SE either way (or the pass
        // cap); cells far from the boundary are unaffected.
        const AB_GATE: f64 = 0.95;
        for (i, ((slot_on, slot_off), (_, runner))) in best
            .iter_mut()
            .zip(best_off.iter_mut())
            .zip(&runners)
            .enumerate()
        {
            for pass in 0.. {
                if (pass + i) % 2 == 1 {
                    run_cell(slot_off, runner, off);
                    run_cell(slot_on, runner, &args);
                } else {
                    run_cell(slot_on, runner, &args);
                    run_cell(slot_off, runner, off);
                }
                let (on, _) = slot_on.last().expect("just pushed");
                let (offr, _) = slot_off.last().expect("just pushed");
                // One diagnostic line per paired measurement: lets the noise
                // structure (drift, per-pass spread) be analysed offline.
                eprintln!(
                    "  ablog cell={i} pass={pass} on={:.4} off={:.4}",
                    on.mops, offr.mops
                );
                let n = slot_on.len();
                if n >= min_passes {
                    let mut ratios: Vec<f64> = slot_on
                        .iter()
                        .zip(slot_off.iter())
                        .map(|(a, b)| a.0.mops / b.0.mops)
                        .collect();
                    ratios.sort_by(f64::total_cmp);
                    let iqr = ratios[(3 * n) / 4] - ratios[n / 4];
                    let se = 1.25 * (iqr / 1.35) / (n as f64).sqrt();
                    let resolved = (ratios[n / 2] - AB_GATE).abs() >= 2.5 * se;
                    if (se <= se_target && resolved) || n >= max_passes {
                        eprintln!(
                            "cell {}/{}: {n} passes, median paired ratio {:.4} (se {:.4})",
                            i + 1,
                            runners.len(),
                            ratios[n / 2],
                            se
                        );
                        break;
                    }
                }
            }
        }
    } else {
        for pass in 0..passes {
            eprintln!("pass {}/{}", pass + 1, passes);
            for (slot_on, (_, runner)) in best.iter_mut().zip(&runners) {
                run_cell(slot_on, runner, &args);
            }
        }
    }

    // Reduce each cell's samples to one representative trial. Plain runs
    // keep the historical best-of-N: interference on a shared box is
    // one-sided (a noisy neighbour only ever slows a trial down), so the max
    // is the clean-machine estimate. A/B runs instead pick, per cell, the
    // *pass* whose back-to-back on/off ratio is the median over passes, and
    // report BOTH arms from that one pass: each number is a real measured
    // trial, and their ratio is the median paired overhead. Per-arm order
    // statistics do not pair — each arm's max (or median) lands on a
    // different pass, so scheduler luck masquerades as ±10% "overhead" on an
    // oversubscribed host — while a within-pass ratio cancels the machine
    // state both trials shared.
    let mut reduced_on = Vec::with_capacity(best.len());
    let mut reduced_off = Vec::with_capacity(best.len());
    if args_off.is_some() {
        for (mut on, mut off) in best.into_iter().zip(best_off) {
            assert!(!on.is_empty(), "at least one pass ran");
            assert_eq!(on.len(), off.len(), "arms run once each per pass");
            let mut idx: Vec<usize> = (0..on.len()).collect();
            idx.sort_by(|&a, &b| {
                let ra = on[a].0.mops / off[a].0.mops;
                let rb = on[b].0.mops / off[b].0.mops;
                ra.total_cmp(&rb)
            });
            let p = idx[idx.len() / 2];
            reduced_on.push(on.swap_remove(p));
            reduced_off.push(off.swap_remove(p));
        }
    } else {
        for mut on in best {
            assert!(!on.is_empty(), "at least one pass ran");
            on.sort_by(|a, b| a.0.mops.total_cmp(&b.0.mops));
            reduced_on.push(on.pop().unwrap());
        }
    }

    let build_cells = |best: Vec<(TrialResult, u64)>, verbose: bool| -> Vec<Cell> {
        best.into_iter()
            .zip(&runners)
            .map(|(r, (dist, _))| {
                let (r, global_allocs) = r;
                let (op_p50, op_p99, op_p999) = r.smr_totals.tel.op.p50_p99_p999();
                let (_, scan_p99, _) = r.smr_totals.tel.scan.p50_p99_p999();
                let cell = Cell {
                    global_allocs,
                    key: cell_key(&r, *dist),
                    scheme: r.smr,
                    ds: r.ds,
                    mops: r.mops,
                    peak_limbo: r.smr_totals.peak_limbo,
                    retires: r.smr_totals.retires,
                    frees: r.smr_totals.frees,
                    pool_hits: r.smr_totals.pool_hits,
                    pool_misses: r.smr_totals.pool_misses,
                    op_p50,
                    op_p99,
                    op_p999,
                    op_max: r.smr_totals.tel.op.max(),
                    scan_p99,
                    heartbeat_scans: r.smr_totals.heartbeat_scans,
                    ping_concessions: r.smr_totals.ping_concessions,
                    orphan_adoptions: r.smr_totals.orphan_adoptions,
                    combine_publishes: r.smr_totals.combine_publishes,
                    combine_adoptions: r.smr_totals.combine_adoptions,
                    memo_hits: r.smr_totals.memo_hits,
                    memo_misses: r.smr_totals.memo_misses,
                };
                if verbose {
                    eprintln!(
                        "  {:<36} {:>8.3} Mops/s  op p50/p99/p999={}/{}/{}ns peak_limbo={} retired={} freed={} pool-hit={:.0}% global-allocs={}",
                        cell.key,
                        cell.mops,
                        cell.op_p50,
                        cell.op_p99,
                        cell.op_p999,
                        cell.peak_limbo,
                        cell.retires,
                        cell.frees,
                        cell.hit_rate() * 100.0,
                        cell.global_allocs
                    );
                }
                cell
            })
            .collect()
    };
    let cells = build_cells(reduced_on, true);

    let render_doc = |cells: &[Cell],
                      arm: &Args,
                      baseline: Option<&BTreeMap<String, (f64, u64)>>| {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"harness\": \"throughput\",");
        let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&args.label));
        let _ = writeln!(out, "  \"mix\": \"per-cell\",");
        let _ = writeln!(out, "  \"key_dist\": \"{}\",", args.key_dist.label());
        let _ = writeln!(out, "  \"zipf_block\": {},", args.zipf_block);
        let _ = writeln!(out, "  \"recycle\": {},", args.recycle);
        let _ = writeln!(out, "  \"telemetry\": {},", arm.telemetry);
        let _ = writeln!(out, "  \"coalesce\": {},", arm.coalesce);
        let _ = writeln!(out, "  \"combine\": {},", arm.combine);
        let _ = writeln!(out, "  \"memo\": {},", arm.memo);
        if let Some(name) = args.ab_arm {
            let _ = writeln!(out, "  \"ab_arm\": \"{name}\",");
        }
        let _ = writeln!(out, "  \"threads\": {},", args.threads);
        let _ = if args.ab.is_some() {
            // `--trials` is ignored in A/B mode; the pass count is adaptive
            // per cell (see the sampling loop), so a number here would lie.
            writeln!(out, "  \"trials\": \"adaptive-paired\",")
        } else {
            writeln!(out, "  \"trials\": {},", args.trials)
        };
        let _ = writeln!(out, "  \"trial_millis\": {},", args.millis);
        let _ = writeln!(out, "  \"cells\": [");
        let n = cells.len();
        for (i, c) in cells.iter().enumerate() {
            let mut line = format!(
                    "    {{\"key\":\"{}\",\"scheme\":\"{}\",\"ds\":\"{}\",\"mops\":{:.4},\"peak_limbo\":{},\"retires\":{},\"frees\":{},\"pool_hits\":{},\"pool_misses\":{},\"global_allocs\":{},\"op_p50_ns\":{},\"op_p99_ns\":{},\"op_p999_ns\":{},\"op_max_ns\":{},\"scan_p99_ns\":{},\"heartbeat_scans\":{},\"ping_concessions\":{},\"orphan_adoptions\":{},\"combine_publishes\":{},\"combine_adoptions\":{},\"memo_hits\":{},\"memo_misses\":{}",
                    c.key, c.scheme, c.ds, c.mops, c.peak_limbo, c.retires, c.frees, c.pool_hits, c.pool_misses, c.global_allocs,
                    c.op_p50, c.op_p99, c.op_p999, c.op_max, c.scan_p99, c.heartbeat_scans, c.ping_concessions, c.orphan_adoptions,
                    c.combine_publishes, c.combine_adoptions, c.memo_hits, c.memo_misses
                );
            if let Some(base) = baseline {
                if let Some(&(bm, bp)) = base.get(&c.key) {
                    let _ = write!(
                        line,
                        ",\"baseline_mops\":{:.4},\"baseline_peak_limbo\":{},\"speedup\":{:.4}",
                        bm,
                        bp,
                        if bm > 0.0 { c.mops / bm } else { 0.0 }
                    );
                }
            }
            let _ = write!(line, "}}{}", if i + 1 < n { "," } else { "" });
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    };

    let out = render_doc(&cells, &args, baseline.as_ref());
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    if let Some(ab_path) = &args.ab {
        // The off arm's document never embeds the PR baseline: its one job
        // is the feature/telemetry A/B via `xtask bench-diff <off> <on>`.
        let off = args_off.as_ref().expect("--ab implies an off arm");
        let cells_off = build_cells(reduced_off, false);
        let out_off = render_doc(&cells_off, off, None);
        std::fs::write(ab_path, &out_off).unwrap_or_else(|e| panic!("write {ab_path}: {e}"));
        let arm_name = match args.ab_arm {
            None => "telemetry-off arm",
            Some("no-coalesce") => "coalescing-off arm",
            Some("no-combine") => "combining-off arm",
            Some("no-memo") => "memo-off arm",
            Some(other) => unreachable!("validated at parse time: {other}"),
        };
        eprintln!("wrote {ab_path} ({arm_name}, interleaved same-process A/B)");
    }

    let (hits, misses) = cells.iter().fold((0u64, 0u64), |(h, m), c| {
        (h + c.pool_hits, m + c.pool_misses)
    });
    if hits + misses > 0 {
        eprintln!(
            "recycling pool: {:.1}% hit rate ({} recycled / {} global-alloc fallbacks)",
            hits as f64 / (hits + misses) as f64 * 100.0,
            hits,
            misses
        );
    } else {
        eprintln!("recycling pool: bypassed (--no-recycle)");
    }

    if let Some(base) = &baseline {
        let matched = cells.iter().filter(|c| base.contains_key(&c.key)).count();
        if matched == 0 {
            eprintln!(
                "warning: no cell key matched the baseline — check that \
                 --threads (and the key ranges / distribution) match the \
                 baseline run, or every speedup field will be absent"
            );
        }
        let improved: Vec<&Cell> = cells
            .iter()
            .filter(|c| {
                base.get(&c.key)
                    .map(|&(bm, _)| bm > 0.0 && c.mops / bm >= 1.10)
                    .unwrap_or(false)
            })
            .collect();
        eprintln!(
            "cells ≥ 1.10x over baseline: {} of {} ({} matched)",
            improved.len(),
            cells.len(),
            matched
        );
        for c in improved {
            let (bm, _) = base[&c.key];
            eprintln!(
                "  {}: {:.3} → {:.3} ({:.2}x)",
                c.key,
                bm,
                c.mops,
                c.mops / bm
            );
        }
    }
}
