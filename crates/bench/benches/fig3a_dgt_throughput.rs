//! Figure 3a (experiment E1): throughput of the DGT external BST under the
//! update-intensive, balanced and search-intensive mixes, one Criterion series
//! per reclaimer.
//!
//! CI-scale parameters (key range 65 536, host core count threads); the
//! comparison of interest is the ordering of the reclaimers, reproduced in
//! full by `cargo run -p nbr-bench --release --bin experiments -- --e1-tree`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::DgtTreeFamily;
use smr_harness::{run_with, WorkloadMix};

const KEY_RANGE: u64 = 65_536;

fn bench_fig3a(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    for (mix, mix_label) in [
        (WorkloadMix::UPDATE_HEAVY, "50i-50d"),
        (WorkloadMix::BALANCED, "25i-25d"),
        (WorkloadMix::READ_HEAVY, "5i-5d"),
    ] {
        let mut group = c.benchmark_group(format!("fig3a_dgt_{mix_label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for &kind in helpers::bench_smr_set() {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &kind,
                |b, &kind| {
                    b.iter_custom(|iters| {
                        let spec = helpers::spec_for_iters(mix, KEY_RANGE, threads, iters);
                        let r = run_with::<DgtTreeFamily>(kind, &spec, helpers::bench_config());
                        r.duration
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig3a);
criterion_main!(benches);
