//! The lazy list of Heller et al. (LL05) — "a lazy concurrent list-based set".
//!
//! * `contains` traverses without any synchronization and decides membership
//!   from the target node's `marked` flag.
//! * `insert` / `remove` traverse optimistically, lock the two affected nodes
//!   (`pred`, `curr`), validate (`!pred.marked && !curr.marked &&
//!   pred.next == curr`), and then perform the update; `remove` marks the node
//!   (logical delete) before unlinking it (physical delete).
//!
//! This is the paper's canonical "synchronization-free search followed by an
//! update" structure (Figure 2): the search is the NBR Φ_read, the lock /
//! validate / update sequence is the Φ_write, and the records reserved at the
//! phase boundary are exactly `pred` and `curr` (2 reservations, matching the
//! paper's observation in Section 4.4).
//!
//! Note that HP cannot protect this list without losing the wait-freedom of
//! `contains` (Table 1 row LL05); like the paper's artifact we still *run* HP
//! on it using the IBR-benchmark-style validation (re-read of the source
//! field), which is what produces HP's large slowdown in Figure 3b.

use crate::{check_key, ConcurrentSet, KEY_MAX, KEY_MIN};
use smr_common::{recycle, Atomic, NodeHeader, SeqLock, Shared, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};

/// A node of the lazy list.
pub struct Node {
    header: NodeHeader,
    key: u64,
    marked: AtomicBool,
    lock: SeqLock,
    next: Atomic<Node>,
}
smr_common::impl_smr_node!(Node);

impl Node {
    fn new(key: u64) -> Self {
        Self {
            header: NodeHeader::new(),
            key,
            marked: AtomicBool::new(false),
            lock: SeqLock::new(),
            next: Atomic::null(),
        }
    }

    #[inline]
    fn is_marked(&self) -> bool {
        self.marked.load(Ordering::Acquire)
    }
}

/// The lazy concurrent list-based set.
pub struct LazyList<S: Smr> {
    smr: S,
    head: Box<Node>,
}

impl<S: Smr> LazyList<S> {
    /// Creates an empty list whose reclaimer is configured by `config`.
    pub fn new(config: SmrConfig) -> Self {
        Self::with_smr(S::new(config))
    }

    /// Creates an empty list around an existing reclaimer instance.
    pub fn with_smr(smr: S) -> Self {
        let tail = recycle::alloc_node_raw(Node::new(KEY_MAX));
        // lint:allow-box-node — head sentinel: owned by the structure,
        // never published for retirement, freed by Box's own drop.
        let head = Box::new(Node {
            header: NodeHeader::new(),
            key: KEY_MIN,
            marked: AtomicBool::new(false),
            lock: SeqLock::new(),
            next: Atomic::from_raw(tail),
        });
        Self { smr, head }
    }

    #[inline]
    fn head_shared(&self) -> Shared<Node> {
        Shared::from_raw(&*self.head as *const Node as *mut Node)
    }

    /// One Φ_read attempt: walk to the first node with `key >= target`.
    /// Returns `(pred, curr, slot_of_curr)` or `None` when neutralized.
    #[inline]
    fn traverse(
        &self,
        ctx: &mut S::ThreadCtx,
        key: u64,
    ) -> Option<(Shared<Node>, Shared<Node>, usize)> {
        let mut pred = self.head_shared();
        let mut slot = 0usize;
        // SAFETY: `pred` starts at the sentinel (never reclaimed); thereafter
        // every dereference is of a pointer obtained in the current read phase
        // and guarded by the SMR protocol (protect + checkpoint).
        let mut curr = self.smr.protect(ctx, slot, unsafe { &pred.deref().next });
        if self.smr.checkpoint(ctx) {
            return None;
        }
        loop {
            // SAFETY: `curr` is covered by `slot` (the `protect` above).
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.key >= key {
                return Some((pred, curr, slot));
            }
            pred = curr;
            slot ^= 1;
            // SAFETY: `pred` (the old `curr`) is still covered by the other
            // slot until this `protect` returns.
            curr = self.smr.protect(ctx, slot, unsafe { &pred.deref().next });
            if self.smr.checkpoint(ctx) {
                return None;
            }
        }
    }

    /// Heller et al.'s validation: both nodes unmarked and still adjacent.
    #[inline]
    fn validate(pred: &Node, curr_ptr: Shared<Node>, pred_is_head: bool) -> bool {
        let pred_ok = pred_is_head || !pred.is_marked();
        // SAFETY: the caller reserved `curr_ptr` before calling `validate`.
        pred_ok
            && !unsafe { curr_ptr.deref() }.is_marked()
            && pred.next.load(Ordering::Acquire).ptr_eq(curr_ptr)
    }
}

impl<S: Smr> ConcurrentSet<S> for LazyList<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let found = loop {
            self.smr.begin_read_phase(ctx);
            let Some((_pred, curr, _)) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `curr` is still protected by its traversal slot.
            let curr_ref = unsafe { curr.deref() };
            let found = curr_ref.key == key && !curr_ref.is_marked();
            // Read-only operation: no reservations needed.
            self.smr.end_read_phase(ctx, &[]);
            break found;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        found
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let inserted = loop {
            self.smr.begin_read_phase(ctx);
            let Some((pred, curr, _)) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `curr` is still protected by its traversal slot.
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.key == key && !curr_ref.is_marked() {
                // Already present; linearizes at the `marked` read.
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }

            // Φ_write: reserve exactly the records the update touches.
            self.smr
                .end_read_phase(ctx, &[pred.untagged_usize(), curr.untagged_usize()]);

            // SAFETY: `pred` was just reserved by `end_read_phase`.
            let pred_ref = unsafe { pred.deref() };
            let pred_is_head = pred.ptr_eq(self.head_shared());
            pred_ref.lock.lock();
            curr_ref.lock.lock();
            if !Self::validate(pred_ref, curr, pred_is_head) {
                curr_ref.lock.unlock();
                pred_ref.lock.unlock();
                continue;
            }
            if curr_ref.key == key {
                // Validated unmarked duplicate.
                curr_ref.lock.unlock();
                pred_ref.lock.unlock();
                break false;
            }
            // Allocation happens in the write phase (system calls are not
            // permitted in Φ_read — Section 4.1, Phase 1).
            let mut node = Node::new(key);
            node.next = Atomic::new(curr);
            let node = self.smr.alloc(ctx, node);
            pred_ref.next.store(node, Ordering::Release);
            curr_ref.lock.unlock();
            pred_ref.lock.unlock();
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        inserted
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let removed = loop {
            self.smr.begin_read_phase(ctx);
            let Some((pred, curr, _)) = self.traverse(ctx, key) else {
                continue;
            };
            // SAFETY: `curr` is still protected by its traversal slot.
            let curr_ref = unsafe { curr.deref() };
            if curr_ref.key != key || curr_ref.is_marked() {
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }

            self.smr
                .end_read_phase(ctx, &[pred.untagged_usize(), curr.untagged_usize()]);

            // SAFETY: `pred` was just reserved by `end_read_phase`.
            let pred_ref = unsafe { pred.deref() };
            let pred_is_head = pred.ptr_eq(self.head_shared());
            pred_ref.lock.lock();
            curr_ref.lock.lock();
            if !Self::validate(pred_ref, curr, pred_is_head) {
                curr_ref.lock.unlock();
                pred_ref.lock.unlock();
                continue;
            }
            debug_assert_eq!(curr_ref.key, key);
            // Logical delete, then physical unlink.
            curr_ref.marked.store(true, Ordering::Release);
            let next = curr_ref.next.load(Ordering::Acquire);
            pred_ref.next.store(next, Ordering::Release);
            curr_ref.lock.unlock();
            pred_ref.lock.unlock();
            // The node is unlinked: hand it to the reclaimer.
            // SAFETY: `curr` was just unlinked by this thread (it held both
            // locks), so it is retired exactly once.
            unsafe { self.smr.retire(ctx, curr) };
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        removed
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.smr.begin_op(ctx);
        self.smr.begin_read_phase(ctx);
        let mut count = 0usize;
        let mut curr = self.head.next.load(Ordering::Acquire);
        loop {
            // SAFETY: `size` runs inside a read phase; under the reclaimers
            // this structure is used with, every node reachable from the
            // head stays dereferenceable for the announced phase.
            let node = unsafe { curr.deref() };
            if node.key == KEY_MAX {
                break;
            }
            if !node.is_marked() {
                count += 1;
            }
            curr = node.next.load(Ordering::Acquire);
        }
        self.smr.end_read_phase(ctx, &[]);
        self.smr.end_op(ctx);
        count
    }

    fn name() -> &'static str {
        "lazy-list"
    }
}

impl<S: Smr> Drop for LazyList<S> {
    fn drop(&mut self) {
        // All threads have deregistered; free every node still linked
        // (unlinked nodes are owned by the reclaimer's limbo bags).
        let mut curr = self.head.next.load(Ordering::Relaxed);
        while !curr.is_null() {
            // SAFETY: `&mut self` — no concurrent access remains; every
            // linked node is exclusively ours and freed exactly once.
            let next = unsafe { curr.deref() }.next.load(Ordering::Relaxed);
            // SAFETY: as above.
            unsafe { recycle::free_node_raw(curr.as_raw()) };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::{Nbr, NbrPlus};
    use smr_baselines::{Debra, HazardPointers, Ibr, Leaky};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let list = LazyList::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(!list.contains(&mut ctx, 5));
        assert!(list.insert(&mut ctx, 5));
        assert!(!list.insert(&mut ctx, 5));
        assert!(list.contains(&mut ctx, 5));
        assert!(list.insert(&mut ctx, 3));
        assert!(list.insert(&mut ctx, 7));
        assert_eq!(list.size(&mut ctx), 3);
        assert!(list.remove(&mut ctx, 5));
        assert!(!list.remove(&mut ctx, 5));
        assert!(!list.contains(&mut ctx, 5));
        assert_eq!(list.size(&mut ctx), 2);
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_under_nbr_plus() {
        let list = LazyList::<NbrPlus>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xA11CE);
    }

    #[test]
    fn model_check_under_nbr() {
        let list = LazyList::<Nbr>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xB0B);
    }

    #[test]
    fn model_check_under_debra() {
        let list = LazyList::<Debra>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xCAFE);
    }

    #[test]
    fn model_check_under_hazard_pointers() {
        let list = LazyList::<HazardPointers>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xD00D);
    }

    #[test]
    fn model_check_under_ibr() {
        let list = LazyList::<Ibr>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xE44);
    }

    #[test]
    fn model_check_under_leaky() {
        let list = LazyList::<Leaky>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 0xF00);
    }

    #[test]
    fn concurrent_disjoint_stress_nbr_plus() {
        let list = Arc::new(LazyList::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(list, 4, 3_000);
    }

    #[test]
    fn concurrent_disjoint_stress_hp() {
        let list = Arc::new(LazyList::<HazardPointers>::new(SmrConfig::for_tests()));
        disjoint_key_stress(list, 4, 3_000);
    }

    #[test]
    fn memory_is_reclaimed_under_churn() {
        let list = LazyList::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        for round in 0..200u64 {
            for k in 1..=20u64 {
                list.insert(&mut ctx, k * 13 + round % 7);
            }
            for k in 1..=20u64 {
                list.remove(&mut ctx, k * 13 + round % 7);
            }
        }
        list.smr().flush(&mut ctx);
        let stats = list.smr().thread_stats(&ctx);
        assert!(stats.retires > 1_000);
        assert!(
            stats.frees > stats.retires / 2,
            "most retired nodes must actually be freed (frees={}, retires={})",
            stats.frees,
            stats.retires
        );
        list.smr().unregister(&mut ctx);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_keys_are_rejected() {
        let list = LazyList::<Leaky>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        list.insert(&mut ctx, KEY_MAX);
    }
}
