//! Workload specification and key generation.
//!
//! The paper's evaluation (Section 7) sweeps three operation mixes —
//! update-intensive (50% insert / 50% delete), balanced (25/25/50) and
//! search-intensive (5/5/90) — over several key-range sizes, prefilling each
//! structure to half the key range before the timed trial. [`WorkloadMix`] and
//! [`WorkloadSpec`] encode exactly those parameters.
//!
//! Beyond the paper's uniform draws, [`KeyDist::Zipf`] provides a skewed
//! (YCSB-style Zipfian) key distribution: rank `k` is drawn with probability
//! ∝ `1/k^θ`, so a handful of hot keys absorbs most operations — the
//! contention profile of caches and social graphs. Sampling is the standard
//! YCSB quick-Zipf transform (one uniform draw, two `powf`s), fully
//! deterministic under the vendored `rand` stub. Note that rank 1 maps to
//! key 1: for the list structures the hot keys sit near the head, which is
//! the interesting (contended) case.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Duration;

/// Fractions of each operation type, in percent. The remainder of
/// `insert + remove` is `contains`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Percentage of insert operations.
    pub insert_pct: u8,
    /// Percentage of remove operations.
    pub remove_pct: u8,
}

impl WorkloadMix {
    /// 50% insert / 50% delete (the paper's "update-intensive" mix).
    pub const UPDATE_HEAVY: Self = Self {
        insert_pct: 50,
        remove_pct: 50,
    };
    /// 25% insert / 25% delete / 50% search ("balanced").
    pub const BALANCED: Self = Self {
        insert_pct: 25,
        remove_pct: 25,
    };
    /// 5% insert / 5% delete / 90% search ("search-intensive").
    pub const READ_HEAVY: Self = Self {
        insert_pct: 5,
        remove_pct: 5,
    };

    /// Creates a mix, checking that the percentages are sane.
    pub fn new(insert_pct: u8, remove_pct: u8) -> Self {
        assert!(insert_pct as u16 + remove_pct as u16 <= 100);
        Self {
            insert_pct,
            remove_pct,
        }
    }

    /// Percentage of contains operations.
    pub fn contains_pct(&self) -> u8 {
        100 - self.insert_pct - self.remove_pct
    }

    /// The label the paper uses for this mix (e.g. `50i-50d`).
    pub fn label(&self) -> String {
        format!("{}i-{}d", self.insert_pct, self.remove_pct)
    }
}

/// How keys are drawn from `1..=key_range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely (the paper's workloads).
    Uniform,
    /// Zipfian with parameter `θ ∈ (0, 1)`: key `k` is drawn with
    /// probability proportional to `1/k^θ`. `θ ≈ 0.99` is the classic
    /// YCSB "zipfian" hot-spot workload.
    Zipf(f64),
}

impl KeyDist {
    /// Short label for benchmark output (`uniform`, `zipf0.99`).
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipf(theta) => format!("zipf{theta}"),
        }
    }
}

/// When a trial stops.
#[derive(Debug, Clone, Copy)]
pub enum StopCondition {
    /// Run for a fixed wall-clock duration (the paper runs 5-second trials).
    Duration(Duration),
    /// Run until the given total number of operations has completed across all
    /// threads (used by the Criterion benches, which need a deterministic
    /// amount of work per measurement).
    TotalOps(u64),
}

/// A complete benchmark configuration for one trial.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub mix: WorkloadMix,
    /// Keys are drawn uniformly from `1..=key_range`.
    pub key_range: u64,
    /// Number of keys inserted before the timed portion (the paper prefills to
    /// half the key range).
    pub prefill: u64,
    /// Number of worker threads.
    pub threads: usize,
    /// Stop condition for the timed portion.
    pub stop: StopCondition,
    /// Optional stalled thread (experiment E2): one extra thread that begins an
    /// operation and then sleeps for the entire trial.
    pub stalled_thread: bool,
    /// Seed for the per-thread RNGs (trials are reproducible given a seed).
    pub seed: u64,
    /// How keys are drawn (uniform by default).
    pub key_dist: KeyDist,
    /// Optional fault-injection plan (stalls, departures, black-holed
    /// pings); `None` runs the trial fault-free.
    pub fault_plan: Option<std::sync::Arc<crate::fault::FaultPlan>>,
    /// Tier-1 telemetry: when true (the default) workers sample operation
    /// latency into per-thread histograms (one clock pair per
    /// [`crate::driver::OP_SAMPLE_PERIOD`] ops). `false` bypasses every
    /// harness-side clock read — the A/B baseline for measuring the
    /// telemetry layer's own overhead.
    pub telemetry: bool,
}

impl WorkloadSpec {
    /// A specification with the paper's defaults: prefill to half the key
    /// range, no stalled thread.
    pub fn new(mix: WorkloadMix, key_range: u64, threads: usize, stop: StopCondition) -> Self {
        Self {
            mix,
            key_range,
            prefill: key_range / 2,
            threads,
            stop,
            stalled_thread: false,
            seed: 0x5EED_0BAD_F00D,
            key_dist: KeyDist::Uniform,
            fault_plan: None,
            telemetry: true,
        }
    }

    /// Enables the E2 stalled-thread scenario.
    pub fn with_stalled_thread(mut self, stalled: bool) -> Self {
        self.stalled_thread = stalled;
        self
    }

    /// Overrides the prefill size.
    pub fn with_prefill(mut self, prefill: u64) -> Self {
        self.prefill = prefill;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the key distribution.
    pub fn with_key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Attaches a fault-injection plan (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = Some(std::sync::Arc::new(plan));
        self
    }

    /// Enables or disables tier-1 telemetry (op-latency sampling); see the
    /// field docs. `with_telemetry(false)` is the A/B overhead baseline.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// The YCSB quick-Zipfian sampler (Gray et al.'s transform): one uniform
/// draw in `[0, 1)` is mapped to a rank in `1..=n` with `P(k) ∝ 1/k^θ`.
/// Construction computes the harmonic normalizer `ζ(n, θ)` once — O(n), paid
/// per generator, amortized over the whole trial.
struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    fn new(n: u64, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "Zipf theta must lie in (0, 1), got {theta}"
        );
        assert!(n >= 2, "Zipf needs a key range of at least 2");
        let zeta = |n: u64| (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum::<f64>();
        let zetan = zeta(n);
        let zeta2 = zeta(2);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        // 53 uniform mantissa bits → u ∈ [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let k = 1 + (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.clamp(1, self.n)
    }
}

enum KeySampler {
    Uniform(Uniform<u64>),
    Zipf(ZipfSampler),
}

/// One thread's operation generator.
pub struct OpGenerator {
    rng: SmallRng,
    key_dist: KeySampler,
    insert_threshold: u8,
    remove_threshold: u8,
}

/// A single generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert the key.
    Insert(u64),
    /// Remove the key.
    Remove(u64),
    /// Look the key up.
    Contains(u64),
}

impl OpGenerator {
    /// Creates the generator for one worker thread.
    pub fn new(spec: &WorkloadSpec, thread_id: usize) -> Self {
        let key_dist = match spec.key_dist {
            KeyDist::Uniform => {
                KeySampler::Uniform(Uniform::new_inclusive(1, spec.key_range.max(1)))
            }
            KeyDist::Zipf(theta) => KeySampler::Zipf(ZipfSampler::new(spec.key_range, theta)),
        };
        Self {
            rng: SmallRng::seed_from_u64(spec.seed ^ (0x9E37_79B9 * (thread_id as u64 + 1))),
            key_dist,
            insert_threshold: spec.mix.insert_pct,
            remove_threshold: spec.mix.insert_pct + spec.mix.remove_pct,
        }
    }

    /// Draws the next operation.
    #[inline]
    pub fn next_op(&mut self) -> Op {
        let key = self.next_key();
        let roll: u8 = self.rng.gen_range(0..100);
        if roll < self.insert_threshold {
            Op::Insert(key)
        } else if roll < self.remove_threshold {
            Op::Remove(key)
        } else {
            Op::Contains(key)
        }
    }

    /// Draws a key only (used for prefilling).
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        match &self.key_dist {
            KeySampler::Uniform(u) => u.sample(&mut self.rng),
            KeySampler::Zipf(z) => z.sample(&mut self.rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_percentages_add_up() {
        assert_eq!(WorkloadMix::UPDATE_HEAVY.contains_pct(), 0);
        assert_eq!(WorkloadMix::BALANCED.contains_pct(), 50);
        assert_eq!(WorkloadMix::READ_HEAVY.contains_pct(), 90);
        assert_eq!(WorkloadMix::UPDATE_HEAVY.label(), "50i-50d");
    }

    #[test]
    #[should_panic]
    fn overfull_mix_rejected() {
        let _ = WorkloadMix::new(80, 30);
    }

    #[test]
    fn generator_respects_mix_roughly() {
        let spec = WorkloadSpec::new(WorkloadMix::BALANCED, 1000, 1, StopCondition::TotalOps(1));
        let mut g = OpGenerator::new(&spec, 0);
        let mut ins = 0;
        let mut rem = 0;
        let mut con = 0;
        let n = 20_000;
        for _ in 0..n {
            match g.next_op() {
                Op::Insert(k) | Op::Remove(k) | Op::Contains(k) if k == 0 || k > 1000 => {
                    panic!("key out of range")
                }
                Op::Insert(_) => ins += 1,
                Op::Remove(_) => rem += 1,
                Op::Contains(_) => con += 1,
            }
        }
        let pct = |x: i32| (x * 100) / n;
        assert!((20..=30).contains(&pct(ins)), "insert share {}%", pct(ins));
        assert!((20..=30).contains(&pct(rem)), "remove share {}%", pct(rem));
        assert!(
            (45..=55).contains(&pct(con)),
            "contains share {}%",
            pct(con)
        );
    }

    #[test]
    fn zipf_keys_stay_in_range_and_are_deterministic() {
        let spec = WorkloadSpec::new(WorkloadMix::BALANCED, 1_000, 1, StopCondition::TotalOps(1))
            .with_key_dist(KeyDist::Zipf(0.99));
        let mut a = OpGenerator::new(&spec, 0);
        let mut b = OpGenerator::new(&spec, 0);
        for _ in 0..10_000 {
            let k = a.next_key();
            assert!((1..=1_000).contains(&k), "key {k} out of range");
            assert_eq!(k, b.next_key(), "same seed must give the same stream");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let spec = WorkloadSpec::new(WorkloadMix::BALANCED, 10_000, 1, StopCondition::TotalOps(1))
            .with_key_dist(KeyDist::Zipf(0.99));
        let mut g = OpGenerator::new(&spec, 3);
        let n = 50_000;
        let mut top_decile = 0usize;
        let mut rank1 = 0usize;
        for _ in 0..n {
            let k = g.next_key();
            if k <= 1_000 {
                top_decile += 1;
            }
            if k == 1 {
                rank1 += 1;
            }
        }
        // Under uniform the top decile would get ~10%; θ=0.99 concentrates
        // well over half the mass there, and rank 1 alone far exceeds 1/n.
        assert!(
            top_decile as f64 / n as f64 > 0.5,
            "top decile got only {top_decile}/{n}"
        );
        assert!(rank1 as f64 / n as f64 > 0.02, "rank 1 got {rank1}/{n}");
    }

    #[test]
    fn key_dist_labels() {
        assert_eq!(KeyDist::Uniform.label(), "uniform");
        assert_eq!(KeyDist::Zipf(0.75).label(), "zipf0.75");
    }

    #[test]
    fn generators_are_deterministic_per_seed_and_thread() {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            100,
            2,
            StopCondition::TotalOps(1),
        );
        let mut a = OpGenerator::new(&spec, 0);
        let mut b = OpGenerator::new(&spec, 0);
        let mut c = OpGenerator::new(&spec, 1);
        let seq_a: Vec<Op> = (0..32).map(|_| a.next_op()).collect();
        let seq_b: Vec<Op> = (0..32).map(|_| b.next_op()).collect();
        let seq_c: Vec<Op> = (0..32).map(|_| c.next_op()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }
}
