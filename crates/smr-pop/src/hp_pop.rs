//! HP-POP — hazard-pointer-style reclamation with Publish-on-Ping
//! reservations.
//!
//! Classic hazard pointers pay, on **every pointer hop**, a `SeqCst`
//! announcement store plus a `SeqCst` validating re-load of the source — the
//! per-access overhead the paper's list experiments identify as HP's
//! dominant cost (2–3.4× slower than NBR+ on the lists). HP-POP (after the
//! Publish-on-Ping reclaimers of PPoPP 2025) moves the per-hop reservation
//! into **thread-private** memory:
//!
//! * [`Smr::protect`] is an `Acquire` load of the source plus a plain store
//!   into a private slot array in the thread context. No shared store, no
//!   fence, no validation loop.
//! * A reclaimer **pings** every registered thread over the shared
//!   [`PingChannel`] before it frees anything. Each pinged thread, at its
//!   next hook site (the per-hop `checkpoint`, or an operation boundary),
//!   copies all `K` private slots into its shared *published* slots and
//!   acknowledges. The reclaimer then scans the published slots (plus its
//!   own private ones) and frees the unreserved prefix it retired before
//!   the ping — the same sorted-address sweep
//!   ([`LimboBag::reclaim_prefix_unreserved`]) HP and NBR use.
//! * A silent thread times out the handshake after
//!   `SmrConfig::ack_spin_limit` iterations and the round is conceded,
//!   exactly like a timed-out neutralization round.
//!
//! Why no validation is needed: a record can only be freed after a ping
//! that every thread acknowledged, each thread's private slot write is
//! sequenced before any acknowledgement it issues later, and a pointer
//! loaded *after* the acknowledgement was read from a record that is
//! reachable — whose outgoing pointer the pre-ping unlink already updated.
//! The full argument, including why this closes the baseline
//! `protect_copy` scan race by construction, is in DESIGN.md
//! ("Publish-on-Ping on the cooperative channel").
//!
//! Garbage stays bounded as with HP: at most `HiWatermark` records per bag
//! plus `K` published (possibly stale — staleness only pins *more*)
//! reservations per thread. A stalled reader pins at most its `K` published
//! slots, not an epoch's worth of garbage.

use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    Atomic, BlockPool, CachePadded, LimboBag, Magazine, OrphanPool, PingChannel, PingOutcome,
    Registry, Retired, ScanCombiner, ScanPolicy, ScanState, Shared, Smr, SmrConfig, SmrNode,
    ThreadStats,
};
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::Arc;

struct PublishedSlots {
    /// The owner's hazard reservations as of its last acknowledged ping.
    /// Written by the owner (publish-on-ping), read by reclaimers after a
    /// completed handshake. A zero entry is empty.
    slots: Box<[AtomicUsize]>,
}

/// Per-thread context for [`HpPop`].
pub struct HpPopCtx {
    tid: usize,
    /// The private hazard slot array: plain unshared memory written on every
    /// protect; it reaches other threads only by being copied into the
    /// published slots when a ping arrives.
    private: Box<[usize]>,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch for the per-scan reservation snapshot.
    protected: Vec<usize>,
    /// Paces retire-path handshakes when the bag sits above the watermark
    /// (e.g. every scan times out against a silent thread): at least
    /// `empty_freq` retires must separate two retire-triggered scans.
    retires_since_scan: usize,
    mag: Magazine,
    stats: ThreadStats,
}

/// The HP-POP reclaimer.
pub struct HpPop {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    ping: PingChannel,
    published: Vec<CachePadded<PublishedSlots>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
    /// Flat-combined scan publication: a watermark-triggered thread that
    /// finds a peer's ping handshake already in flight hands its limbo over
    /// instead of launching a second full ping round.
    combiner: ScanCombiner,
}

impl HpPop {
    /// Copies the private slot array into `tid`'s published slots, skipping
    /// stores whose value is unchanged (a stable traversal re-publishes the
    /// same hazards; skipping the store avoids bouncing the line). `Release`
    /// suffices: reclaimers only trust the slots after observing the
    /// `SeqCst` acknowledgement sequenced after these stores.
    fn publish_from(&self, tid: usize, private: &[usize]) {
        for (shared, &value) in self.published[tid].slots.iter().zip(private) {
            if shared.load(Ordering::Relaxed) != value {
                shared.store(value, Ordering::Release);
            }
        }
    }

    /// Services an incoming ping, if any: promote the private reservations
    /// to the published slots, then acknowledge.
    #[inline]
    fn poll_ping(&self, ctx: &mut HpPopCtx) {
        if let Some(seq) = self.ping.poll(ctx.tid) {
            self.publish_from(ctx.tid, &ctx.private);
            self.ping.ack(ctx.tid, seq);
            ctx.stats.pings_published += 1;
        }
    }

    /// Ping every registered thread, wait for the handshake, and free every
    /// record retired before the ping that no published (or own private)
    /// reservation covers.
    fn reclaim_with_pings(&self, ctx: &mut HpPopCtx) {
        // Flat combining: adopt peers' published limbo bags before the
        // pre-ping tail is captured, so one handshake round covers them.
        // The prefix-sweep safety argument applies unchanged: adopted
        // records were retired (by their publisher) before this scan's
        // ping, exactly like this thread's own pre-ping retires.
        if self.config.combine {
            let (published, bags) = self.combiner.adopt();
            if bags > 0 {
                ctx.stats.combine_adoptions += bags;
                trace::emit(
                    ctx.tid,
                    TraceKind::CombineAdopt,
                    published.len() as u64,
                    bags,
                );
            }
            for r in published {
                ctx.limbo.push(r);
            }
        }
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag before the empty check, so orphans are
        // freed even by threads with nothing of their own to reclaim
        // (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        let tail = ctx.limbo.len();
        if tail == 0 {
            return;
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        ctx.retires_since_scan = 0;
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, tail as u64, 0);
        let ping_sw = telemetry::stopwatch_if(self.config.telemetry);
        let (seq, sent) = self.ping.ping_all(ctx.tid, &self.registry);
        ctx.stats.signals_sent += sent;
        let tid = ctx.tid;
        let outcome = {
            let private = &ctx.private;
            self.ping.await_acks(
                tid,
                seq,
                &self.registry,
                self.config.ack_spin_limit,
                |_| false,
                // Service our own channel while we wait, so two threads that
                // ping each other concurrently both complete instead of both
                // burning their spin budget.
                || {
                    if let Some(own) = self.ping.poll(tid) {
                        self.publish_from(tid, private);
                        self.ping.ack(tid, own);
                    }
                },
            )
        };
        let mut freed_total = 0u64;
        match outcome {
            PingOutcome::TimedOut => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_stall.record(ping_sw.elapsed_ns());
                }
                ctx.stats.ping_concessions += 1;
                ctx.stats.reclaim_skips += 1;
            }
            PingOutcome::AllAcked => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_rtt.record(ping_sw.elapsed_ns());
                }
                // Single-fence scan over the published slots (DESIGN.md).
                fence(Ordering::SeqCst);
                ctx.protected.clear();
                for t in self.registry.active_tids() {
                    if t == tid {
                        continue;
                    }
                    for s in self.published[t].slots.iter() {
                        let addr = s.load(Ordering::Acquire);
                        if addr != 0 {
                            ctx.protected.push(addr);
                        }
                    }
                }
                // Our own reservations need no publish: the private slots
                // are directly visible to us, and nobody else is scanning
                // our bag.
                for &addr in ctx.private.iter() {
                    if addr != 0 {
                        ctx.protected.push(addr);
                    }
                }
                ctx.protected.sort_unstable();
                ctx.protected.dedup();
                let before = ctx.limbo.len();
                // SAFETY: only the prefix retired (= unlinked) before the
                // ping is swept. Any thread that could still dereference one
                // of those records loaded its pointer before acknowledging
                // the ping (pointers loaded after the ack come from
                // reachable records, whose outgoing pointers the unlink
                // already updated), so the pointer sat in its private slots
                // at publish time and appears in `protected`.
                let freed = unsafe {
                    ctx.limbo.reclaim_prefix_unreserved(
                        tail,
                        &ctx.protected,
                        &mut ctx.stats,
                        &mut ctx.mag,
                    )
                };
                if freed == 0 && before > 0 {
                    ctx.stats.reclaim_skips += 1;
                }
                freed_total = freed as u64;
            }
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed_total, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    /// Watermark-triggered entry: run the ping handshake directly when no
    /// peer's scan is mid-flight, otherwise publish this thread's limbo to
    /// the combiner so the active scanner's single ping round sweeps both
    /// bags. The heartbeat (`end_op`), `flush`, and `unregister` scans stay
    /// direct — they must make local progress regardless of peers.
    fn scan_or_publish(&self, ctx: &mut HpPopCtx) {
        if !self.config.combine {
            self.reclaim_with_pings(ctx);
            return;
        }
        if self.combiner.try_begin() {
            self.reclaim_with_pings(ctx);
            self.combiner.finish();
            return;
        }
        let records = ctx.limbo.drain();
        let n = records.len() as u64;
        match self.combiner.publish(ctx.tid, records) {
            Ok(()) => {
                ctx.stats.combine_publishes += 1;
                trace::emit(ctx.tid, TraceKind::CombinePublish, n, 0);
                // The bag is empty now — reset the scan pacing as if a scan
                // had run (the adopter does the actual freeing).
                ctx.retires_since_scan = 0;
                ctx.scan.note_scan();
            }
            Err(records) => {
                // Slot still full (the scanner hasn't adopted the previous
                // hand-off yet): keep the records and retry next trigger.
                for r in records {
                    ctx.limbo.push(r);
                }
            }
        }
    }
}

impl Smr for HpPop {
    type ThreadCtx = HpPopCtx;

    const NAME: &'static str = "HP-POP";
    const USES_PROTECTION: bool = true;
    // Re-derived when the interval family (IBR, HE) flipped to `true`: the
    // ping-snapshot scan does NOT make marked-chain traversal safe, because
    // the danger predates the hazard. A record reached through a marked-
    // *frozen* pointer out of an unlinked record may have been retired,
    // swept and recycled under an earlier ping this thread already
    // acknowledged — before this thread ever loaded the pointer, so no
    // private slot existed for that publish to surface, and no address
    // re-validation can notice (the re-read targets the frozen field, which
    // still holds the stale pointer). Interval schemes close this with the
    // era hull between their announcements; an address-based scheme has no
    // analogous "interval of addresses", so the HP family keeps the
    // Harris-Michael fallback (Table 1's applicability distinction; full
    // derivation in DESIGN.md, "Why the HP family keeps the Harris-Michael
    // fallback").
    const CAN_TRAVERSE_UNLINKED: bool = false;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let published = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(PublishedSlots {
                    slots: (0..config.hazards_per_thread)
                        .map(|_| AtomicUsize::new(0))
                        .collect(),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            ping: PingChannel::new(config.max_threads, config.signal_cost_ns),
            published,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            combiner: ScanCombiner::new(config.max_threads),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> HpPopCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        for s in self.published[tid].slots.iter() {
            s.store(0, Ordering::SeqCst);
        }
        self.ping.reset_slot(tid);
        HpPopCtx {
            tid,
            private: vec![0usize; self.config.hazards_per_thread].into_boxed_slice(),
            limbo: LimboBag::with_capacity_and_batch(
                self.config.hi_watermark + 1,
                self.config.retire_batch_cap(),
            ),
            scan: ScanState::new(),
            protected: Vec::with_capacity(self.config.hazards_per_thread * self.config.max_threads),
            retires_since_scan: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut HpPopCtx) {
        smr_common::check::clear_claims(ctx.tid);
        ctx.private.fill(0);
        self.publish_from(ctx.tid, &ctx.private);
        // Last chance to free what is already safe; the rest is orphaned.
        self.reclaim_with_pings(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        // Departed-slot exemption: set before leaving the registry so a
        // reclaimer mid-`await_acks` on a stale active-set snapshot stops
        // waiting on this thread immediately.
        self.ping.mark_departed(ctx.tid);
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut HpPopCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    /// The Publish-on-Ping fast path: an `Acquire` load plus a plain store
    /// to private memory. No announcement store, no fence, no validation —
    /// publication happens only when a reclaimer pings (serviced by the
    /// per-hop [`Smr::checkpoint`] every structure already executes).
    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut HpPopCtx, slot: usize, src: &Atomic<T>) -> Shared<T> {
        debug_assert!(slot < ctx.private.len(), "hazard slot index out of range");
        let p = src.load(Ordering::Acquire);
        ctx.private[slot] = p.untagged_usize();
        // Oracle mirror: an *unmarked* load is binding even before any
        // publish — no record can be freed without a handshake, this
        // thread's ack publishes every private slot first, and an unmarked
        // pointer loaded after the ack comes from a reachable record
        // (DESIGN.md), so a free of its claimed address means the protection
        // contract broke. A *marked* load is not covered by that argument:
        // it may read the frozen next field of an already-unlinked record
        // and return pre-ping garbage a concurrent handshake is entitled to
        // free. That is safe — `CAN_TRAVERSE_UNLINKED = false` structures
        // never dereference a marked hop (they restart) — so mirror the slot
        // as empty rather than claiming an address the scheme does not
        // protect.
        let claimed = if p.tag() == 0 { p.untagged_usize() } else { 0 };
        smr_common::check::claim_addr(ctx.tid, slot, claimed);
        p
    }

    /// A plain private copy. Unlike the baseline HP `protect_copy`, there is
    /// no window in which a concurrent scan can observe the destination
    /// empty and the source already overwritten: publication is an atomic
    /// snapshot of all `K` private slots taken at ping time.
    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        ctx: &mut HpPopCtx,
        dst_slot: usize,
        _src_slot: usize,
        ptr: Shared<T>,
    ) {
        ctx.private[dst_slot] = ptr.untagged_usize();
        smr_common::check::claim_addr(ctx.tid, dst_slot, ptr.untagged_usize());
    }

    #[inline]
    fn clear_protections(&self, ctx: &mut HpPopCtx) {
        // Oracle mirror: retract before the real clear (claims stay a subset
        // of what the next ack would publish).
        smr_common::check::clear_claims(ctx.tid);
        ctx.private.fill(0);
        // The published slots are left stale: they can only pin more
        // (at most K records per thread, the same slack as HP's bound) and
        // are overwritten wholesale at the next publish.
    }

    /// Per-hop cooperative ping-delivery point (no restart is ever needed).
    #[inline]
    fn checkpoint(&self, ctx: &mut HpPopCtx) -> bool {
        self.poll_ping(ctx);
        false
    }

    #[inline]
    fn begin_op(&self, ctx: &mut HpPopCtx) {
        self.poll_ping(ctx);
    }

    #[inline]
    fn end_op(&self, ctx: &mut HpPopCtx) {
        smr_common::check::clear_claims(ctx.tid);
        ctx.private.fill(0);
        self.poll_ping(ctx);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.reclaim_with_pings(ctx);
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut HpPopCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: stage the record; the watermark check is
        // amortized to batch flushes (bound slack: batch cap − 1).
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
        ctx.retires_since_scan += 1;
        if flushed
            && self.policy.scan_on_retire(ctx.limbo.len())
            && ctx.retires_since_scan >= self.config.empty_freq
        {
            trace::emit(
                ctx.tid,
                TraceKind::LimboHigh,
                ctx.limbo.len() as u64,
                self.policy.hi_watermark as u64,
            );
            self.scan_or_publish(ctx);
        }
    }

    fn flush(&self, ctx: &mut HpPopCtx) {
        self.reclaim_with_pings(ctx);
    }

    fn thread_stats(&self, ctx: &HpPopCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut HpPopCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &HpPopCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for HpPop {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn protect_is_private_until_pinged() {
        let smr = HpPop::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 7,
            },
        );
        shared.store(node, Ordering::Release);
        let p = smr.protect(&mut ctx, 0, &shared);
        assert!(p.ptr_eq(node));
        assert_eq!(
            smr.published[0].slots[0].load(Ordering::SeqCst),
            0,
            "no ping yet: the reservation must stay private"
        );
        // A ping promotes it.
        let (seq, _) = smr.ping.ping_all(1, &smr.registry);
        let _ = seq;
        assert!(!smr.checkpoint(&mut ctx), "POP never restarts");
        assert_eq!(
            smr.published[0].slots[0].load(Ordering::SeqCst),
            node.untagged_usize()
        );
        assert_eq!(smr.thread_stats(&ctx).pings_published, 1);

        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.clear_protections(&mut ctx);
        smr.flush(&mut ctx);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn privately_protected_record_survives_own_scan() {
        // The scanning thread's own private slots count as reservations even
        // though they were never published.
        let smr = HpPop::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 42,
            },
        );
        shared.store(node, Ordering::Release);
        let p = smr.protect(&mut ctx, 1, &shared);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        for i in 0..(smr.config().hi_watermark * 2) {
            let f = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut ctx, f) };
        }
        assert!(smr.thread_stats(&ctx).frees > 0, "filler must be freed");
        assert_eq!(unsafe { p.deref().key }, 42, "still privately protected");
        assert!(smr.limbo_len(&ctx) >= 1);
        smr.clear_protections(&mut ctx);
        smr.flush(&mut ctx);
        assert_eq!(smr.limbo_len(&ctx), 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn published_reservation_of_stalled_reader_is_honoured() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let smr = Arc::new(HpPop::new(SmrConfig::for_tests()));
        let shared = Arc::new(Atomic::<Node>::null());
        let mut owner = smr.register(0);
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 9,
            },
        );
        shared.store(node, Ordering::Release);

        let stop = Arc::new(AtomicBool::new(false));
        let holding = Arc::new(AtomicBool::new(false));
        let reader = {
            let smr = Arc::clone(&smr);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let holding = Arc::clone(&holding);
            std::thread::spawn(move || {
                let mut ctx = smr.register(1);
                smr.begin_op(&mut ctx);
                let p = smr.protect(&mut ctx, 0, &shared);
                assert!(!p.is_null());
                holding.store(true, Ordering::SeqCst);
                while !stop.load(Ordering::SeqCst) {
                    // Keep servicing pings while "stalled" on the record.
                    let _ = smr.checkpoint(&mut ctx);
                    assert_eq!(unsafe { p.deref().key }, 9);
                    std::thread::yield_now();
                }
                smr.end_op(&mut ctx);
                smr.unregister(&mut ctx);
            })
        };
        while !holding.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }

        // Unlink and retire the record, then force scans with filler.
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        for i in 0..(smr.config().hi_watermark * 2) {
            let f = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut owner, f) };
        }
        assert!(
            smr.thread_stats(&owner).frees > 0,
            "unprotected filler must be freed across handshakes"
        );
        assert!(
            smr.limbo_len(&owner) >= 1,
            "the published reservation must keep the record in limbo"
        );

        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);
        smr.unregister(&mut owner);
    }

    #[test]
    fn garbage_is_bounded_by_watermark_plus_published_slots() {
        let smr = HpPop::new(SmrConfig::for_tests());
        let cfg = smr.config().clone();
        let mut ctx = smr.register(0);
        // Retire coalescing amortizes the watermark check to batch flushes,
        // so the bound gains exactly the fixed batch slack (cap − 1).
        let bound = cfg.hi_watermark
            + cfg.hazards_per_thread * cfg.max_threads
            + (smr_common::RETIRE_BATCH_CAP - 1);
        for i in 0..(cfg.hi_watermark * 8) {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            assert!(smr.limbo_len(&ctx) <= bound);
        }
        smr.unregister(&mut ctx);
    }

    #[test]
    fn silent_thread_forces_round_concession() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(4);
        cfg.ack_spin_limit = 32;
        let smr = HpPop::new(cfg);
        let mut worker = smr.register(0);
        let _silent = smr.register(1); // registered, never runs an operation
        for i in 0..(smr.config().hi_watermark + 4) {
            let p = smr.alloc(
                &mut worker,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut worker, p) };
        }
        let s = smr.thread_stats(&worker);
        assert_eq!(s.frees, 0, "no handshake can complete");
        assert!(s.reclaim_skips > 0, "rounds must be conceded, not unsafe");
        smr.unregister(&mut worker);
    }
}
