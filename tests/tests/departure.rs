//! Departure and fault-adversary smoke across all 12 schemes: a worker that
//! leaves mid-trial (no flush, no quiescing) must not strand its garbage —
//! its limbo bag is handed to the `OrphanPool` by `unregister`, survivors
//! adopt it at their next scan, and its magazines return to the depot — and
//! a worker that black-holes pings must degrade reclamation gracefully
//! instead of stopping it.

use smr_common::SmrConfig;
use smr_harness::families::LazyListFamily;
use smr_harness::{
    run_with, FaultKind, FaultPlan, SmrKind, StopCondition, WorkloadMix, WorkloadSpec,
};

fn cfg() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(256, 64)
}

/// Lemma-10-style slack per participating thread, plus the whole live set
/// (interval schemes pin lifetime-overlapping records; the list holds one
/// node per key) and one orphaned limbo bag that may still be parked in the
/// pool when the last survivor unregisters.
fn departure_bound(config: &SmrConfig, threads: u64, key_range: u64) -> u64 {
    (config.hi_watermark as u64
        + (config.max_reservations * config.max_threads) as u64
        + config.hazards_per_thread as u64 * config.max_threads as u64)
        * (threads + 1)
        + key_range
}

#[test]
fn departing_workers_garbage_is_freed_by_survivors() {
    let config = cfg();
    let key_range = 512u64;
    for &kind in SmrKind::all() {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            key_range,
            3,
            StopCondition::TotalOps(30_000),
        )
        .with_fault_plan(FaultPlan::single(1, 512, FaultKind::Depart));
        let r = run_with::<LazyListFamily>(kind, &spec, config.clone());
        assert_eq!(r.departed_workers, 1, "{}", kind.label());
        assert!(r.total_ops >= 30_000, "{}", kind.label());
        if kind == SmrKind::Leaky {
            continue; // never frees by design; departure-safe via Drop only
        }
        assert!(
            r.smr_totals.frees > 0,
            "{} must keep reclaiming after a departure",
            kind.label()
        );
        assert!(
            r.outstanding_garbage() <= departure_bound(&config, 4, key_range),
            "{}: departing worker's garbage leaked — {} outstanding exceeds {}",
            kind.label(),
            r.outstanding_garbage(),
            departure_bound(&config, 4, key_range)
        );
    }
}

#[test]
fn multiple_departures_leave_survivors_reclaiming() {
    // Two of four workers leave; the remaining two must adopt both orphan
    // bags and keep the garbage level bounded.
    let config = cfg();
    let key_range = 512u64;
    for kind in [SmrKind::NbrPlus, SmrKind::Wfe, SmrKind::Debra, SmrKind::Hp] {
        let plan = FaultPlan::single(0, 512, FaultKind::Depart).with(2, 1024, FaultKind::Depart);
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            key_range,
            4,
            StopCondition::TotalOps(40_000),
        )
        .with_fault_plan(plan);
        let r = run_with::<LazyListFamily>(kind, &spec, config.clone());
        assert_eq!(r.departed_workers, 2, "{}", kind.label());
        assert!(
            r.smr_totals.frees > 0,
            "{} must keep reclaiming after two departures",
            kind.label()
        );
        assert!(
            r.outstanding_garbage() <= departure_bound(&config, 5, key_range),
            "{}: outstanding {} exceeds {}",
            kind.label(),
            r.outstanding_garbage(),
            departure_bound(&config, 5, key_range)
        );
    }
}

#[test]
fn black_holed_pings_degrade_without_stopping_reclamation() {
    // A worker that never acks pings for a window must cost the ping-based
    // reclaimers conceded rounds, not a standstill: reclamation resumes when
    // the window ends and the trial's overall frees stay healthy.
    let config = cfg();
    for kind in [
        SmrKind::Nbr,
        SmrKind::NbrPlus,
        SmrKind::EpochPop,
        SmrKind::HpPop,
    ] {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            512,
            3,
            StopCondition::TotalOps(40_000),
        )
        .with_fault_plan(FaultPlan::single(
            0,
            512,
            FaultKind::BlackholePings { for_ops: 4_096 },
        ));
        let r = run_with::<LazyListFamily>(kind, &spec, config.clone());
        assert_eq!(r.injected_faults, 1, "{}", kind.label());
        assert!(r.total_ops >= 40_000, "{}", kind.label());
        assert!(
            r.smr_totals.frees > 0,
            "{} must reclaim despite a black-holed peer",
            kind.label()
        );
    }
}

mod staged_probe {
    //! Drop-counting node for the staged-batch departure regression: every
    //! reclaim runs the destructor exactly once, so the counter separates
    //! "leaked" (< n) from "double-adopted" (> n, if it doesn't crash first).

    use smr_common::NodeHeader;
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub static DROPS: AtomicUsize = AtomicUsize::new(0);

    pub struct Probe {
        pub header: NodeHeader,
        #[allow(dead_code)]
        pub key: u64,
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    smr_common::impl_smr_node!(Probe);
}

#[test]
fn staged_retires_survive_departure_and_are_freed_exactly_once() {
    // ISSUE-9 regression: a worker that departs with a *part-filled* retire
    // staging buffer (fewer than `RETIRE_BATCH_CAP` retires since the last
    // flush) must not strand those records. `unregister` flushes the stage
    // before the final scan / orphan hand-off, so every staged node is freed
    // exactly once — by the departing thread's last scan, a survivor's
    // adoption, or the domain owner's drop — and never twice.
    use smr_baselines::{Debra, HazardEras, HazardPointers, Ibr, Leaky, Qsbr, Rcu, Wfe};
    use smr_common::{NodeHeader, Smr, RETIRE_BATCH_CAP};
    use smr_pop::{EpochPop, HpPop};
    use staged_probe::{Probe, DROPS};
    use std::sync::atomic::Ordering;

    fn run_one<S: Smr>(smr: S, label: &str) {
        // Strictly inside one batch: nothing flushed, nothing swept yet.
        let n = RETIRE_BATCH_CAP - 3;
        assert!(n >= 1);
        let before = DROPS.load(Ordering::SeqCst);
        let mut survivor = smr.register(0);
        let mut departing = smr.register(1);
        for i in 0..n {
            let p = smr.alloc(
                &mut departing,
                Probe {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            // SAFETY: `p` was just allocated and never linked into any
            // structure, so no other thread can hold a reference to it.
            unsafe { smr.retire(&mut departing, p) };
        }
        assert_eq!(
            smr.limbo_len(&departing),
            n,
            "{label}: staged retires must count toward the limbo length"
        );
        assert_eq!(
            smr.thread_stats(&departing).frees,
            0,
            "{label}: a part-filled staging batch must not have been swept"
        );
        assert_eq!(
            DROPS.load(Ordering::SeqCst) - before,
            0,
            "{label}: no destructor may run while the records are staged"
        );

        // Departure without quiescing: the stage must flow into the final
        // scan / orphan hand-off, never be dropped on the floor.
        smr.unregister(&mut departing);
        smr.flush(&mut survivor);
        smr.unregister(&mut survivor);
        // Whatever neither the departing thread's last scan nor the
        // survivor could free sits in the orphan pool (or a combiner slot)
        // and is reclaimed when the domain owner drops.
        drop(smr);
        assert_eq!(
            DROPS.load(Ordering::SeqCst) - before,
            n,
            "{label}: every staged node must be freed exactly once"
        );
    }

    let cfg = || SmrConfig::for_tests().with_max_threads(4);
    run_one(nbr::Nbr::new(cfg()), "NBR");
    run_one(nbr::NbrPlus::new(cfg()), "NBR+");
    run_one(Debra::new(cfg()), "DEBRA");
    run_one(Qsbr::new(cfg()), "QSBR");
    run_one(Rcu::new(cfg()), "RCU");
    run_one(HazardPointers::new(cfg()), "HP");
    run_one(Ibr::new(cfg()), "IBR");
    run_one(HazardEras::new(cfg()), "HE");
    run_one(Wfe::new(cfg()), "WFE");
    run_one(EpochPop::new(cfg()), "EpochPOP");
    run_one(HpPop::new(cfg()), "HP-POP");
    run_one(Leaky::new(cfg()), "Leaky");
}

#[test]
fn seeded_fault_plans_replay_identically() {
    // The CI fault cells print their seed as the replay handle; the same
    // seed must reproduce the same trial outcome bit-for-bit in ops.
    let config = cfg();
    let mk = || {
        WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            256,
            3,
            StopCondition::TotalOps(20_000),
        )
        .with_fault_plan(FaultPlan::seeded(0xFA17_5EED, 3))
    };
    let a = run_with::<LazyListFamily>(SmrKind::Wfe, &mk(), config.clone());
    let b = run_with::<LazyListFamily>(SmrKind::Wfe, &mk(), config.clone());
    assert_eq!(a.injected_faults, b.injected_faults);
    assert_eq!(a.departed_workers, b.departed_workers);
}
