//! Vendored, API-compatible stub for the subset of `criterion` 0.5 used by
//! this workspace (see `vendor/README.md`).
//!
//! It runs each benchmark routine through a warm-up and a measurement window
//! and prints mean time per iteration (plus throughput when configured) in a
//! criterion-like line format. There is no statistical analysis, HTML report
//! or baseline comparison — the goal is that `cargo bench` compiles and
//! produces meaningful relative numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported hint preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `routine` over the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself: it receives the iteration count and must
    /// return the measured duration for exactly that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the warm-up phase.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run_one(&id.id, &mut routine);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run_one(&id.id.clone(), &mut |b: &mut Bencher<'_>| routine(b, input));
        self
    }

    /// Finishes the group (printing is already done incrementally).
    pub fn finish(&mut self) {}

    fn run_one(&self, id: &str, routine: &mut dyn FnMut(&mut Bencher<'_>)) {
        let full = format!("{}/{}", self.name, id);

        // Warm-up: run single iterations until the warm-up window elapses,
        // which also yields a per-iteration time estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            routine(&mut b);
            warm_iters += 1;
            warm_spent += b.elapsed;
        }
        let est_per_iter = (warm_spent / warm_iters.max(1) as u32).max(Duration::from_nanos(1));

        // Measurement: split the measurement window across `sample_size`
        // samples, each running enough iterations to fill its slice.
        let per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = (per_sample.as_nanos() / est_per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            routine(&mut b);
            total_iters += iters_per_sample;
            total_time += b.elapsed;
        }

        let mean = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * 1e9 / mean.max(1.0);
                println!(
                    "{full:<60} time: [{} /iter]  thrpt: [{} elem/s]",
                    fmt_ns(mean),
                    fmt_count(per_sec)
                );
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * 1e9 / mean.max(1.0);
                println!(
                    "{full:<60} time: [{} /iter]  thrpt: [{} B/s]",
                    fmt_ns(mean),
                    fmt_count(per_sec)
                );
            }
            None => println!("{full:<60} time: [{} /iter]", fmt_ns(mean)),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_count(v: f64) -> String {
    if v < 1_000.0 {
        format!("{v:.1}")
    } else if v < 1_000_000.0 {
        format!("{:.2}K", v / 1_000.0)
    } else if v < 1_000_000_000.0 {
        format!("{:.3}M", v / 1_000_000.0)
    } else {
        format!("{:.3}G", v / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Consumes CLI configuration (accepted and ignored by this stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut routine = routine;
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut routine);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test`, in which case a bench binary must do nothing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
