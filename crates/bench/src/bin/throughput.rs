//! `throughput` — the machine-readable perf-trajectory harness.
//!
//! Runs the read-mostly list matrix (scheme × structure × key range at the CI
//! thread count) plus an update-heavy (50i-50d) Harris-list block — the cells
//! where marked chains form and the batch unlink fires — and writes one JSON
//! document per invocation. The output is
//! committed as `BENCH_<pr>.json` at the repo root so every perf-oriented PR
//! leaves a comparable record; pass `--baseline <prior.json>` to embed the
//! prior run's numbers and per-cell speedups in the new document.
//!
//! ```text
//! cargo run -p nbr-bench --release --bin throughput -- \
//!     [--out BENCH_5.json] [--baseline old.json] [--trials 3] \
//!     [--millis 300] [--threads N] [--tiny] [--label note] \
//!     [--zipf theta] [--no-recycle]
//! ```
//!
//! `--zipf <theta>` switches the *whole* matrix from uniform keys to a YCSB
//! Zipfian with the given `θ ∈ (0, 1)`. Without the flag, the uniform matrix
//! is followed by a skewed-key block — every scheme × structure at the
//! smallest key range under `Zipf(0.99)` — so each baseline also records the
//! hot-spot contention profile. Zipfian cells carry a `|zipf<θ>` suffix in
//! their key so they never collide with uniform cells.
//!
//! `--no-recycle` bypasses the node-block recycling pool (A/B against the
//! magazine/depot allocator of `smr-common::recycle`); each cell reports its
//! pool hit/miss counters either way.
//!
//! Each cell is emitted on its own line with a stable `key`
//! (`scheme|structure|mix|r<range>|t<threads>`), which is what the baseline
//! parser keys on — keep the format line-oriented.

use smr_common::SmrConfig;
use smr_harness::alloc_track::{self, CountingAlloc};
use smr_harness::families::{HarrisListFamily, HmListRestartFamily};
use smr_harness::{
    run_with, KeyDist, SmrKind, StopCondition, TrialResult, WorkloadMix, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Counting global allocator: lets every cell report the *residual*
/// global-allocator traffic next to its pool hit/miss counters, so the
/// recycling claim ("malloc is off the hot path") is visible in the JSON
/// rather than asserted.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    trials: usize,
    millis: u64,
    threads: usize,
    key_ranges: Vec<u64>,
    label: String,
    key_dist: KeyDist,
    /// Extra skewed-key block (Zipf 0.99 at the smallest key range) appended
    /// to a uniform matrix; disabled when `--zipf` overrides the whole run.
    zipf_block: bool,
    recycle: bool,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_5.json".to_string(),
        baseline: None,
        trials: 3,
        millis: 300,
        threads: default_threads(),
        key_ranges: vec![200, 2_048],
        label: String::new(),
        key_dist: KeyDist::Uniform,
        zipf_block: true,
        recycle: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--trials" => args.trials = val("--trials").parse().expect("--trials"),
            "--millis" => args.millis = val("--millis").parse().expect("--millis"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--label" => args.label = val("--label"),
            "--zipf" => {
                let theta: f64 = val("--zipf").parse().expect("--zipf");
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "--zipf theta must lie in (0, 1), got {theta}"
                );
                args.key_dist = KeyDist::Zipf(theta);
                args.zipf_block = false;
            }
            "--no-recycle" => args.recycle = false,
            "--tiny" => {
                // CI smoke scale: one short trial, one key range.
                args.trials = 1;
                args.millis = 40;
                args.key_ranges = vec![200];
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// One measured cell of the matrix.
struct Cell {
    /// Global-allocator calls observed process-wide while this cell's best
    /// pass ran (prefill + trial; the recycling residue plus harness noise).
    global_allocs: u64,
    key: String,
    scheme: &'static str,
    ds: &'static str,
    mops: f64,
    peak_limbo: u64,
    retires: u64,
    frees: u64,
    pool_hits: u64,
    pool_misses: u64,
}

impl Cell {
    /// Fraction of pool-eligible allocations served from recycled blocks.
    fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

fn cell_key(r: &TrialResult, dist: KeyDist) -> String {
    let suffix = match dist {
        KeyDist::Uniform => String::new(),
        KeyDist::Zipf(_) => format!("|{}", dist.label()),
    };
    format!(
        "{}|{}|{}|r{}|t{}{}",
        r.smr, r.ds, r.mix, r.key_range, r.threads, suffix
    )
}

/// Extracts `"key": mops` pairs (plus peak limbo) from a prior run's JSON.
/// The format is line-oriented by construction, so a full JSON parser is not
/// needed: every cell line carries `"key":"..."` and `"mops":<f64>`.
fn parse_baseline(text: &str) -> BTreeMap<String, (f64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(key) = extract_str(line, "\"key\":\"") else {
            continue;
        };
        let Some(mops) = extract_num(line, "\"mops\":") else {
            continue;
        };
        let peak = extract_num(line, "\"peak_limbo\":").unwrap_or(0.0) as u64;
        out.insert(key, (mops, peak));
    }
    out
}

/// Escapes a user-supplied string for embedding in a JSON string literal
/// (`--label` is free text; every other interpolated string is a fixed
/// scheme/structure label).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn extract_str(line: &str, tag: &str) -> Option<String> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, tag: &str) -> Option<f64> {
    let start = line.find(tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_once<F: smr_harness::DsFamily>(
    kind: SmrKind,
    mix: WorkloadMix,
    key_range: u64,
    dist: KeyDist,
    args: &Args,
) -> TrialResult {
    let spec = WorkloadSpec::new(
        mix,
        key_range,
        args.threads,
        StopCondition::Duration(Duration::from_millis(args.millis)),
    )
    .with_key_dist(dist);
    let config = SmrConfig::default()
        .with_max_threads(args.threads + 4)
        .with_watermarks(1024, 256)
        .with_signal_cost_ns(2_000)
        .with_recycle(args.recycle);
    run_with::<F>(kind, &spec, config)
}

fn main() {
    // Instrumentation must never leak into a measurement build: the
    // `check` feature is test-only (enabled by `smr-check` dev-deps).
    assert!(
        !smr_common::check::compiled_in(),
        "bench binary built with the smr-common `check` feature on; measurements would be invalid"
    );
    let args = parse_args();
    let baseline = args.baseline.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        parse_baseline(&text)
    });

    // One runner closure per cell of the matrix, so the trial loop below can
    // *interleave*: every cell runs once per pass over the whole matrix,
    // rather than all N trials back-to-back. CI-grade machines see *bursty*
    // interference (a noisy neighbour for a few seconds); back-to-back
    // trials let one burst swallow every sample of a single cell, while
    // interleaved passes spread it across the matrix — best-of-N then
    // converges per cell instead of condemning whichever cell the burst hit.
    type Runner = Box<dyn Fn(&Args) -> TrialResult>;
    let schemes = SmrKind::all();
    let mut runners: Vec<(KeyDist, Runner)> = Vec::new();
    let row_set = |runners: &mut Vec<(KeyDist, Runner)>, key_range: u64, dist: KeyDist| {
        for &kind in schemes {
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HarrisListFamily>(kind, WorkloadMix::READ_HEAVY, key_range, dist, a)
                }),
            ));
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HmListRestartFamily>(
                        kind,
                        WorkloadMix::READ_HEAVY,
                        key_range,
                        dist,
                        a,
                    )
                }),
            ));
        }
    };
    for &key_range in &args.key_ranges {
        row_set(&mut runners, key_range, args.key_dist);
    }
    if args.zipf_block {
        // Skewed-key block: the YCSB hot-spot distribution at the smallest
        // (most contended) key range, one row per scheme × structure.
        row_set(&mut runners, args.key_ranges[0], KeyDist::Zipf(0.99));
    }
    // Update-heavy (50i-50d) Harris-list block at the smallest key range:
    // constant deletions are what grow marked chains, so these are the cells
    // where the interval reclaimers' batch unlink (vs. the pre-PR-5
    // one-node-at-a-time fallback) actually fires and the win is recorded in
    // the trajectory. Cells carry the `50i-50d` mix in their key, so they
    // never collide with the read-mostly matrix.
    {
        let key_range = args.key_ranges[0];
        let dist = args.key_dist;
        for &kind in schemes {
            runners.push((
                dist,
                Box::new(move |a: &Args| {
                    run_once::<HarrisListFamily>(
                        kind,
                        WorkloadMix::UPDATE_HEAVY,
                        key_range,
                        dist,
                        a,
                    )
                }),
            ));
        }
    }

    let mut best: Vec<Option<(TrialResult, u64)>> = runners.iter().map(|_| None).collect();
    for pass in 0..args.trials.max(1) {
        eprintln!("pass {}/{}", pass + 1, args.trials.max(1));
        for (slot, (_, runner)) in best.iter_mut().zip(&runners) {
            let allocs_before = alloc_track::total_allocs();
            let r = runner(&args);
            let allocs = alloc_track::total_allocs() - allocs_before;
            if slot.as_ref().map(|b| r.mops > b.0.mops).unwrap_or(true) {
                *slot = Some((r, allocs));
            }
        }
    }

    let cells: Vec<Cell> = best
        .into_iter()
        .zip(&runners)
        .map(|(r, (dist, _))| {
            let (r, global_allocs) = r.expect("at least one pass ran");
            let cell = Cell {
                global_allocs,
                key: cell_key(&r, *dist),
                scheme: r.smr,
                ds: r.ds,
                mops: r.mops,
                peak_limbo: r.smr_totals.peak_limbo,
                retires: r.smr_totals.retires,
                frees: r.smr_totals.frees,
                pool_hits: r.smr_totals.pool_hits,
                pool_misses: r.smr_totals.pool_misses,
            };
            eprintln!(
                "  {:<36} {:>8.3} Mops/s  peak_limbo={} retired={} freed={} pool-hit={:.0}% global-allocs={}",
                cell.key,
                cell.mops,
                cell.peak_limbo,
                cell.retires,
                cell.frees,
                cell.hit_rate() * 100.0,
                cell.global_allocs
            );
            cell
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"harness\": \"throughput\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&args.label));
    let _ = writeln!(out, "  \"mix\": \"per-cell\",");
    let _ = writeln!(out, "  \"key_dist\": \"{}\",", args.key_dist.label());
    let _ = writeln!(out, "  \"zipf_block\": {},", args.zipf_block);
    let _ = writeln!(out, "  \"recycle\": {},", args.recycle);
    let _ = writeln!(out, "  \"threads\": {},", args.threads);
    let _ = writeln!(out, "  \"trials\": {},", args.trials);
    let _ = writeln!(out, "  \"trial_millis\": {},", args.millis);
    let _ = writeln!(out, "  \"cells\": [");
    let n = cells.len();
    for (i, c) in cells.iter().enumerate() {
        let mut line = format!(
            "    {{\"key\":\"{}\",\"scheme\":\"{}\",\"ds\":\"{}\",\"mops\":{:.4},\"peak_limbo\":{},\"retires\":{},\"frees\":{},\"pool_hits\":{},\"pool_misses\":{},\"global_allocs\":{}",
            c.key, c.scheme, c.ds, c.mops, c.peak_limbo, c.retires, c.frees, c.pool_hits, c.pool_misses, c.global_allocs
        );
        if let Some(base) = &baseline {
            if let Some(&(bm, bp)) = base.get(&c.key) {
                let _ = write!(
                    line,
                    ",\"baseline_mops\":{:.4},\"baseline_peak_limbo\":{},\"speedup\":{:.4}",
                    bm,
                    bp,
                    if bm > 0.0 { c.mops / bm } else { 0.0 }
                );
            }
        }
        let _ = write!(line, "}}{}", if i + 1 < n { "," } else { "" });
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    let (hits, misses) = cells.iter().fold((0u64, 0u64), |(h, m), c| {
        (h + c.pool_hits, m + c.pool_misses)
    });
    if hits + misses > 0 {
        eprintln!(
            "recycling pool: {:.1}% hit rate ({} recycled / {} global-alloc fallbacks)",
            hits as f64 / (hits + misses) as f64 * 100.0,
            hits,
            misses
        );
    } else {
        eprintln!("recycling pool: bypassed (--no-recycle)");
    }

    if let Some(base) = &baseline {
        let matched = cells.iter().filter(|c| base.contains_key(&c.key)).count();
        if matched == 0 {
            eprintln!(
                "warning: no cell key matched the baseline — check that \
                 --threads (and the key ranges / distribution) match the \
                 baseline run, or every speedup field will be absent"
            );
        }
        let improved: Vec<&Cell> = cells
            .iter()
            .filter(|c| {
                base.get(&c.key)
                    .map(|&(bm, _)| bm > 0.0 && c.mops / bm >= 1.10)
                    .unwrap_or(false)
            })
            .collect();
        eprintln!(
            "cells ≥ 1.10x over baseline: {} of {} ({} matched)",
            improved.len(),
            cells.len(),
            matched
        );
        for c in improved {
            let (bm, _) = base[&c.key];
            eprintln!(
                "  {}: {:.3} → {:.3} ({:.2}x)",
                c.key,
                bm,
                c.mops,
                c.mops / bm
            );
        }
    }
}
