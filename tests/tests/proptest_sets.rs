//! Property-based tests (proptest): arbitrary operation sequences applied to
//! each concurrent set must behave exactly like a `BTreeSet`, under both NBR+
//! and a baseline reclaimer, and the reclaimers' ledgers must stay consistent
//! (frees ≤ retires ≤ allocs-for-retired-nodes).

use conc_ds::{AbTree, ConcurrentSet, DgtTree, HarrisList, HmList, LazyList};
use nbr::NbrPlus;
use proptest::collection::vec;
use proptest::prelude::*;
use smr_baselines::HazardPointers;
use smr_common::{Smr, SmrConfig};
use std::collections::BTreeSet;

/// One abstract set operation.
#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = SetOp> {
    (0u8..3, 1..=key_range).prop_map(|(kind, key)| match kind {
        0 => SetOp::Insert(key),
        1 => SetOp::Remove(key),
        _ => SetOp::Contains(key),
    })
}

fn run_against_model<S: Smr, DS: ConcurrentSet<S>>(ds: &DS, ops: &[SetOp]) {
    let mut ctx = ds.smr().register(0);
    let mut model = BTreeSet::new();
    for &op in ops {
        match op {
            SetOp::Insert(k) => assert_eq!(ds.insert(&mut ctx, k), model.insert(k), "insert({k})"),
            SetOp::Remove(k) => assert_eq!(ds.remove(&mut ctx, k), model.remove(&k), "remove({k})"),
            SetOp::Contains(k) => {
                assert_eq!(
                    ds.contains(&mut ctx, k),
                    model.contains(&k),
                    "contains({k})"
                )
            }
        }
    }
    assert_eq!(ds.size(&mut ctx), model.len());
    // Reclaimer ledger invariants.
    ds.smr().flush(&mut ctx);
    let stats = ds.smr().thread_stats(&ctx);
    assert!(
        stats.frees <= stats.retires,
        "cannot free more than was retired"
    );
    assert_eq!(
        stats.retires - stats.frees,
        ds.smr().limbo_len(&ctx) as u64,
        "outstanding retires must equal the limbo bag size"
    );
    ds.smr().unregister(&mut ctx);
}

fn tiny_cfg() -> SmrConfig {
    SmrConfig::for_tests()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lazy_list_matches_btreeset(ops in vec(op_strategy(48), 1..400)) {
        run_against_model(&LazyList::<NbrPlus>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn harris_list_matches_btreeset(ops in vec(op_strategy(48), 1..400)) {
        run_against_model(&HarrisList::<NbrPlus>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn hm_list_matches_btreeset(ops in vec(op_strategy(48), 1..400)) {
        run_against_model(&HmList::<NbrPlus>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn dgt_tree_matches_btreeset(ops in vec(op_strategy(128), 1..400)) {
        run_against_model(&DgtTree::<NbrPlus>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn ab_tree_matches_btreeset(ops in vec(op_strategy(256), 1..400)) {
        run_against_model(&AbTree::<NbrPlus>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn lazy_list_under_hazard_pointers_matches_btreeset(ops in vec(op_strategy(48), 1..300)) {
        run_against_model(&LazyList::<HazardPointers>::new(tiny_cfg()), &ops);
    }

    #[test]
    fn dgt_tree_under_hazard_pointers_matches_btreeset(ops in vec(op_strategy(128), 1..300)) {
        run_against_model(&DgtTree::<HazardPointers>::new(tiny_cfg()), &ops);
    }
}
