//! NBR+ — the optimized reclaimer (Algorithm 2 of the paper).
//!
//! NBR sends `n-1` signals every time any thread wants to empty its limbo bag,
//! i.e. `O(n²)` signals for all threads to reclaim once. NBR+ lets threads
//! piggyback on *relaxed grace periods* (RGPs) induced by other threads:
//!
//! * When a thread's limbo bag crosses the **LoWatermark** it bookmarks its
//!   current bag tail and snapshots every thread's announcement timestamp.
//! * A thread whose bag reaches the **HiWatermark** announces an RGP (odd
//!   timestamp), broadcasts signals, verifies the handshake, announces the RGP
//!   complete (even timestamp), and reclaims — exactly like NBR plus the
//!   announcements.
//! * A thread waiting at the LoWatermark periodically re-reads the
//!   announcement timestamps; once any *other* thread's timestamp has advanced
//!   through a complete RGP since the snapshot, every thread has been
//!   neutralized since the bookmark, so the waiter reclaims every unreserved
//!   record it retired before the bookmark — **without sending any signals**.
//!
//! In the best case all `n` threads reclaim after a single RGP (`n-1`
//! signals). The benches report `signals_sent` so this effect is visible
//! (see the `ablation_nbr` bench and EXPERIMENTS.md).

use crate::neutralize::{HandshakeOutcome, NeutralizationCore};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    BlockPool, LimboBag, Magazine, Retired, ScanPolicy, ScanState, Shared, Smr, SmrConfig, SmrNode,
    ThreadStats,
};
use std::sync::Arc;

/// How many retire calls at the LoWatermark are amortized over one scan of the
/// announcement timestamps (Section 5.1: "we amortize the overhead of scanning
/// announceTS over many retire operations").
const LO_WM_SCAN_PERIOD: u64 = 4;

/// Per-thread context for [`NbrPlus`].
pub struct NbrPlusCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch for the per-scan reservation snapshot.
    reserved: Vec<usize>,
    mag: Magazine,
    stats: ThreadStats,
    /// True until the thread (re-)enters the LoWatermark region
    /// (`firstLoWmEntryFlag` of Algorithm 2).
    first_lo_wm_entry: bool,
    /// Bag length at the moment the LoWatermark was entered (`bookmarkTail`).
    bookmark: usize,
    /// Announcement-timestamp snapshot taken at the LoWatermark (`scanTS`).
    scan_snapshot: Vec<u64>,
    /// Retires since the last announcement scan (amortization counter).
    lo_wm_scan_tick: u64,
    /// True once the op-exit heartbeat has deferred its broadcast to an
    /// in-flight peer RGP; bounds the deferral to one heartbeat window
    /// (cleared by `clean_up`, i.e. whenever a reclamation lands).
    heartbeat_deferred: bool,
}

impl NbrPlusCtx {
    /// The thread's slot index.
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// The NBR+ reclaimer (Algorithm 2).
pub struct NbrPlus {
    core: NeutralizationCore,
    policy: ScanPolicy,
    pool: Arc<BlockPool>,
}

impl NbrPlus {
    /// Access to the shared neutralization core.
    pub fn neutralization(&self) -> &NeutralizationCore {
        &self.core
    }

    /// Reset the LoWatermark bookkeeping (Algorithm 2, `cleanUp`).
    fn clean_up(ctx: &mut NbrPlusCtx) {
        ctx.first_lo_wm_entry = true;
        ctx.lo_wm_scan_tick = 0;
        ctx.heartbeat_deferred = false;
    }

    /// Free every unreserved record in the prefix `[0, up_to)` of the bag.
    fn reclaim_freeable(&self, ctx: &mut NbrPlusCtx, up_to: usize) -> usize {
        self.core
            .collect_reservations_into(ctx.tid, &mut ctx.reserved);
        // SAFETY: callers establish that every record in the prefix was
        // retired before a verified RGP (HiWatermark path) or before the
        // bookmark of an observed RGP (LoWatermark path); unreserved records
        // are therefore safe (Lemmas 8/9 of the paper).
        unsafe {
            ctx.limbo
                .reclaim_prefix_unreserved(up_to, &ctx.reserved, &mut ctx.stats, &mut ctx.mag)
        }
    }

    /// HiWatermark path: induce an RGP (signals + verified handshake) and
    /// reclaim everything retired before the broadcast.
    fn reclaim_at_hi_watermark(&self, ctx: &mut NbrPlusCtx) -> usize {
        // Combiner adoption: sweep peer bags published while an earlier scan
        // was mid-flight. Adopted records append *after* the LoWatermark
        // bookmark prefix, so the bookmark indices stay valid, and they join
        // this round's prefix before the broadcast below.
        if self.core.config().combine {
            let (published, bags) = self.core.combiner().adopt();
            if bags > 0 {
                ctx.stats.combine_adoptions += bags;
                trace::emit(
                    ctx.tid,
                    TraceKind::CombineAdopt,
                    published.len() as u64,
                    bags,
                );
            }
            for r in published {
                ctx.limbo.push(r);
            }
        }
        // Survivor adoption: fold departed threads' orphans into this
        // round's prefix — they were unlinked before their owner departed,
        // so the broadcast below covers them like the thread's own retires
        // (`take_orphans` is non-blocking).
        let orphaned = self.core.take_orphans();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        let tail = ctx.limbo.len();
        if tail == 0 {
            return 0;
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        let sw = telemetry::stopwatch_if(self.core.config().telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, tail as u64, 0);
        self.core.announce_rgp_begin(ctx.tid);
        let ping_sw = telemetry::stopwatch_if(self.core.config().telemetry);
        let (seq, sent) = self.core.signal_all(ctx.tid);
        ctx.stats.signals_sent += sent;
        let freed = match self.core.await_neutralization(ctx.tid, seq) {
            HandshakeOutcome::TimedOut => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_stall.record(ping_sw.elapsed_ns());
                }
                ctx.stats.ping_concessions += 1;
                // The RGP could not be verified: roll the announcement back so
                // LoWatermark observers cannot mistake it for a completed one.
                self.core.announce_rgp_abort(ctx.tid);
                ctx.stats.reclaim_skips += 1;
                0
            }
            HandshakeOutcome::AllNeutralized => {
                if let Some(ping_sw) = ping_sw {
                    ctx.stats.tel.ping_rtt.record(ping_sw.elapsed_ns());
                }
                self.core.announce_rgp_end(ctx.tid);
                let freed = self.reclaim_freeable(ctx, tail);
                Self::clean_up(ctx);
                freed
            }
        };
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
        freed
    }

    /// The piggyback core (ungated): if some *other* thread completed an RGP
    /// since this thread's LoWatermark snapshot, free the bookmark prefix —
    /// every record in it was retired before the snapshot, so the observed
    /// RGP proves it unreachable (Lemma 9), no signals needed.
    fn piggyback_if_rgp_elapsed(&self, ctx: &mut NbrPlusCtx) -> usize {
        if ctx.first_lo_wm_entry {
            return 0;
        }
        if self.core.rgp_elapsed_since(ctx.tid, &ctx.scan_snapshot) {
            let bookmark = ctx.bookmark;
            let sw = telemetry::stopwatch_if(self.core.config().telemetry);
            trace::emit(ctx.tid, TraceKind::ScanBegin, bookmark as u64, 1);
            let freed = self.reclaim_freeable(ctx, bookmark);
            trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 1);
            if let Some(sw) = sw {
                ctx.stats.tel.scan.record(sw.elapsed_ns());
            }
            ctx.stats.rgp_reclaims += 1;
            // A piggyback is a reclamation event: restart the heartbeat
            // window so the next op exit does not immediately re-fire and
            // broadcast over the bag remainder.
            ctx.scan.note_scan();
            Self::clean_up(ctx);
            freed
        } else {
            0
        }
    }

    /// LoWatermark path: bookmark, snapshot, and opportunistically reclaim if
    /// some other thread completed an RGP since the snapshot (the
    /// announcement scan is amortized over [`LO_WM_SCAN_PERIOD`] retires).
    fn try_reclaim_at_lo_watermark(&self, ctx: &mut NbrPlusCtx) -> usize {
        if ctx.first_lo_wm_entry {
            ctx.bookmark = ctx.limbo.len();
            self.core
                .snapshot_announcements_into(&mut ctx.scan_snapshot);
            ctx.first_lo_wm_entry = false;
            ctx.lo_wm_scan_tick = 0;
            return 0;
        }
        ctx.lo_wm_scan_tick += 1;
        if ctx.lo_wm_scan_tick % LO_WM_SCAN_PERIOD != 0 {
            return 0;
        }
        self.piggyback_if_rgp_elapsed(ctx)
    }

    /// HiWatermark trigger (after the RGP ride/defer checks declined): run
    /// the scan as the domain's active scanner, or — when a peer's scan is
    /// already mid-flight — publish this thread's bag to the combiner so
    /// that scan sweeps it in the same ping round.
    fn scan_or_publish(&self, ctx: &mut NbrPlusCtx) {
        if !self.core.config().combine {
            self.reclaim_at_hi_watermark(ctx);
            return;
        }
        if self.core.combiner().try_begin() {
            self.reclaim_at_hi_watermark(ctx);
            self.core.combiner().finish();
            return;
        }
        let records = ctx.limbo.drain();
        let published = records.len() as u64;
        match self.core.combiner().publish(ctx.tid, records) {
            Ok(()) => {
                ctx.stats.combine_publishes += 1;
                trace::emit(ctx.tid, TraceKind::CombinePublish, published, 0);
                // The bag is empty now, so the LoWatermark bookmark refers
                // to nothing: reset Algorithm 2's bookkeeping and restart
                // the heartbeat window (publication is a reclamation event
                // from this thread's perspective).
                ctx.bookmark = 0;
                Self::clean_up(ctx);
                ctx.scan.note_scan();
            }
            Err(records) => {
                // The slot still holds an unadopted bag: keep the records
                // and retry at the next trigger.
                for r in records {
                    ctx.limbo.push(r);
                }
            }
        }
    }
}

impl Smr for NbrPlus {
    type ThreadCtx = NbrPlusCtx;

    const NAME: &'static str = "NBR+";
    const USES_PHASES: bool = true;

    fn new(config: SmrConfig) -> Self {
        let policy = ScanPolicy::from_config(&config);
        let pool = BlockPool::from_config(&config);
        Self {
            core: NeutralizationCore::new(config),
            policy,
            pool,
        }
    }

    fn config(&self) -> &SmrConfig {
        self.core.config()
    }

    fn register(&self, tid: usize) -> NbrPlusCtx {
        self.core.register(tid);
        NbrPlusCtx {
            tid,
            limbo: LimboBag::with_capacity_and_batch(
                self.core.config().hi_watermark + 1,
                self.core.config().retire_batch_cap(),
            ),
            scan: ScanState::new(),
            reserved: Vec::with_capacity(
                self.core.config().max_reservations * self.core.config().max_threads,
            ),
            mag: Magazine::from_config(&self.pool, self.core.config()),
            stats: ThreadStats::default(),
            first_lo_wm_entry: true,
            bookmark: 0,
            scan_snapshot: Vec::new(),
            lo_wm_scan_tick: 0,
            heartbeat_deferred: false,
        }
    }

    fn unregister(&self, ctx: &mut NbrPlusCtx) {
        self.reclaim_at_hi_watermark(ctx);
        let leftovers = ctx.limbo.drain();
        self.core.adopt_orphans(leftovers);
        ctx.mag.flush();
        self.core.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut NbrPlusCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_read_phase(&self, ctx: &mut NbrPlusCtx) {
        self.core.begin_read_phase(ctx.tid);
    }

    #[inline]
    fn end_read_phase(&self, ctx: &mut NbrPlusCtx, reservations: &[usize]) {
        self.core.end_read_phase(ctx.tid, reservations);
    }

    #[inline]
    fn checkpoint(&self, ctx: &mut NbrPlusCtx) -> bool {
        if self.core.checkpoint(ctx.tid) {
            ctx.stats.neutralizations += 1;
            trace::emit(ctx.tid, TraceKind::Neutralized, 0, 0);
            true
        } else {
            false
        }
    }

    #[inline]
    fn end_op(&self, ctx: &mut NbrPlusCtx) {
        self.core.quiesce(ctx.tid);
        // Operation-exit heartbeat. Piggyback-aware: the heartbeat interval
        // (1024 ops ≈ half a HiWatermark of retires on an update-heavy mix)
        // is shorter than the natural Lo→Hi bag cycle, so a heartbeat that
        // always broadcast would keep every bag below the HiWatermark and
        // starve Algorithm 2's piggyback path outright — the group pays one
        // full O(n²) round of signals per heartbeat interval and
        // `rgp_reclaims` flatlines at zero (exactly what the `ablation_nbr`
        // bench showed at CI scale). Riding a peer's completed RGP when one
        // landed since our bookmark serves the heartbeat's purpose (return
        // memory in short trials) without any signals; the broadcast is the
        // fallback, and the retire-path HiWatermark scan remains the
        // bounded-garbage backstop.
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            if self.piggyback_if_rgp_elapsed(ctx) > 0 {
                // Rode a peer's completed RGP — no signals.
            } else if !ctx.heartbeat_deferred
                && !ctx.first_lo_wm_entry
                && self.policy.can_defer_broadcast(ctx.limbo.len())
                && self.core.rgp_in_flight_since(ctx.tid, &ctx.scan_snapshot)
            {
                // A peer's grace period is mid-handshake (typically: we just
                // acked its ping, its other peers have not yet). Broadcasting
                // now would stack signals onto it *and* throw away our
                // bookmark; ride the RGP when it lands instead (the gated
                // LoWatermark check on the retire path, or the next
                // heartbeat). Deferral is bounded to ONE heartbeat window —
                // `rgp_in_flight_since` can stay true indefinitely on a
                // stale odd-snapshot signal (the peer completed the RGP we
                // cannot credit and went quiet), and a thread that stops
                // retiring would otherwise hold its garbage forever.
                // Restarting the window here also keeps the heartbeat from
                // re-firing (and re-scanning the registry) on every
                // subsequent op exit.
                ctx.heartbeat_deferred = true;
                ctx.scan.note_scan();
            } else {
                self.reclaim_at_hi_watermark(ctx);
            }
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut NbrPlusCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: records stage in a small thread-local batch;
        // the HiWatermark trigger is only consulted when a batch flushes
        // (bounded overshoot of RETIRE_BATCH_CAP - 1), while the cheap
        // amortized LoWatermark/piggyback path keeps running per retire so
        // a completed peer RGP is still ridden promptly.
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        let len = ctx.limbo.len();
        if flushed {
            ctx.stats.observe_limbo(len);
        }
        if flushed && self.policy.scan_on_retire(len) {
            trace::emit(
                ctx.tid,
                TraceKind::LimboHigh,
                len as u64,
                self.policy.hi_watermark as u64,
            );
            // Broadcast-stacking defence. When every thread retires at the
            // same rate (a timed trial starts all bags empty on one
            // barrier), the whole group crosses HiWatermark within a few
            // retires of the leader — and the leader's handshake cannot
            // complete until the followers ack at their next read-phase
            // checkpoint, so each follower arrives here while the leader's
            // RGP is still *in flight* and would stack `n−1` redundant
            // signals onto the same grace period. Instead: ride a completed
            // peer RGP if one landed since our bookmark (free the bookmark
            // prefix, no signals — Algorithm 2's whole point), and if a
            // peer's RGP has *begun* but not yet completed, defer our own
            // broadcast for a bounded bag overshoot (`hi + lo`) — our ack
            // at the next checkpoint is part of what completes it.
            if self.piggyback_if_rgp_elapsed(ctx) > 0
                && !self.policy.scan_on_retire(ctx.limbo.len())
            {
                // Rode a peer's completed RGP back below the mark.
            } else if !ctx.first_lo_wm_entry
                && self.policy.can_defer_broadcast(ctx.limbo.len())
                && self.core.rgp_in_flight_since(ctx.tid, &ctx.scan_snapshot)
            {
                // A peer's grace period is mid-handshake; keep running so it
                // can complete, then piggyback on it.
            } else {
                self.scan_or_publish(ctx);
            }
        } else if self.policy.opportunistic_on_retire(len) {
            self.try_reclaim_at_lo_watermark(ctx);
        }
    }

    fn flush(&self, ctx: &mut NbrPlusCtx) {
        self.reclaim_at_hi_watermark(ctx);
    }

    fn thread_stats(&self, ctx: &NbrPlusCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut NbrPlusCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &NbrPlusCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for NbrPlus {
    fn drop(&mut self) {
        self.core.drain_orphans();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn new_nbr_plus() -> NbrPlus {
        NbrPlus::new(SmrConfig::for_tests().with_max_threads(4))
    }

    fn alloc_and_retire(smr: &NbrPlus, ctx: &mut NbrPlusCtx, n: usize) {
        for i in 0..n {
            let p = smr.alloc(
                ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(ctx, p) };
        }
    }

    #[test]
    fn hi_watermark_reclaims_and_announces() {
        let smr = new_nbr_plus();
        let hi = smr.config().hi_watermark;
        let mut ctx = smr.register(0);
        let before = smr.neutralization().slot(0).announce_ts();
        alloc_and_retire(&smr, &mut ctx, hi);
        assert_eq!(smr.limbo_len(&ctx), 0);
        let after = smr.neutralization().slot(0).announce_ts();
        assert_eq!(
            after,
            before + 2,
            "a verified RGP bumps the timestamp twice"
        );
        assert_eq!(after % 2, 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn hi_crossing_defers_broadcast_while_peer_rgp_in_flight() {
        let smr = new_nbr_plus();
        let cfg = smr.config().clone();
        let mut waiter = smr.register(0);
        let _peer = smr.register(1);

        // Cross the LoWatermark so the bookmark + snapshot exist, catching
        // the peer's timestamp even (quiet).
        alloc_and_retire(&smr, &mut waiter, cfg.lo_watermark + 1);
        // Peer goes mid-broadcast (odd timestamp) before the waiter reaches
        // the HiWatermark.
        smr.neutralization().announce_rgp_begin(1);
        // The waiter crosses Hi: it must *defer* (ride-don't-stack) instead
        // of broadcasting onto the peer's in-flight grace period.
        alloc_and_retire(&smr, &mut waiter, cfg.hi_watermark - cfg.lo_watermark + 2);
        let s = smr.thread_stats(&waiter);
        assert_eq!(s.signals_sent, 0, "deferral must not broadcast");
        assert_eq!(s.reclaim_scans, 0);
        assert!(smr.limbo_len(&waiter) > cfg.hi_watermark);

        // The peer's RGP completes — fully after the waiter's snapshot — so
        // the next few retires (the gated LoWatermark check is amortized
        // over LO_WM_SCAN_PERIOD retires) piggyback the bookmark prefix,
        // signal-free.
        smr.neutralization().announce_rgp_end(1);
        alloc_and_retire(&smr, &mut waiter, LO_WM_SCAN_PERIOD as usize);
        let s = smr.thread_stats(&waiter);
        assert_eq!(s.rgp_reclaims, 1, "completed peer RGP must be ridden");
        assert_eq!(s.signals_sent, 0);
        assert!(smr.limbo_len(&waiter) < cfg.hi_watermark);

        smr.unregister(&mut waiter);
    }

    #[test]
    fn heartbeat_piggybacks_instead_of_broadcasting() {
        let smr = new_nbr_plus();
        let cfg = smr.config().clone();
        let mut waiter = smr.register(0);
        let _peer = smr.register(1);

        // Garbage past the LoWatermark (bookmark + snapshot taken), far
        // below Hi.
        alloc_and_retire(&smr, &mut waiter, cfg.lo_watermark + 2);
        // A peer completes a full RGP after the snapshot.
        smr.neutralization().announce_rgp_begin(1);
        smr.neutralization().announce_rgp_end(1);
        // Enough op exits to fire the heartbeat: it must ride the peer's
        // RGP rather than induce one of its own.
        for _ in 0..cfg.scan_heartbeat_ops + 1 {
            smr.begin_op(&mut waiter);
            smr.end_op(&mut waiter);
        }
        let s = smr.thread_stats(&waiter);
        assert_eq!(s.rgp_reclaims, 1, "heartbeat must piggyback");
        assert_eq!(s.signals_sent, 0, "no signals when a peer RGP landed");
        assert!(s.frees >= cfg.lo_watermark as u64);

        smr.unregister(&mut waiter);
    }

    #[test]
    fn lo_watermark_piggybacks_on_other_threads_rgp() {
        let smr = new_nbr_plus();
        let cfg = smr.config().clone();
        let mut waiter = smr.register(0);
        let mut reclaimer = smr.register(1);

        // Waiter retires enough to pass the LoWatermark (but not Hi), which
        // bookmarks its bag, plus a few more to tick the amortized scan.
        alloc_and_retire(&smr, &mut waiter, cfg.lo_watermark + 1);
        let waiting = smr.limbo_len(&waiter);
        assert!(waiting > 0);
        assert_eq!(smr.thread_stats(&waiter).signals_sent, 0);

        // Another thread crosses its HiWatermark, inducing a verified RGP.
        alloc_and_retire(&smr, &mut reclaimer, cfg.hi_watermark);
        assert!(smr.thread_stats(&reclaimer).signals_sent > 0);

        // The waiter's next few retires must detect the RGP and reclaim the
        // bookmarked prefix without sending a single signal.
        alloc_and_retire(&smr, &mut waiter, LO_WM_SCAN_PERIOD as usize + 1);
        let s = smr.thread_stats(&waiter);
        assert_eq!(s.signals_sent, 0, "the waiter must not signal");
        assert_eq!(
            s.rgp_reclaims, 1,
            "the waiter must piggyback exactly once here"
        );
        assert!(
            smr.limbo_len(&waiter) < waiting,
            "bookmarked prefix must have been reclaimed"
        );

        smr.unregister(&mut waiter);
        smr.unregister(&mut reclaimer);
    }

    #[test]
    fn lo_watermark_does_not_reclaim_without_rgp() {
        let smr = new_nbr_plus();
        let cfg = smr.config().clone();
        let mut waiter = smr.register(0);
        let _other = smr.register(1);
        alloc_and_retire(&smr, &mut waiter, cfg.hi_watermark - 1);
        let s = smr.thread_stats(&waiter);
        assert_eq!(s.frees, 0, "no RGP observed, nothing may be freed");
        assert_eq!(s.rgp_reclaims, 0);
        smr.unregister(&mut waiter);
    }

    #[test]
    fn aborted_rgp_is_invisible_to_waiters() {
        let mut cfg = SmrConfig::for_tests().with_max_threads(4);
        cfg.ack_spin_limit = 16;
        let smr = NbrPlus::new(cfg);
        let cfg = smr.config().clone();
        let mut waiter = smr.register(0);
        let mut reclaimer = smr.register(1);
        let mut silent_reader = smr.register(2);

        // A reader that never acknowledges forces the HiWatermark RGP to abort.
        smr.begin_read_phase(&mut silent_reader);

        alloc_and_retire(&smr, &mut waiter, cfg.lo_watermark + 1);
        alloc_and_retire(&smr, &mut reclaimer, cfg.hi_watermark);
        assert_eq!(
            smr.thread_stats(&reclaimer).frees,
            0,
            "HiWatermark reclaim must have been conceded"
        );

        alloc_and_retire(&smr, &mut waiter, LO_WM_SCAN_PERIOD as usize + 1);
        assert_eq!(
            smr.thread_stats(&waiter).rgp_reclaims,
            0,
            "an aborted RGP must not be detected by waiters"
        );

        // Reader finally acknowledges; everything can drain.
        assert!(smr.checkpoint(&mut silent_reader));
        smr.end_op(&mut silent_reader);
        smr.flush(&mut reclaimer);
        smr.flush(&mut waiter);
        assert_eq!(smr.limbo_len(&reclaimer), 0);
        assert_eq!(smr.limbo_len(&waiter), 0);

        smr.unregister(&mut silent_reader);
        smr.unregister(&mut reclaimer);
        smr.unregister(&mut waiter);
    }

    #[test]
    fn nbr_plus_sends_fewer_signals_than_nbr_for_same_workload() {
        // The headline claim of Section 5: a thread that retires slowly can
        // piggyback on the RGPs of a fast-retiring thread instead of sending
        // its own signals. Thread `a` retires 3 records per round, thread `b`
        // one — under NBR both must broadcast to empty their bags, under NBR+
        // `b` reclaims by observing `a`'s RGPs.
        let rounds = 600usize;

        fn run<S: Smr>(rounds: usize) -> u64 {
            let cfg = SmrConfig::for_tests().with_max_threads(4);
            let smr = S::new(cfg);
            let mut a = smr.register(0);
            let mut b = smr.register(1);
            let retire_n = |ctx: &mut S::ThreadCtx, n: usize| {
                for i in 0..n {
                    let p = smr.alloc(
                        ctx,
                        Node {
                            header: NodeHeader::new(),
                            key: i as u64,
                        },
                    );
                    unsafe { smr.retire(ctx, p) };
                }
            };
            for _ in 0..rounds {
                retire_n(&mut a, 3);
                retire_n(&mut b, 1);
            }
            let sig = smr.thread_stats(&a).signals_sent + smr.thread_stats(&b).signals_sent;
            smr.unregister(&mut a);
            smr.unregister(&mut b);
            sig
        }

        let nbr_signals = run::<crate::Nbr>(rounds);
        let plus_signals = run::<NbrPlus>(rounds);
        assert!(
            plus_signals < nbr_signals,
            "NBR+ must send fewer signals than NBR ({plus_signals} vs {nbr_signals})"
        );
    }

    #[test]
    fn garbage_is_bounded_by_watermark_plus_reservations() {
        let smr = new_nbr_plus();
        let cfg = smr.config().clone();
        let mut ctx = smr.register(0);
        // Coalescing slack: the HiWatermark trigger is consulted only on
        // batch flush, so the bag may overshoot by one unfilled batch.
        let bound = cfg.hi_watermark
            + cfg.max_reservations * (cfg.max_threads - 1)
            + (smr_common::RETIRE_BATCH_CAP - 1);
        for i in 0..(cfg.hi_watermark * 8) {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            assert!(smr.limbo_len(&ctx) <= bound);
        }
        smr.unregister(&mut ctx);
    }
}
