//! Figure 3a (experiment E1): throughput of the DGT external BST under the
//! update-intensive, balanced and search-intensive mixes, one Criterion series
//! per reclaimer.
//!
//! CI-scale parameters (key range 65 536, host core count threads); the
//! comparison of interest is the ordering of the reclaimers, reproduced in
//! full by `cargo run -p nbr-bench --release --bin experiments -- --e1-tree`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::DgtTreeFamily;
use smr_harness::WorkloadMix;

const KEY_RANGE: u64 = 65_536;

fn bench_fig3a(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    // One prefilled structure per reclaimer, shared across all three mix
    // groups and every Criterion sample — re-prefilling 32 K keys for each
    // measurement dominated bench wall-clock.
    let runners = helpers::prefilled_runners::<DgtTreeFamily>(KEY_RANGE, threads);
    for (mix, mix_label) in [
        (WorkloadMix::UPDATE_HEAVY, "50i-50d"),
        (WorkloadMix::BALANCED, "25i-25d"),
        (WorkloadMix::READ_HEAVY, "5i-5d"),
    ] {
        let mut group = c.benchmark_group(format!("fig3a_dgt_{mix_label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for (kind, runner) in &runners {
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter_custom(|iters| {
                    let spec = helpers::spec_for_iters(mix, KEY_RANGE, threads, iters);
                    runner.run(&spec).duration
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig3a);
criterion_main!(benches);
