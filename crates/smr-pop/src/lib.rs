//! # smr-pop — Publish-on-Ping reclaimers on the cooperative ping substrate
//!
//! The reclaimers in this crate (after *Publish on Ping: A Better Way to
//! Publish Reservations in Memory Reclamation for Concurrent Data
//! Structures*, PPoPP 2025) invert the usual reservation protocol: readers
//! keep their reservations in **thread-private memory** — a plain store, no
//! fence, no shared-cache-line traffic — and promote them to shared slots
//! only when a thread that wants to reclaim **pings** them. The ping/ack
//! handshake is the [`PingChannel`](smr_common::PingChannel) extracted from
//! this repo's cooperative neutralization substrate (DESIGN.md,
//! substitution S1): the same channel NBR uses to neutralize readers is
//! reused here to make readers *publish* instead of *restart*.
//!
//! | scheme | reservation granularity | fast-path cost per hop | robust? |
//! |---|---|---|---|
//! | [`EpochPop`] | one era per thread | nothing (one plain private store per *operation*) | no (epoch family) |
//! | [`HpPop`] | `K` per-record slots | `Acquire` load + plain private store | yes (`K` records/thread) |
//!
//! Both implement the workspace-wide [`Smr`](smr_common::Smr) trait, so every
//! data structure in `conc-ds` runs under them unchanged, and both reuse the
//! shared [`LimboBag`](smr_common::LimboBag) sort-then-sweep reclamation
//! entry points and the adaptive [`ScanPolicy`](smr_common::ScanPolicy)
//! triggers. The safety argument for publish-on-ping over the cooperative
//! channel — why a ping-then-scan observes every reservation taken before
//! the ping — is written out in DESIGN.md, "Publish-on-Ping on the
//! cooperative channel".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod epoch_pop;
pub mod hp_pop;

pub use epoch_pop::{EpochPop, EpochPopCtx};
pub use hp_pop::{HpPop, HpPopCtx};
