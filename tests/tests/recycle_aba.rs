//! Recycling safety: address reuse is the ABA case the birth-era header
//! exists for.
//!
//! A block enters the pool only after the owning scheme's scan proved the
//! old record unreserved, so no thread holds a *protected* pointer to the
//! address when it is re-issued. What recycling must preserve is the
//! interval-based schemes' story about the *new* incarnation: the reused
//! block's `NodeHeader` birth era must be re-stamped with the current global
//! era by `Smr::alloc` before publication. These tests force an address to
//! be recycled under HE and IBR and assert (a) the re-stamp happened and
//! (b) a reader protecting the new incarnation pins it across scans exactly
//! like a fresh allocation.

use smr_baselines::{HazardEras, Ibr};
use smr_common::{Atomic, NodeHeader, Shared, Smr, SmrConfig, SmrNode};
use smr_harness::families::HarrisListFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};
use std::sync::atomic::Ordering;

struct Node {
    header: NodeHeader,
    key: u64,
}
smr_common::impl_smr_node!(Node);

fn node(key: u64) -> Node {
    Node {
        header: NodeHeader::new(),
        key,
    }
}

/// Allocate → retire → flush until `Smr::alloc` hands an address back out
/// again, then return that (recycled) allocation.
fn force_reuse<S: Smr>(smr: &S, ctx: &mut S::ThreadCtx, mk: impl Fn(u64) -> Node) -> Shared<Node> {
    let first = smr.alloc(ctx, mk(1));
    let addr = first.untagged_usize();
    // SAFETY: never published; retire-as-unlinked is the single-owner case.
    unsafe { smr.retire(ctx, first) };
    smr.flush(ctx);
    for round in 0..1_000u64 {
        let p = smr.alloc(ctx, mk(100 + round));
        if p.untagged_usize() == addr {
            return p;
        }
        unsafe { smr.retire(ctx, p) };
        smr.flush(ctx);
    }
    panic!("block was never recycled — is the pool enabled?");
}

#[test]
fn hazard_eras_restamps_birth_era_on_reuse() {
    let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut ctx = smr.register(0);
    // Churn so the era has advanced well past the first allocation's birth.
    for i in 0..64 {
        let p = smr.alloc(&mut ctx, node(i));
        unsafe { smr.retire(&mut ctx, p) };
    }
    smr.flush(&mut ctx);
    let era_before = smr.global_era();
    let reused = force_reuse(&smr, &mut ctx, node);
    let stamped = unsafe { reused.deref().header().birth_era() };
    assert!(
        stamped >= era_before,
        "recycled block must carry a fresh birth era (got {stamped}, era was {era_before}) — \
         a stale era would misdate the new incarnation's lifetime"
    );
    unsafe { smr.retire(&mut ctx, reused) };
    smr.unregister(&mut ctx);
}

#[test]
fn ibr_restamps_birth_era_on_reuse() {
    let smr = Ibr::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut ctx = smr.register(0);
    for i in 0..64 {
        smr.begin_op(&mut ctx);
        let p = smr.alloc(&mut ctx, node(i));
        unsafe { smr.retire(&mut ctx, p) };
        smr.end_op(&mut ctx);
    }
    smr.flush(&mut ctx);
    let era_before = smr.global_era();
    let reused = force_reuse(&smr, &mut ctx, node);
    let stamped = unsafe { reused.deref().header().birth_era() };
    assert!(stamped >= era_before, "got {stamped}, era was {era_before}");
    unsafe { smr.retire(&mut ctx, reused) };
    smr.unregister(&mut ctx);
}

/// The end-to-end regression: a *recycled* record protected by a reader must
/// survive the owner's scans exactly like a fresh one — the re-stamped birth
/// era puts the reader's announced era inside the record's lifetime.
#[test]
fn hazard_eras_does_not_free_protected_recycled_record_early() {
    let smr = HazardEras::new(SmrConfig::for_tests().with_epoch_freqs(1, 4));
    let mut owner = smr.register(0);
    let mut reader = smr.register(1);

    let reused = force_reuse(&smr, &mut owner, node);
    let reused_addr = reused.untagged_usize();
    let reused_key = unsafe { reused.deref().key };
    let shared = Atomic::<Node>::null();
    shared.store(reused, Ordering::Release);

    // Reader announces an era covering the recycled record's (new) lifetime.
    let p = smr.protect(&mut reader, 0, &shared);
    assert_eq!(p.untagged_usize(), reused_addr);
    assert_eq!(unsafe { p.deref().key }, reused_key);

    // Owner unlinks + retires the recycled record and churns hard.
    let old = shared.swap(Shared::null(), Ordering::AcqRel);
    unsafe { smr.retire(&mut owner, old) };
    for i in 0..200 {
        let f = smr.alloc(&mut owner, node(i));
        unsafe { smr.retire(&mut owner, f) };
    }
    smr.flush(&mut owner);

    // Still protected: the recycled record must not have been freed (a free
    // would recycle the block and the key would be overwritten by the churn
    // allocations above — or ASAN would flag the read).
    assert_eq!(unsafe { p.deref().key }, reused_key);
    assert!(
        smr.limbo_len(&owner) >= 1,
        "protected record must stay in limbo"
    );

    smr.clear_protections(&mut reader);
    smr.flush(&mut owner);
    assert_eq!(smr.limbo_len(&owner), 0, "released record must be freed");

    smr.unregister(&mut reader);
    smr.unregister(&mut owner);
}

/// Marked-chain traversal composed with recycling: a traverser that follows a
/// frozen marked pointer out of an unlinked record must never land on a
/// *recycled* block. The argument (DESIGN.md, "Traversals through unlinked
/// records under the interval reclaimers") has two halves, and this test
/// pins both:
///
/// 1. While a traverser's announced interval overlaps the chain records'
///    lifetimes, no scan frees them — so no re-stamp can have happened and
///    the frozen pointer still leads to the original record.
/// 2. Once the traverser lets go and the successor block *is* recycled, its
///    re-stamped birth era is strictly later than the old incarnation's
///    retire era (`Smr::alloc` stamps after the magazine pop, which
///    happens-after the free), so the old lifetime interval and the new one
///    never overlap — an interval that pins the old incarnation can never be
///    mistaken for a claim on the new one, and vice versa.
#[test]
fn ibr_marked_chain_successor_recycle_keeps_intervals_disjoint() {
    struct ChainNode {
        header: NodeHeader,
        key: u64,
        next: Atomic<ChainNode>,
    }
    smr_common::impl_smr_node!(ChainNode);
    fn chain_node(key: u64) -> ChainNode {
        ChainNode {
            header: NodeHeader::new(),
            key,
            next: Atomic::null(),
        }
    }
    const MARK: usize = 1;

    // Quiet config: the test chooses every scan point; epoch_freq = 1 makes
    // each allocation advance the era.
    let smr = Ibr::new(
        SmrConfig::for_tests()
            .with_epoch_freqs(1, usize::MAX)
            .with_watermarks(1 << 20, 8)
            .with_scan_heartbeat_ops(0),
    );
    let mut w = smr.register(0);
    let mut r = smr.register(1);

    // W: head → A → B → tail.
    let tail = smr.alloc(&mut w, chain_node(u64::MAX));
    let b = smr.alloc(&mut w, chain_node(20));
    unsafe { b.deref() }.next.store(tail, Ordering::Release);
    let a = smr.alloc(&mut w, chain_node(10));
    unsafe { a.deref() }.next.store(b, Ordering::Release);
    let head = Atomic::new(a);

    // R: protect A inside an operation (the traverser parks here).
    smr.begin_op(&mut r);
    let ra = smr.protect(&mut r, 0, &head);
    assert_eq!(ra.untagged_usize(), a.untagged_usize());

    // W: delete the whole chain — mark B, mark A (freezing their next
    // pointers), batch-unlink, retire in chain order.
    unsafe { b.deref() }
        .next
        .store(tail.with_tag(MARK), Ordering::Release);
    unsafe { a.deref() }
        .next
        .store(b.with_tag(MARK), Ordering::Release);
    head.store(tail, Ordering::Release);
    unsafe { smr.retire(&mut w, a) };
    unsafe { smr.retire(&mut w, b) };
    let era_retired = smr.global_era();

    // Half 1: R's interval overlaps the chain lifetimes, so W's scan must
    // not free (and therefore cannot recycle) either record, even though R
    // has only announced protection for A so far.
    smr.flush(&mut w);
    assert_eq!(
        smr.limbo_len(&w),
        2,
        "no chain record may be freed (= recycled) while the traverser's \
         interval overlaps its lifetime"
    );
    // R: the traversal hop through unlinked A lands on the original B.
    let rb = smr.protect(&mut r, 1, unsafe { &ra.deref().next });
    assert_eq!(rb.untagged_usize(), b.untagged_usize());
    assert_eq!(unsafe { rb.with_tag(0).deref().key }, 20);

    // R lets go; now the chain is reclaimable and the blocks enter the
    // thread-local magazine (LIFO: B's block is re-issued first).
    smr.clear_protections(&mut r);
    smr.end_op(&mut r);
    smr.flush(&mut w);
    assert_eq!(smr.limbo_len(&w), 0);

    // Half 2: force B's block back out of the pool and check the re-stamp.
    let mut reused = None;
    for round in 0..1_000u64 {
        let p = smr.alloc(&mut w, chain_node(500 + round));
        if p.untagged_usize() == b.untagged_usize() {
            reused = Some(p);
            break;
        }
        unsafe { smr.retire(&mut w, p) };
        smr.flush(&mut w);
    }
    let reused = reused.expect("B's block must be recycled — is the pool enabled?");
    let stamped = unsafe { reused.deref().header().birth_era() };
    assert!(
        stamped > era_retired,
        "the recycled successor's re-stamped birth era ({stamped}) must be \
         strictly later than the old incarnation's retire era (≤ {era_retired}): \
         the old interval and the new one must never overlap"
    );
    unsafe { smr.retire(&mut w, reused) };
    unsafe { smr.retire(&mut w, tail) };
    smr.flush(&mut w);
    smr.unregister(&mut r);
    smr.unregister(&mut w);
}

/// `--no-recycle` reproduces the pre-pool behaviour: a full driver trial runs
/// green with the pool bypassed and reports zero pool traffic, while the same
/// trial with recycling reports the pool doing the work.
#[test]
fn no_recycle_bypasses_the_pool_end_to_end() {
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        128,
        2,
        StopCondition::TotalOps(20_000),
    )
    .with_prefill(64);
    let base = SmrConfig::default()
        .with_max_threads(8)
        .with_watermarks(128, 32);

    for &kind in &[SmrKind::NbrPlus, SmrKind::Debra, SmrKind::He] {
        let off = run_with::<HarrisListFamily>(kind, &spec, base.clone().with_recycle(false));
        assert_eq!(
            off.smr_totals.pool_hits, 0,
            "{kind:?}: bypass must not pool"
        );
        assert_eq!(off.smr_totals.pool_recycled, 0);
        assert!(
            off.smr_totals.frees > 0,
            "{kind:?}: bypass must still reclaim"
        );

        let on = run_with::<HarrisListFamily>(kind, &spec, base.clone());
        assert!(
            on.smr_totals.pool_recycled > 0,
            "{kind:?}: recycling run must return blocks to the pool"
        );
        assert!(
            on.smr_totals.pool_hits > 0,
            "{kind:?}: recycling run must serve allocations from the pool"
        );
    }
}
