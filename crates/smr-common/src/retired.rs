//! Type-erased retired records.
//!
//! When a data structure unlinks a node it calls [`Smr::retire`](crate::Smr::retire);
//! the reclaimer wraps the node in a [`Retired`] — a type-erased deferred
//! destructor plus the metadata reclaimers need (the record's address for
//! hazard/reservation comparison, and its birth/retire eras for interval-based
//! schemes) — and stashes it in a per-thread [`LimboBag`](crate::LimboBag)
//! until it is proven *safe* (Section 3 of the paper: unlinked and referenced
//! by no thread).

use crate::header::SmrNode;

/// A retired (unlinked, not yet reclaimed) record awaiting safe destruction.
///
/// Dropping a `Retired` does **not** free the record (that would make it far
/// too easy to cause a use-after-free by accident); records are only freed by
/// the explicit, `unsafe` [`Retired::reclaim`]. A `Retired` that is never
/// reclaimed is a memory leak, which is safe.
pub struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
    birth_era: u64,
    retire_era: u64,
}

// A retired record is exclusively owned by the limbo bag holding it; the
// underlying node type is required to be `Send` by `SmrNode`.
unsafe impl Send for Retired {}

unsafe fn drop_boxed<T>(ptr: *mut u8) {
    drop(Box::from_raw(ptr.cast::<T>()));
}

impl Retired {
    /// Wraps an unlinked node for deferred destruction.
    ///
    /// # Safety
    /// `ptr` must point to a valid, heap-allocated (`Box`) node of type `T`
    /// that has been unlinked from the data structure and will not be retired
    /// again (single-retire rule, Lemma 10 of the paper).
    pub unsafe fn new<T: SmrNode>(ptr: *mut T, retire_era: u64) -> Self {
        debug_assert!(!ptr.is_null());
        let birth_era = (*ptr).header().birth_era();
        Self {
            ptr: ptr.cast(),
            drop_fn: drop_boxed::<T>,
            birth_era,
            retire_era,
        }
    }

    /// The record's address, used to compare against hazard pointers /
    /// NBR reservations.
    #[inline]
    pub fn address(&self) -> usize {
        self.ptr as usize
    }

    /// Era at which the record was allocated (from its [`NodeHeader`](crate::NodeHeader)).
    #[inline]
    pub fn birth_era(&self) -> u64 {
        self.birth_era
    }

    /// Era at which the record was retired.
    #[inline]
    pub fn retire_era(&self) -> u64 {
        self.retire_era
    }

    /// Destroys the record, returning its memory to the allocator.
    ///
    /// # Safety
    /// The caller must have established that the record is *safe*: it is
    /// unlinked and no thread can still dereference a pointer to it (this is
    /// precisely what each SMR algorithm's scan establishes).
    #[inline]
    pub unsafe fn reclaim(self) {
        (self.drop_fn)(self.ptr);
    }
}

impl core::fmt::Debug for Retired {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Retired")
            .field("address", &format_args!("{:#x}", self.address()))
            .field("birth_era", &self.birth_era)
            .field("retire_era", &self.retire_era)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Probe {
        header: NodeHeader,
        _payload: Arc<()>,
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    crate::impl_smr_node!(Probe);

    #[test]
    fn reclaim_runs_destructor_exactly_once() {
        DROPS.store(0, Ordering::SeqCst);
        let payload = Arc::new(());
        let mut node = Probe {
            header: NodeHeader::new(),
            _payload: Arc::clone(&payload),
        };
        node.header_mut().set_birth_era(3);
        let raw = Box::into_raw(Box::new(node));
        let retired = unsafe { Retired::new(raw, 9) };
        assert_eq!(retired.address(), raw as usize);
        assert_eq!(retired.birth_era(), 3);
        assert_eq!(retired.retire_era(), 9);
        assert_eq!(Arc::strong_count(&payload), 2);
        unsafe { retired.reclaim() };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn dropping_retired_does_not_free() {
        DROPS.store(0, Ordering::SeqCst);
        let node = Probe {
            header: NodeHeader::new(),
            _payload: Arc::new(()),
        };
        let raw = Box::into_raw(Box::new(node));
        let retired = unsafe { Retired::new(raw, 0) };
        let _ = retired;
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "drop must not reclaim");
        // Clean up manually so the test itself does not leak.
        unsafe { drop(Box::from_raw(raw)) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
