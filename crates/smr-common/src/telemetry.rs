//! Two-tier observability for the reclaimer matrix.
//!
//! The paper's whole argument is about *where time goes off the fast path* —
//! neutralization signals, restarts, reclamation pauses — yet throughput
//! means hide all of it. This module adds the missing axis in two tiers with
//! very different cost budgets:
//!
//! * **Tier 1 — always on, measurement-grade.** [`Histo`] is a per-thread
//!   log2-bucketed latency histogram: recording is one `ilog2` plus two
//!   increments on thread-private memory, no locks, no allocation, no
//!   atomics. A [`Telemetry`] bundle of five histograms (operation latency,
//!   scan duration, ping round-trips, conceded-ping stalls, WFE helping
//!   slow-path entries) rides inside [`ThreadStats`](crate::ThreadStats),
//!   so it merges across threads exactly the way every other counter does
//!   and surfaces as p50/p99/p999/max per benchmark cell. The only
//!   `Instant::now()` calls sit on paths that are already slow (scans,
//!   handshakes) or are sampled (1-in-64 operations in the harness);
//!   [`SmrConfig::telemetry`](crate::SmrConfig) bypasses even those for the
//!   A/B that keeps this honest.
//! * **Tier 2 — feature-gated `trace`.** Per-thread bounded event rings
//!   capturing the reclamation lifecycle (scan begin/end, ping
//!   sent/acked/conceded/strike, orphan adoption, era advances, injected
//!   faults), drained into a Chrome-trace/Perfetto-loadable JSON timeline.
//!   With the feature off every emit is an inline no-op, mirroring the
//!   [`check`](crate::check) pattern: the bench bins assert
//!   [`trace_compiled_in`] is `false` so tracing can never leak into a
//!   measurement build.

use std::ops::AddAssign;
use std::time::Instant;

/// Number of log2 buckets in a [`Histo`]: one per possible `ilog2` of a
/// `u64`, so any nanosecond value has a bucket.
pub const HISTO_BUCKETS: usize = 64;

/// A fixed-size log2-bucketed histogram of `u64` samples (nanoseconds, by
/// convention).
///
/// Bucket `i` holds samples whose value `v` satisfies `v.max(1).ilog2() == i`,
/// i.e. `v ∈ [2^i, 2^(i+1))` (bucket 0 additionally holds 0). Percentile
/// queries return the bucket's *upper* bound clamped to the exact observed
/// maximum, so for any recorded sample `v` at rank `r`, `percentile(r)` lies
/// in `[v, 2v + 1]` — a guaranteed ≤2× over-estimate, never an
/// under-estimate, which is the right bias for tail-latency reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histo {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histo {
    fn default() -> Self {
        Self {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        value.max(1).ilog2() as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= HISTO_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one sample. The entire fast path: an `ilog2`, two increments
    /// and a max on thread-private memory.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether any sample was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (diagnostics/tests).
    pub fn buckets(&self) -> &[u64; HISTO_BUCKETS] {
        &self.buckets
    }

    /// The quantile-`q` sample value (`q ∈ [0, 1]`), as the covering bucket's
    /// upper bound clamped to the observed maximum. 0 when empty. Monotone in
    /// `q`; `percentile(1.0) == max()`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the three percentiles the reports print.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }
}

impl AddAssign for Histo {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += *b;
        }
        self.count += rhs.count;
        self.max = self.max.max(rhs.max);
    }
}

/// The tier-1 histogram bundle carried inside every thread's
/// [`ThreadStats`](crate::ThreadStats). All values are nanoseconds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry {
    /// Data-structure operation latency (sampled 1-in-64 by the harness).
    pub op: Histo,
    /// Reclamation scan duration (watermark, heartbeat and epoch scans).
    pub scan: Histo,
    /// Successful ping/neutralization round-trips (broadcast → all acked).
    pub ping_rtt: Histo,
    /// Conceded handshake rounds: time burnt waiting before giving up on a
    /// silent peer (the stall an unresponsive thread inflicts on reclaimers).
    pub ping_stall: Histo,
    /// WFE helping slow-path entries (`protect_slow` duration).
    pub help_slow: Histo,
}

impl AddAssign for Telemetry {
    fn add_assign(&mut self, rhs: Self) {
        self.op += rhs.op;
        self.scan += rhs.scan;
        self.ping_rtt += rhs.ping_rtt;
        self.ping_stall += rhs.ping_stall;
        self.help_slow += rhs.help_slow;
    }
}

/// A started wall-clock timer (thin wrapper so call sites never touch
/// `std::time` directly and the `Option<Stopwatch>` bypass idiom stays
/// uniform).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the timer.
    #[inline]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.0.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// `Some(started timer)` when `enabled`, `None` otherwise — the tier-1
/// bypass: with [`SmrConfig::telemetry`](crate::SmrConfig) off, call sites
/// skip both `Instant::now()` calls and the histogram store.
#[inline]
pub fn stopwatch_if(enabled: bool) -> Option<Stopwatch> {
    if enabled {
        Some(Stopwatch::start())
    } else {
        None
    }
}

/// Whether the tier-2 `trace` feature is compiled into this build. The
/// measurement bins assert this is `false` (mirroring
/// [`check::compiled_in`](crate::check::compiled_in)); the `trace` bin
/// asserts it is `true`.
#[inline]
pub const fn trace_compiled_in() -> bool {
    cfg!(feature = "trace")
}

pub use trace::{Event, TraceKind};

/// Tier 2: the reclamation-lifecycle event trace.
///
/// Call sites emit unconditionally; with the `trace` feature off every emit
/// is an inline empty function so the default build carries zero overhead.
/// With it on, events go to per-thread bounded rings (oldest-overwritten)
/// and are drained, timestamp-sorted, by [`trace::end`]; render with
/// [`trace::to_chrome_json`] and load the result in Perfetto or
/// `chrome://tracing`.
pub mod trace {
    /// What happened. The `a`/`b` payload words of an [`Event`] are
    /// documented per variant.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TraceKind {
        /// A reclamation scan started. `a` = limbo-bag length.
        ScanBegin,
        /// The scan finished. `a` = records freed.
        ScanEnd,
        /// Ping broadcast sent. `a` = sequence number, `b` = pings delivered.
        PingSent,
        /// Ping acknowledged by its receiver. `a` = sequence number.
        PingAcked,
        /// The sender conceded the round. `a` = sequence number, `b` =
        /// peers still silent at concession.
        PingConceded,
        /// A silent peer was charged a strike. `a` = victim tid, `b` = its
        /// strike count after the charge.
        PingStrike,
        /// A read phase was neutralized (restart taken). `a` = sequence
        /// number acknowledged.
        Neutralized,
        /// A retire pushed the limbo bag across the HiWatermark. `a` = bag
        /// length, `b` = watermark.
        LimboHigh,
        /// Orphaned records were adopted from a departed thread. `a` =
        /// records adopted.
        OrphanAdopt,
        /// The global era/epoch advanced. `a` = new value.
        EraAdvance,
        /// WFE helping slow path entered. `a` = hazard slot.
        HelpSlowBegin,
        /// WFE helping slow path left.
        HelpSlowEnd,
        /// Injected stall fault fired (victim parks in a read phase). `a` =
        /// park budget in global ops.
        FaultStall,
        /// Injected black-hole fault fired (parks *and* ignores pings).
        /// `a` = park budget in global ops.
        FaultBlackhole,
        /// The parked victim resumed. `a` = 0 for stall, 1 for black hole.
        FaultParkEnd,
        /// Injected departure fired (unregister without quiescing). `a` =
        /// the victim's local op count.
        FaultDepart,
        /// A scan trigger found a peer's scan mid-flight and published its
        /// limbo bag to the combiner instead. `a` = records published.
        CombinePublish,
        /// The active scanner adopted published peer bags at its prologue.
        /// `a` = records adopted, `b` = bags.
        CombineAdopt,
    }

    /// One traced event.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Event {
        /// Nanoseconds since the trace epoch ([`begin`]).
        pub ts_ns: u64,
        /// Scheme thread id the event is attributed to.
        pub tid: u32,
        /// What happened.
        pub kind: TraceKind,
        /// First payload word (see [`TraceKind`]).
        pub a: u64,
        /// Second payload word (see [`TraceKind`]).
        pub b: u64,
    }

    #[cfg(feature = "trace")]
    pub use imp::{armed, begin, dropped, emit, end};

    #[cfg(not(feature = "trace"))]
    pub use noop::{armed, begin, dropped, emit, end};

    /// No-op stubs compiled when the `trace` feature is off: every emit in
    /// the schemes and the harness compiles to nothing.
    #[cfg(not(feature = "trace"))]
    mod noop {
        use super::{Event, TraceKind};

        /// See the `trace`-enabled variant; no-op in this build.
        #[inline(always)]
        pub fn begin(_capacity_per_thread: usize) {}
        /// See the `trace`-enabled variant; no-op in this build.
        #[inline(always)]
        pub fn emit(_tid: usize, _kind: TraceKind, _a: u64, _b: u64) {}
        /// See the `trace`-enabled variant; always empty in this build.
        #[inline(always)]
        pub fn end() -> Vec<Event> {
            Vec::new()
        }
        /// See the `trace`-enabled variant; always false in this build.
        #[inline(always)]
        pub fn armed() -> bool {
            false
        }
        /// See the `trace`-enabled variant; always 0 in this build.
        #[inline(always)]
        pub fn dropped() -> u64 {
            0
        }
    }

    #[cfg(feature = "trace")]
    mod imp {
        use super::{Event, TraceKind};
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
        use std::sync::{Mutex, OnceLock, PoisonError};
        use std::time::Instant;

        /// Ring slots are fixed: scheme tids are registry slots, bounded by
        /// `SmrConfig::max_threads` (≤ 64 everywhere in the workspace).
        const MAX_TIDS: usize = 256;

        struct Ring {
            buf: Vec<Event>,
            next: usize,
        }

        static ARMED: AtomicBool = AtomicBool::new(false);
        static CAP: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicU64 = AtomicU64::new(0);

        fn epoch() -> Instant {
            static E: OnceLock<Instant> = OnceLock::new();
            *E.get_or_init(Instant::now)
        }

        fn rings() -> &'static [Mutex<Ring>] {
            static R: OnceLock<Vec<Mutex<Ring>>> = OnceLock::new();
            R.get_or_init(|| {
                (0..MAX_TIDS)
                    .map(|_| {
                        Mutex::new(Ring {
                            buf: Vec::new(),
                            next: 0,
                        })
                    })
                    .collect()
            })
        }

        /// Arms tracing: clears all rings and starts accepting up to
        /// `capacity_per_thread` buffered events per thread (oldest
        /// overwritten beyond that).
        pub fn begin(capacity_per_thread: usize) {
            let _ = epoch();
            for r in rings() {
                let mut r = r.lock().unwrap_or_else(PoisonError::into_inner);
                r.buf.clear();
                r.next = 0;
            }
            DROPPED.store(0, Ordering::SeqCst);
            CAP.store(capacity_per_thread.max(1), Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }

        /// Whether tracing is currently armed.
        pub fn armed() -> bool {
            ARMED.load(Ordering::SeqCst)
        }

        /// Events overwritten since [`begin`] because a ring was full.
        pub fn dropped() -> u64 {
            DROPPED.load(Ordering::SeqCst)
        }

        /// Records one event into the calling scheme-thread's ring. Cheap
        /// but not free (a clock read and an uncontended per-tid lock) —
        /// tier 2 is for *seeing* executions, never for measuring them.
        pub fn emit(tid: usize, kind: TraceKind, a: u64, b: u64) {
            if !ARMED.load(Ordering::Relaxed) {
                return;
            }
            let d = epoch().elapsed();
            let ts_ns = d
                .as_secs()
                .saturating_mul(1_000_000_000)
                .saturating_add(u64::from(d.subsec_nanos()));
            let e = Event {
                ts_ns,
                tid: (tid % MAX_TIDS) as u32,
                kind,
                a,
                b,
            };
            let mut ring = rings()[tid % MAX_TIDS]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let cap = CAP.load(Ordering::Relaxed);
            if ring.buf.len() < cap {
                ring.buf.push(e);
            } else {
                let at = ring.next;
                ring.buf[at] = e;
                ring.next = (at + 1) % cap;
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Disarms tracing and drains every ring, returning all buffered
        /// events sorted by timestamp.
        pub fn end() -> Vec<Event> {
            ARMED.store(false, Ordering::SeqCst);
            let mut all = Vec::new();
            for r in rings() {
                let mut r = r.lock().unwrap_or_else(PoisonError::into_inner);
                all.append(&mut r.buf);
                r.next = 0;
            }
            all.sort_by_key(|e| e.ts_ns);
            all
        }
    }

    impl TraceKind {
        /// Chrome Trace Event Format phase: `B`/`E` bracket pairs for
        /// durations, `i` for instants.
        fn phase(self) -> char {
            match self {
                TraceKind::ScanBegin
                | TraceKind::HelpSlowBegin
                | TraceKind::FaultStall
                | TraceKind::FaultBlackhole => 'B',
                TraceKind::ScanEnd | TraceKind::HelpSlowEnd | TraceKind::FaultParkEnd => 'E',
                _ => 'i',
            }
        }

        /// Display name. `B`/`E` pairs must agree, so `FaultParkEnd` names
        /// itself from its payload (`a` = 0 stall, 1 black hole).
        fn name(self, a: u64) -> &'static str {
            match self {
                TraceKind::ScanBegin | TraceKind::ScanEnd => "scan",
                TraceKind::PingSent => "ping-sent",
                TraceKind::PingAcked => "ping-acked",
                TraceKind::PingConceded => "ping-conceded",
                TraceKind::PingStrike => "ping-strike",
                TraceKind::Neutralized => "neutralized",
                TraceKind::LimboHigh => "limbo-high",
                TraceKind::OrphanAdopt => "orphan-adopt",
                TraceKind::EraAdvance => "era-advance",
                TraceKind::HelpSlowBegin | TraceKind::HelpSlowEnd => "help-slow",
                TraceKind::FaultStall => "fault:stall",
                TraceKind::FaultBlackhole => "fault:blackhole",
                TraceKind::FaultParkEnd => {
                    if a == 0 {
                        "fault:stall"
                    } else {
                        "fault:blackhole"
                    }
                }
                TraceKind::FaultDepart => "fault:depart",
                TraceKind::CombinePublish => "combine-publish",
                TraceKind::CombineAdopt => "combine-adopt",
            }
        }

        /// Names for the two payload words in the JSON `args` object.
        fn arg_names(self) -> (&'static str, &'static str) {
            match self {
                TraceKind::ScanBegin => ("limbo", "_"),
                TraceKind::ScanEnd => ("freed", "_"),
                TraceKind::PingSent => ("seq", "sent"),
                TraceKind::PingAcked => ("seq", "_"),
                TraceKind::PingConceded => ("seq", "silent"),
                TraceKind::PingStrike => ("victim", "strikes"),
                TraceKind::Neutralized => ("seq", "_"),
                TraceKind::LimboHigh => ("len", "watermark"),
                TraceKind::OrphanAdopt => ("records", "_"),
                TraceKind::EraAdvance => ("era", "_"),
                TraceKind::HelpSlowBegin | TraceKind::HelpSlowEnd => ("slot", "_"),
                TraceKind::FaultStall | TraceKind::FaultBlackhole => ("for_ops", "_"),
                TraceKind::FaultParkEnd => ("blackhole", "_"),
                TraceKind::FaultDepart => ("at_op", "_"),
                TraceKind::CombinePublish => ("records", "_"),
                TraceKind::CombineAdopt => ("records", "bags"),
            }
        }
    }

    /// Renders events as a Chrome Trace Event Format JSON object
    /// (`{"traceEvents": [...]}`), loadable by Perfetto and
    /// `chrome://tracing`. Timestamps are microseconds; each scheme tid is
    /// one timeline row.
    pub fn to_chrome_json(events: &[Event]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let ph = e.kind.phase();
            let ts_us = e.ts_ns as f64 / 1_000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                e.kind.name(e.a),
                ph,
                ts_us,
                e.tid
            );
            if ph == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            let (an, bn) = e.kind.arg_names();
            let _ = write!(out, ",\"args\":{{\"{}\":{}", an, e.a);
            if bn != "_" {
                let _ = write!(out, ",\"{}\":{}", bn, e.b);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histo::bucket_index(0), 0);
        assert_eq!(Histo::bucket_index(1), 0);
        assert_eq!(Histo::bucket_index(2), 1);
        assert_eq!(Histo::bucket_index(3), 1);
        assert_eq!(Histo::bucket_index(4), 2);
        assert_eq!(Histo::bucket_index(1023), 9);
        assert_eq!(Histo::bucket_index(1024), 10);
        assert_eq!(Histo::bucket_index(u64::MAX), 63);
        for i in 0..HISTO_BUCKETS {
            assert_eq!(Histo::bucket_index(Histo::bucket_lower(i).max(1)), i);
            assert_eq!(Histo::bucket_index(Histo::bucket_upper(i)), i);
        }
        assert_eq!(Histo::bucket_lower(0), 0);
        assert_eq!(Histo::bucket_upper(0), 1);
        assert_eq!(Histo::bucket_lower(10), 1024);
        assert_eq!(Histo::bucket_upper(10), 2047);
        assert_eq!(Histo::bucket_upper(63), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histo::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let mut h = Histo::new();
        // 100 samples: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        // percentile(q) must be >= the true q-th sample and <= 2x it + 1.
        for (q, truth) in [(0.5, 50u64), (0.99, 99), (0.999, 100), (1.0, 100)] {
            let p = h.percentile(q);
            assert!(p >= truth, "p{q} = {p} < true {truth}");
            assert!(p <= 2 * truth + 1, "p{q} = {p} > 2x true {truth}");
        }
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = Histo::new();
        for v in [3u64, 17, 17, 180, 950, 12_000, 12_000, 500_000, 1 << 33] {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for q in qs {
            let p = h.percentile(q);
            assert!(p >= prev, "percentile({q}) = {p} < previous {prev}");
            prev = p;
        }
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn merge_is_commutative_and_counts_add() {
        let mut a = Histo::new();
        let mut b = Histo::new();
        for v in [1u64, 5, 900, 64_000] {
            a.record(v);
        }
        for v in [2u64, 2, 1 << 40] {
            b.record(v);
        }
        let mut ab = a;
        ab += b;
        let mut ba = b;
        ba += a;
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.max(), 1 << 40);
    }

    #[test]
    fn telemetry_bundle_merges_fieldwise() {
        let mut t1 = Telemetry::default();
        t1.op.record(100);
        t1.scan.record(9_000);
        let mut t2 = Telemetry::default();
        t2.op.record(200);
        t2.ping_stall.record(77);
        t1 += t2;
        assert_eq!(t1.op.count(), 2);
        assert_eq!(t1.scan.count(), 1);
        assert_eq!(t1.ping_stall.count(), 1);
        assert_eq!(t1.help_slow.count(), 0);
    }

    #[test]
    fn stopwatch_if_respects_the_bypass() {
        assert!(stopwatch_if(false).is_none());
        let sw = stopwatch_if(true).expect("enabled");
        assert!(sw.elapsed_ns() < 1_000_000_000);
    }

    #[test]
    fn trace_noops_unless_feature_enabled() {
        // In the default build these are all inline no-ops; under
        // `--features trace` they must round-trip events instead. Both
        // behaviours are covered so the test is meaningful either way.
        trace::begin(16);
        trace::emit(3, TraceKind::ScanBegin, 42, 0);
        trace::emit(3, TraceKind::ScanEnd, 40, 0);
        let events = trace::end();
        if trace_compiled_in() {
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, TraceKind::ScanBegin);
            assert_eq!(events[0].tid, 3);
            assert_eq!(events[0].a, 42);
            assert!(events[0].ts_ns <= events[1].ts_ns);
        } else {
            assert!(events.is_empty());
            assert!(!trace::armed());
        }
    }

    #[test]
    fn trace_rings_are_bounded() {
        if !trace_compiled_in() {
            return;
        }
        trace::begin(4);
        for i in 0..10 {
            trace::emit(0, TraceKind::PingAcked, i, 0);
        }
        let events = trace::end();
        assert_eq!(events.len(), 4, "ring must cap at its capacity");
        assert!(trace::dropped() >= 6);
    }

    #[test]
    fn chrome_json_shape_is_loadable() {
        let events = vec![
            Event {
                ts_ns: 1_500,
                tid: 0,
                kind: TraceKind::ScanBegin,
                a: 128,
                b: 0,
            },
            Event {
                ts_ns: 2_000,
                tid: 1,
                kind: TraceKind::PingSent,
                a: 7,
                b: 3,
            },
            Event {
                ts_ns: 9_500,
                tid: 0,
                kind: TraceKind::ScanEnd,
                a: 100,
                b: 0,
            },
        ];
        let json = trace::to_chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"scan\",\"ph\":\"B\",\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"ping-sent\",\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"seq\":7,\"sent\":3}"));
        // Balanced braces/brackets (cheap well-formedness proxy; the
        // Perfetto load is exercised by the CI trace-smoke step).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fault_park_end_names_match_their_begin() {
        let events = vec![
            Event {
                ts_ns: 10,
                tid: 2,
                kind: TraceKind::FaultBlackhole,
                a: 2048,
                b: 0,
            },
            Event {
                ts_ns: 90,
                tid: 2,
                kind: TraceKind::FaultParkEnd,
                a: 1,
                b: 0,
            },
        ];
        let json = trace::to_chrome_json(&events);
        assert_eq!(json.matches("\"name\":\"fault:blackhole\"").count(), 2);
    }
}
