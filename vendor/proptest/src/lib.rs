//! Vendored, API-compatible stub for the subset of `proptest` used by this
//! workspace (see `vendor/README.md`).
//!
//! Differences from real proptest: shrinking is a naive iterative pass
//! (repeatedly adopt the first simpler candidate that still fails, instead of
//! proptest's lazy shrink trees), and the RNG is seeded deterministically per
//! test (from the test's name), so every run generates the same cases —
//! failures are reproducible by construction.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (tests derive it from the test name).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first.
    ///
    /// The default is "cannot shrink". Implementations must only return
    /// values the strategy could itself have generated, and must make
    /// progress (no candidate equal to `value`), or the shrink loop in
    /// [`shrink_failure`] would spin until its step cap.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }

    // `shrink` stays at the "cannot shrink" default: `f` is not invertible,
    // so mapped outputs cannot be traced back to shrinkable inputs. (Real
    // proptest shrinks the *input* lazily; this stub generates eagerly.)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }

    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Numeric shrink candidates used by the range strategies: the range
/// minimum, the midpoint toward it, and the predecessor — simplest first,
/// deduplicated.
fn shrink_toward<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy
        + PartialEq
        + PartialOrd
        + std::ops::Sub<Output = T>
        + std::ops::Add<Output = T>
        + Halvable,
{
    if value == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = lo + (value - lo).halved();
    if mid != lo && mid != value {
        out.push(mid);
    }
    let pred = value - T::one();
    if pred != lo && pred != mid {
        out.push(pred);
    }
    out
}

/// Tiny numeric helper so [`shrink_toward`] can stay generic without a
/// num-traits dependency.
trait Halvable {
    fn halved(self) -> Self;
    fn one() -> Self;
}

macro_rules! impl_halvable {
    ($($t:ty),*) => {$(
        impl Halvable for $t {
            fn halved(self) -> Self { self / 2 }
            fn one() -> Self { 1 }
        }
    )*};
}

impl_halvable!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.start;
            // Structural candidates first: keep either half (still >= the
            // minimum length), then drop a single leading element.
            let target = min.max(value.len() / 2);
            if target < value.len() {
                out.push(value[..target].to_vec());
                out.push(value[value.len() - target..].to_vec());
            }
            if value.len() > min {
                out.push(value[1..].to_vec());
            }
            // Then element-wise shrinks (each element strategy yields at
            // most a few candidates), capped globally so candidate lists
            // stay small on long vectors.
            const MAX_CANDIDATES: usize = 32;
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                    if out.len() >= MAX_CANDIDATES {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
    /// Maximum rejected cases (accepted for compatibility; unused).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// FNV-1a hash used to derive a per-test RNG seed from the test name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Ties a case-running closure's argument type to `S::Value` so the
/// `proptest!` macro expansion type-checks without naming strategy types.
#[doc(hidden)]
pub fn case_runner<S, R, F>(_strategies: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    run
}

/// Boxed panic payload, as produced by `std::panic::catch_unwind`.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Naive iterative shrinking: repeatedly adopt the first shrink candidate
/// that still fails until no candidate fails (or the step cap is hit), and
/// return the minimized value, the number of successful shrink steps, and
/// the panic payload of the minimal failure.
pub fn shrink_failure<S, R, F>(
    strategy: &S,
    mut value: S::Value,
    run: F,
    mut payload: PanicPayload,
) -> (S::Value, u32, PanicPayload)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<R, PanicPayload>,
{
    // Each step strictly simplifies the value, so this cap only matters if a
    // strategy's `shrink` violates its progress contract.
    const MAX_STEPS: u32 = 512;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for cand in strategy.shrink(&value) {
            if let Err(p) = run(cand.clone()) {
                value = cand;
                payload = p;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, steps, payload)
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::proptest;
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Declares property tests.
///
/// Supported shape (the one used in this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(xs in vec(0u64..10, 1..100)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                let strategies = ($($strategy,)+);
                let run_case = $crate::case_runner(&strategies, |candidate| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let ($($pat,)+) = candidate;
                        $body
                    }))
                });
                for case in 0..config.cases {
                    let values = $crate::Strategy::generate(&strategies, &mut rng);
                    if let Err(payload) = run_case(::std::clone::Clone::clone(&values)) {
                        let (minimal, steps, payload) =
                            $crate::shrink_failure(&strategies, values, &run_case, payload);
                        eprintln!(
                            "proptest case {}/{} of `{}` failed; shrunk {} step(s) to minimal input {:?} (deterministic seed; rerun reproduces it)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            steps,
                            minimal,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 1u64..=100, y in 0u8..3) {
            assert!((1..=100).contains(&x));
            assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respected(xs in collection::vec(0u64..10, 1..50)) {
            assert!(!xs.is_empty() && xs.len() < 50);
            assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn prop_map_applies(s in (0u8..3, 1u64..=9).prop_map(|(a, b)| (a as u64) * 10 + b)) {
            assert!((1..=29).contains(&s));
        }
    }

    fn fails_if<S: crate::Strategy>(
        strategy: &S,
        start: S::Value,
        bad: impl Fn(&S::Value) -> bool,
    ) -> (S::Value, u32)
    where
        S::Value: Clone,
    {
        assert!(bad(&start), "starting value must fail");
        let (minimal, steps, _payload) = crate::shrink_failure(
            strategy,
            start,
            |v| {
                if bad(&v) {
                    Err(Box::new("still failing") as crate::PanicPayload)
                } else {
                    Ok(())
                }
            },
            Box::new("initial failure"),
        );
        assert!(bad(&minimal), "shrinking must preserve the failure");
        (minimal, steps)
    }

    #[test]
    fn shrinks_numeric_failure_to_boundary() {
        // "fails when >= 10" must minimize to exactly 10.
        let (minimal, steps) = fails_if(&(0u64..100), 87, |&v| v >= 10);
        assert_eq!(minimal, 10);
        assert!(steps > 0);
    }

    #[test]
    fn shrinks_tuple_components_independently() {
        let strategy = (0u64..100, 0u64..100);
        let (minimal, _) = fails_if(&strategy, (40, 70), |&(a, b)| a >= 3 && b >= 5);
        assert_eq!(minimal, (3, 5));
    }

    #[test]
    fn shrinks_vec_failure_to_short_witness() {
        // "fails when it contains a value >= 5" minimizes to a single
        // element (the minimum length) holding the boundary value.
        let strategy = collection::vec(0u64..10, 1..50);
        let start = vec![1, 9, 2, 7, 3, 8, 0, 6];
        let (minimal, _) = fails_if(&strategy, start, |v| v.iter().any(|&x| x >= 5));
        assert_eq!(minimal, vec![5]);
    }

    #[test]
    fn clean_value_shrinks_zero_steps() {
        let (minimal, steps) = fails_if(&(0u64..100), 0, |_| true);
        assert_eq!((minimal, steps), (0, 0));
    }
}
