//! A fixed-size hash map with Harris-Michael-list buckets (the HMLHT
//! structure of the Publish-on-Ping benchmark / setbench).
//!
//! The map is an array of `HmCore` buckets (the engine behind
//! [`HmList`](crate::HmList)) sharing **one** reclaimer instance: a key is
//! hashed (SplitMix64 finalizer) to pick
//! its bucket and the operation proceeds exactly as on the flat list, with
//! the bucket's head sentinel as the operation's root. Since every bucket
//! list restarts from its own head (the `FromRoot` policy), the NBR phase
//! discipline is preserved — a neutralized operation restarts its read phase
//! from the root it started at — so the map runs under every reclaimer in
//! the workspace, including NBR/NBR+ and the Publish-on-Ping family.
//!
//! The bucket count is fixed at construction (no resizing), mirroring the
//! related repos' HMLHT: short chains turn the lists' O(n) traversals into
//! near-O(1) operations, which shifts the SMR cost profile from
//! traversal-dominated to operation-bracket-dominated — a usefully different
//! scenario for the benchmark matrix.

use crate::hm_list::{HmCore, RestartPolicy};
use crate::ConcurrentSet;
use smr_common::{Smr, SmrConfig};

/// Default number of buckets (used by [`HmHashMap::new`]).
pub const DEFAULT_BUCKETS: usize = 64;

/// A fixed-size hash set of `u64` keys built from Harris-Michael-list
/// buckets sharing one reclaimer.
pub struct HmHashMap<S: Smr> {
    smr: S,
    buckets: Box<[HmCore]>,
}

// SAFETY: buckets own their nodes through `Atomic` links; all shared access
// goes through the `Smr` protection protocol, and `Smr: Send + Sync`.
unsafe impl<S: Smr> Send for HmHashMap<S> {}
// SAFETY: as above — all mutation is via atomics and CAS.
unsafe impl<S: Smr> Sync for HmHashMap<S> {}

/// SplitMix64 finalizer: spreads adjacent keys across buckets.
#[inline]
fn hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<S: Smr> HmHashMap<S> {
    /// Creates an empty map with [`DEFAULT_BUCKETS`] buckets.
    pub fn new(config: SmrConfig) -> Self {
        Self::with_buckets(config, DEFAULT_BUCKETS)
    }

    /// Creates an empty map with a specific bucket count.
    pub fn with_buckets(config: SmrConfig, buckets: usize) -> Self {
        assert!(buckets > 0, "hash map needs at least one bucket");
        Self {
            smr: S::new(config),
            buckets: (0..buckets)
                .map(|_| HmCore::new(RestartPolicy::FromRoot))
                .collect(),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &HmCore {
        &self.buckets[(hash(key) % self.buckets.len() as u64) as usize]
    }
}

impl<S: Smr> ConcurrentSet<S> for HmHashMap<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.bucket(key).contains(&self.smr, ctx, key)
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.bucket(key).insert(&self.smr, ctx, key)
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.bucket(key).remove(&self.smr, ctx, key)
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.buckets.iter().map(|b| b.count(&self.smr, ctx)).sum()
    }

    fn name() -> &'static str {
        "hm-hashmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::NbrPlus;
    use smr_baselines::{Debra, HazardPointers};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let map = HmHashMap::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = map.smr().register(0);
        assert!(map.insert(&mut ctx, 4));
        assert!(map.insert(&mut ctx, 68)); // likely a different bucket
        assert!(!map.insert(&mut ctx, 4));
        assert!(map.contains(&mut ctx, 4));
        assert!(map.remove(&mut ctx, 4));
        assert!(!map.contains(&mut ctx, 4));
        assert_eq!(map.size(&mut ctx), 1);
        map.smr().unregister(&mut ctx);
    }

    #[test]
    fn keys_spread_across_buckets() {
        let map = HmHashMap::<Debra>::with_buckets(SmrConfig::for_tests(), 8);
        let mut ctx = map.smr().register(0);
        for k in 1..=256u64 {
            assert!(map.insert(&mut ctx, k));
        }
        assert_eq!(map.size(&mut ctx), 256);
        let occupied = map
            .buckets
            .iter()
            .filter(|b| b.count(map.smr(), &mut ctx) > 0)
            .count();
        assert_eq!(occupied, 8, "256 keys must land in all 8 buckets");
        map.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_under_nbr_plus() {
        let map = HmHashMap::<NbrPlus>::with_buckets(SmrConfig::for_tests(), 8);
        model_check(&map, 4_000, 64, 21);
    }

    #[test]
    fn model_check_under_hp() {
        let map = HmHashMap::<HazardPointers>::with_buckets(SmrConfig::for_tests(), 8);
        model_check(&map, 4_000, 64, 22);
    }

    #[test]
    fn concurrent_disjoint_stress() {
        let map = Arc::new(HmHashMap::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(map, 4, 3_000);
    }
}
