//! Workspace-level integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only provides the
//! shared helpers they use (deterministic RNG, generic stress drivers), so that
//! every integration test exercises the public APIs of `nbr`,
//! `smr-baselines`, `conc-ds` and `smr-harness` exactly as a downstream user
//! would.

use conc_ds::ConcurrentSet;
use smr_common::Smr;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Deterministic SplitMix64 sequence for reproducible tests.
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next pseudo-random value (named to avoid clashing with `Iterator::next`).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Single-threaded randomized differential test against a `BTreeSet` model.
pub fn model_check<S: Smr, DS: ConcurrentSet<S>>(ds: &DS, ops: usize, key_range: u64, seed: u64) {
    let mut ctx = ds.smr().register(0);
    let mut model = BTreeSet::new();
    let mut rng = SplitMix(seed);
    for _ in 0..ops {
        let key = 1 + rng.next_u64() % key_range;
        match rng.next_u64() % 3 {
            0 => assert_eq!(ds.insert(&mut ctx, key), model.insert(key), "insert({key})"),
            1 => assert_eq!(
                ds.remove(&mut ctx, key),
                model.remove(&key),
                "remove({key})"
            ),
            _ => assert_eq!(
                ds.contains(&mut ctx, key),
                model.contains(&key),
                "contains({key})"
            ),
        }
    }
    assert_eq!(ds.size(&mut ctx), model.len(), "final size");
    ds.smr().unregister(&mut ctx);
}

/// Multi-threaded stress with per-thread disjoint key ranges: every return
/// value is deterministic and the final size must match the surviving keys.
pub fn disjoint_stress<S, DS>(ds: Arc<DS>, threads: usize, ops_per_thread: usize, span: u64)
where
    S: Smr,
    DS: ConcurrentSet<S> + Send + Sync + 'static,
{
    let barrier = Arc::new(Barrier::new(threads));
    let survivors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let ds = Arc::clone(&ds);
        let barrier = Arc::clone(&barrier);
        let survivors = Arc::clone(&survivors);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ds.smr().register(t);
            let base = 1 + (t as u64) * 10_000_000;
            let mut rng = SplitMix(0xFEED_0000 + t as u64);
            let mut local = BTreeSet::new();
            barrier.wait();
            for _ in 0..ops_per_thread {
                let key = base + rng.next_u64() % span;
                match rng.next_u64() % 3 {
                    0 => assert_eq!(ds.insert(&mut ctx, key), local.insert(key)),
                    1 => assert_eq!(ds.remove(&mut ctx, key), local.remove(&key)),
                    _ => assert_eq!(ds.contains(&mut ctx, key), local.contains(&key)),
                }
            }
            survivors.fetch_add(local.len() as u64, Ordering::Relaxed);
            ds.smr().unregister(&mut ctx);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut ctx = ds.smr().register(0);
    assert_eq!(ds.size(&mut ctx) as u64, survivors.load(Ordering::Relaxed));
    ds.smr().unregister(&mut ctx);
}

/// Multi-threaded shared-key stress: all threads operate on the same small key
/// range (maximum contention). Return values are not checkable, but the final
/// contents must be a subset of the key range and the structure must stay
/// internally consistent (`size` terminates and agrees with `contains`).
pub fn contended_stress<S, DS>(ds: Arc<DS>, threads: usize, ops_per_thread: usize, key_range: u64)
where
    S: Smr,
    DS: ConcurrentSet<S> + Send + Sync + 'static,
{
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let ds = Arc::clone(&ds);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ds.smr().register(t);
            let mut rng = SplitMix(0xABCD + t as u64);
            barrier.wait();
            for _ in 0..ops_per_thread {
                let key = 1 + rng.next_u64() % key_range;
                match rng.next_u64() % 3 {
                    0 => {
                        ds.insert(&mut ctx, key);
                    }
                    1 => {
                        ds.remove(&mut ctx, key);
                    }
                    _ => {
                        ds.contains(&mut ctx, key);
                    }
                }
            }
            ds.smr().unregister(&mut ctx);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Post-condition: a quiescent traversal terminates and every key it finds
    // is inside the workload's key range.
    let mut ctx = ds.smr().register(0);
    let size = ds.size(&mut ctx);
    assert!(size as u64 <= key_range);
    let mut present = 0;
    for k in 1..=key_range {
        if ds.contains(&mut ctx, k) {
            present += 1;
        }
    }
    assert_eq!(present, size, "contains() must agree with size()");
    ds.smr().unregister(&mut ctx);
}

/// Chain-unlink stress: threads repeatedly delete *runs of adjacent keys*
/// front-to-back, traverse across the freshly marked region, and re-insert.
/// Adjacent concurrent deletions are what grow multi-node marked chains, so
/// this drives the Harris list's batch-unlink fast path (walk the marked
/// chain, remove it with one CAS) that `CAN_TRAVERSE_UNLINKED` enables —
/// single-threaded checks like `model_check` never build a chain longer than
/// one node, so without this case the smoke matrix would not execute the
/// chain traversal at all. Oversubscribe `threads` past the host's cores to
/// reproduce the scheduling the original marked-chain race needed.
pub fn chain_unlink_stress<S, DS>(
    ds: Arc<DS>,
    threads: usize,
    rounds: usize,
    runs: u64,
    run_len: u64,
) where
    S: Smr,
    DS: ConcurrentSet<S> + Send + Sync + 'static,
{
    let total = runs * run_len;
    {
        let mut ctx = ds.smr().register(0);
        for k in 1..=total {
            ds.insert(&mut ctx, k);
        }
        ds.smr().unregister(&mut ctx);
    }
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let ds = Arc::clone(&ds);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ds.smr().register(t);
            let mut rng = SplitMix(0xC4A1_0000 ^ t as u64);
            barrier.wait();
            for _ in 0..rounds {
                // Threads keep colliding on a handful of runs, so several
                // adjacent nodes are marked before any of them is physically
                // unlinked — the next search walks the chain and batch-
                // unlinks it.
                let base = (rng.next_u64() % runs) * run_len;
                for k in 1..=run_len {
                    ds.remove(&mut ctx, base + k);
                }
                for k in 1..=run_len {
                    ds.contains(&mut ctx, base + k);
                }
                for k in 1..=run_len {
                    ds.insert(&mut ctx, base + k);
                }
            }
            ds.smr().unregister(&mut ctx);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Quiescent post-condition: the structure stayed internally consistent.
    let mut ctx = ds.smr().register(0);
    let size = ds.size(&mut ctx);
    assert!(size as u64 <= total);
    let mut present = 0;
    for k in 1..=total {
        if ds.contains(&mut ctx, k) {
            present += 1;
        }
    }
    assert_eq!(present, size, "contains() must agree with size()");
    ds.smr().unregister(&mut ctx);
}
