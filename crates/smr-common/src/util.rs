//! Shared reclaimer plumbing: the global era clock used by the epoch- and
//! interval-based schemes and the orphan pool that absorbs records whose
//! retiring thread deregistered before they became provably safe. Lives in
//! `smr-common` so both the baseline reclaimers and the Publish-on-Ping
//! family (`smr-pop`) build on the same primitives.

use crate::retired::Retired;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A global monotonically increasing era/epoch counter.
#[derive(Debug, Default)]
pub struct EraClock {
    era: AtomicU64,
}

impl EraClock {
    /// Starts the clock at era 1 (era 0 is reserved for "never born", so a
    /// record allocated before any advance still has a valid interval).
    pub fn new() -> Self {
        Self {
            era: AtomicU64::new(1),
        }
    }

    /// The current era.
    #[inline]
    pub fn now(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Advances the era by one, returning the new value.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.era.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the era only if it still equals `seen` (avoids redundant
    /// advances when many threads race to bump the epoch).
    #[inline]
    pub fn advance_from(&self, seen: u64) -> bool {
        self.era
            .compare_exchange(seen, seen + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

/// Records whose owner deregistered before they were provably safe. They are
/// destroyed when the reclaimer itself is dropped, at which point no thread
/// can hold references to them.
#[derive(Debug, Default)]
pub struct OrphanPool {
    records: Mutex<Vec<Retired>>,
}

impl OrphanPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds records to the pool.
    pub fn adopt(&self, records: Vec<Retired>) {
        if records.is_empty() {
            return;
        }
        self.records.lock().unwrap().extend(records);
    }

    /// Number of records currently parked.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when the pool holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every parked record out of the pool, transferring ownership to
    /// the caller — the survivor-adoption path: a live thread folds a
    /// departed peer's leftovers into its own limbo bag, where they flow
    /// through the scheme's ordinary protection-checked sweep instead of
    /// waiting for the reclaimer's `Drop`. Moving a [`Retired`] is safe;
    /// only freeing is not.
    ///
    /// Uses `try_lock` so the call is non-blocking on the reclamation path:
    /// if another thread holds the pool (adopting or taking), the caller
    /// simply gets nothing this round and retries at its next scan.
    pub fn take_all(&self) -> Vec<Retired> {
        match self.records.try_lock() {
            Ok(mut records) => std::mem::take(&mut *records),
            Err(_) => Vec::new(),
        }
    }

    /// Destroys every parked record.
    ///
    /// # Safety
    /// Callable only when no thread can reference the records any more
    /// (normally from the reclaimer's `Drop`).
    pub unsafe fn drain_and_free(&self) {
        let mut records = self.records.lock().unwrap();
        for r in records.drain(..) {
            r.reclaim();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;

    struct N {
        header: NodeHeader,
    }
    crate::impl_smr_node!(N);

    #[test]
    fn era_clock_monotonic() {
        let c = EraClock::new();
        let a = c.now();
        let b = c.advance();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_from_only_succeeds_on_match() {
        let c = EraClock::new();
        let seen = c.now();
        assert!(c.advance_from(seen));
        assert!(!c.advance_from(seen), "stale advance must fail");
        assert_eq!(c.now(), seen + 1);
    }

    #[test]
    fn orphan_pool_holds_and_frees() {
        let pool = OrphanPool::new();
        assert!(pool.is_empty());
        let raws: Vec<_> = (0..3)
            .map(|_| {
                crate::recycle::alloc_node_raw(N {
                    header: NodeHeader::new(),
                })
            })
            .collect();
        let retired = raws
            .iter()
            .map(|&r| unsafe { Retired::new(r, 0) })
            .collect();
        pool.adopt(retired);
        assert_eq!(pool.len(), 3);
        unsafe { pool.drain_and_free() };
        assert!(pool.is_empty());
    }

    #[test]
    fn take_all_transfers_ownership_to_survivor() {
        let pool = OrphanPool::new();
        let raws: Vec<_> = (0..4)
            .map(|_| {
                crate::recycle::alloc_node_raw(N {
                    header: NodeHeader::new(),
                })
            })
            .collect();
        let retired: Vec<Retired> = raws
            .iter()
            .map(|&r| unsafe { Retired::new(r, 0) })
            .collect();
        pool.adopt(retired);
        let taken = pool.take_all();
        assert_eq!(taken.len(), 4);
        assert!(pool.is_empty(), "take_all must empty the pool");
        assert!(pool.take_all().is_empty());
        for r in taken {
            // SAFETY: test-local records; nothing else references them.
            unsafe { r.reclaim() };
        }
    }
}
