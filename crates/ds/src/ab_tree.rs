//! A leaf-oriented concurrent (a,b)-tree, standing in for Brown's lock-free
//! ABTree in experiment E3 (see DESIGN.md, substitution S3).
//!
//! Shape and behaviour relevant to the paper's experiment:
//!
//! * **Leaf-oriented**: internal nodes only route; every set element lives in
//!   a leaf of up to [`LEAF_CAP`] keys, so the tree is shallow and traversals
//!   are short — the contention profile E3 studies (key range 2 M vs. 200).
//! * **Synchronization-free searches** with per-node version validation
//!   (seqlock style): a reader that observes a concurrent structural change
//!   restarts **from the root**, which is exactly the pattern that makes the
//!   structure NBR-compatible (Section 5.2).
//! * **Copy-on-write leaves**: every insert/remove builds a new leaf and swings
//!   the parent's child pointer, retiring the old leaf — the same record
//!   turnover per update as Brown's LLX/SCX-based ABTree, which is what
//!   exercises the reclaimers.
//! * **In-place internal nodes**: routing keys/children are mutated under the
//!   node's versioned lock; internal nodes are never retired (they only gain
//!   keys or are split). Deep splits (a full parent of a full leaf) are rare
//!   and serialized behind a structure-wide mutex. Underflow is handled
//!   lazily: a leaf may become empty and is simply kept (a *relaxed* (a,b)-tree);
//!   this does not affect correctness and is documented as part of S3.
//!
//! NBR integration: the search is the Φ_read; updates reserve
//! `[parent, leaf]` before their Φ_write (2 reservations).

use crate::{check_key, ConcurrentSet};
use smr_common::{recycle, Atomic, NodeHeader, SeqLock, Shared, Smr, SmrConfig};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum keys per leaf node (the `b` of the (a,b)-tree for leaves).
pub const LEAF_CAP: usize = 16;
/// Maximum routing keys per internal node.
pub const INT_CAP: usize = 16;

/// A node of the (a,b)-tree. `height == 0` ⇒ leaf.
pub struct AbNode {
    header: NodeHeader,
    lock: SeqLock,
    removed: AtomicBool,
    /// Distance to the leaves; immutable after construction.
    height: usize,
    // --- leaf payload (immutable after publication) ---
    leaf_len: usize,
    leaf_keys: [u64; LEAF_CAP],
    // --- internal payload (mutated only under `lock`) ---
    int_len: AtomicUsize,
    int_keys: [AtomicU64; INT_CAP],
    children: [Atomic<AbNode>; INT_CAP + 1],
}
smr_common::impl_smr_node!(AbNode);

impl AbNode {
    fn new_leaf(keys: &[u64]) -> Self {
        debug_assert!(keys.len() <= LEAF_CAP);
        let mut leaf_keys = [0u64; LEAF_CAP];
        leaf_keys[..keys.len()].copy_from_slice(keys);
        Self {
            header: NodeHeader::new(),
            lock: SeqLock::new(),
            removed: AtomicBool::new(false),
            height: 0,
            leaf_len: keys.len(),
            leaf_keys,
            int_len: AtomicUsize::new(0),
            int_keys: std::array::from_fn(|_| AtomicU64::new(0)),
            children: std::array::from_fn(|_| Atomic::null()),
        }
    }

    fn new_internal(height: usize, keys: &[u64], children: &[Shared<AbNode>]) -> Self {
        debug_assert!(height >= 1);
        debug_assert_eq!(children.len(), keys.len() + 1);
        debug_assert!(keys.len() <= INT_CAP);
        let node = Self {
            header: NodeHeader::new(),
            lock: SeqLock::new(),
            removed: AtomicBool::new(false),
            height,
            leaf_len: 0,
            leaf_keys: [0u64; LEAF_CAP],
            int_len: AtomicUsize::new(keys.len()),
            int_keys: std::array::from_fn(|i| AtomicU64::new(keys.get(i).copied().unwrap_or(0))),
            children: std::array::from_fn(|i| match children.get(i) {
                Some(&c) => Atomic::new(c),
                None => Atomic::null(),
            }),
        };
        node
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.height == 0
    }

    #[inline]
    fn leaf_keys(&self) -> &[u64] {
        &self.leaf_keys[..self.leaf_len]
    }

    #[inline]
    fn leaf_contains(&self, key: u64) -> bool {
        self.leaf_keys().binary_search(&key).is_ok()
    }

    /// Index of the child an operation on `key` must follow (internal nodes,
    /// caller must hold the lock or validate the version afterwards).
    #[inline]
    fn route(&self, key: u64, len: usize) -> usize {
        let mut idx = len;
        for i in 0..len {
            if key < self.int_keys[i].load(Ordering::Acquire) {
                idx = i;
                break;
            }
        }
        idx
    }

    /// Finds the child slot currently holding `child`, if any. Caller holds
    /// the lock.
    fn slot_of(&self, child: Shared<AbNode>) -> Option<usize> {
        let len = self.int_len.load(Ordering::Acquire);
        (0..=len).find(|&i| self.children[i].load(Ordering::Acquire).ptr_eq(child))
    }

    /// Inserts a routing key and the child to its right at `pos`, shifting the
    /// suffix right by one. Caller holds the lock and has checked capacity.
    fn insert_routing(&self, pos: usize, key: u64, right_child: Shared<AbNode>) {
        let len = self.int_len.load(Ordering::Acquire);
        debug_assert!(len < INT_CAP);
        debug_assert!(pos <= len);
        let mut i = len;
        while i > pos {
            let k = self.int_keys[i - 1].load(Ordering::Acquire);
            self.int_keys[i].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Acquire);
            self.children[i + 1].store(c, Ordering::Release);
            i -= 1;
        }
        self.int_keys[pos].store(key, Ordering::Release);
        self.children[pos + 1].store(right_child, Ordering::Release);
        self.int_len.store(len + 1, Ordering::Release);
    }
}

/// The relaxed concurrent (a,b)-tree.
pub struct AbTree<S: Smr> {
    smr: S,
    root: Atomic<AbNode>,
    root_lock: SeqLock,
    structure_lock: Mutex<()>,
}

// SAFETY: the tree owns its nodes through `Atomic` links; all shared access
// goes through the `Smr` protection protocol, and `Smr: Send + Sync`.
unsafe impl<S: Smr> Send for AbTree<S> {}
// SAFETY: as above — mutation is via atomics under per-node seqlocks.
unsafe impl<S: Smr> Sync for AbTree<S> {}

/// Result of a search: the leaf responsible for the key and its parent
/// (`None` when the leaf is the root).
struct SearchResult {
    parent: Option<Shared<AbNode>>,
    leaf: Shared<AbNode>,
    /// Protection slot holding the leaf (for `protect_copy` if ever needed).
    _leaf_slot: usize,
}

enum SearchOutcome {
    Found(SearchResult),
    /// Neutralized or version validation failed: restart from the root.
    Restart,
}

impl<S: Smr> AbTree<S> {
    /// Creates an empty tree whose reclaimer is configured by `config`.
    pub fn new(config: SmrConfig) -> Self {
        Self::with_smr(S::new(config))
    }

    /// Creates an empty tree around an existing reclaimer instance.
    pub fn with_smr(smr: S) -> Self {
        let root = Shared::from_raw(recycle::alloc_node_raw(AbNode::new_leaf(&[])));
        Self {
            smr,
            root: Atomic::new(root),
            root_lock: SeqLock::new(),
            structure_lock: Mutex::new(()),
        }
    }

    /// One optimistic descent from the root to the leaf owning `key`.
    fn search(&self, ctx: &mut S::ThreadCtx, key: u64) -> SearchOutcome {
        let mut parent: Option<Shared<AbNode>> = None;
        let mut slot = 0usize;
        let mut node = self.smr.protect(ctx, slot, &self.root);
        if self.smr.checkpoint(ctx) {
            return SearchOutcome::Restart;
        }
        loop {
            // SAFETY: `node` is covered by `slot` (the `protect` above).
            let node_ref = unsafe { node.deref() };
            if node_ref.is_leaf() {
                return SearchOutcome::Found(SearchResult {
                    parent,
                    leaf: node,
                    _leaf_slot: slot,
                });
            }
            // Version-validated read of the routing decision.
            let version = node_ref.lock.read_version();
            if SeqLock::version_is_locked(version) {
                if self.smr.checkpoint(ctx) {
                    return SearchOutcome::Restart;
                }
                std::hint::spin_loop();
                continue; // retry this node (internal nodes are never freed)
            }
            let len = node_ref.int_len.load(Ordering::Acquire).min(INT_CAP);
            let idx = node_ref.route(key, len);
            let next_slot = (slot + 1) % 3;
            let child = self.smr.protect(ctx, next_slot, &node_ref.children[idx]);
            fence(Ordering::Acquire);
            if !node_ref.lock.validate(version) {
                // Concurrent structural change: restart from the root, as the
                // NBR-compatibility argument of Section 5.2 requires.
                return SearchOutcome::Restart;
            }
            if self.smr.checkpoint(ctx) {
                return SearchOutcome::Restart;
            }
            if child.is_null() {
                // Transient inconsistency (should have been caught by the
                // validation); restart defensively.
                return SearchOutcome::Restart;
            }
            parent = Some(node);
            node = child;
            slot = next_slot;
        }
    }

    /// Locks the parent slot of `leaf` (either the parent node or the root
    /// slot) and validates that it still points at `leaf`. On success returns
    /// the child index (`None` for the root slot); the caller must unlock.
    fn lock_parent_of(
        &self,
        parent: Option<Shared<AbNode>>,
        leaf: Shared<AbNode>,
    ) -> Result<Option<usize>, ()> {
        match parent {
            None => {
                self.root_lock.lock();
                if self.root.load(Ordering::Acquire).ptr_eq(leaf) {
                    Ok(None)
                } else {
                    self.root_lock.unlock();
                    Err(())
                }
            }
            Some(p) => {
                // SAFETY: the caller reserved `p` at its phase boundary
                // before calling `lock_parent_of`.
                let p_ref = unsafe { p.deref() };
                p_ref.lock.lock();
                if !p_ref.removed.load(Ordering::Acquire) {
                    if let Some(idx) = p_ref.slot_of(leaf) {
                        return Ok(Some(idx));
                    }
                }
                p_ref.lock.unlock();
                Err(())
            }
        }
    }

    fn unlock_parent(&self, parent: Option<Shared<AbNode>>) {
        match parent {
            None => self.root_lock.unlock(),
            // SAFETY: the caller still holds the reservation it took for
            // `lock_parent_of`; the lock it holds also pins the record.
            Some(p) => unsafe { p.deref() }.lock.unlock(),
        }
    }

    /// Publishes `new_child` in the slot that held `leaf` and retires `leaf`.
    /// The parent slot must be locked (via [`AbTree::lock_parent_of`]).
    fn replace_child(
        &self,
        ctx: &mut S::ThreadCtx,
        parent: Option<Shared<AbNode>>,
        slot_idx: Option<usize>,
        leaf: Shared<AbNode>,
        new_child: Shared<AbNode>,
    ) {
        match (parent, slot_idx) {
            (None, _) => self.root.store(new_child, Ordering::Release),
            (Some(p), Some(idx)) => {
                // SAFETY: the caller reserved `p` and holds its lock.
                unsafe { p.deref() }.children[idx].store(new_child, Ordering::Release)
            }
            (Some(_), None) => unreachable!("validated parent must contain the leaf"),
        }
        // SAFETY: the caller reserved `leaf`; it is unlinked but not yet
        // retired (the retire below is what hands it to the reclaimer).
        unsafe { leaf.deref() }
            .removed
            .store(true, Ordering::Release);
        // SAFETY: the old leaf was just unlinked under the parent lock held by
        // this thread, so it is retired exactly once.
        unsafe { self.smr.retire(ctx, leaf) };
    }

    /// Splits a full leaf under an already-locked parent that has room.
    /// Returns `true` on success (the caller's key has been inserted).
    fn split_leaf_into_parent(
        &self,
        ctx: &mut S::ThreadCtx,
        parent: Shared<AbNode>,
        idx: usize,
        leaf: Shared<AbNode>,
        key: u64,
    ) -> bool {
        // SAFETY: the caller reserved `parent` and holds its lock.
        let parent_ref = unsafe { parent.deref() };
        if parent_ref.int_len.load(Ordering::Acquire) >= INT_CAP {
            return false;
        }
        // SAFETY: the caller reserved `leaf`; still linked under the lock.
        let leaf_ref = unsafe { leaf.deref() };
        let mut all: Vec<u64> = leaf_ref.leaf_keys().to_vec();
        match all.binary_search(&key) {
            Ok(_) => return true, // already present (cannot happen: caller checked)
            Err(pos) => all.insert(pos, key),
        }
        let mid = all.len() / 2;
        let left = self.smr.alloc(ctx, AbNode::new_leaf(&all[..mid]));
        let right = self.smr.alloc(ctx, AbNode::new_leaf(&all[mid..]));
        let separator = all[mid];
        // Publish: left replaces the old leaf in place, then the separator and
        // right sibling are spliced in. Readers are protected by the parent's
        // version lock (they restart if they raced with this).
        parent_ref.children[idx].store(left, Ordering::Release);
        parent_ref.insert_routing(idx, separator, right);
        leaf_ref.removed.store(true, Ordering::Release);
        // SAFETY: unlinked above under the parent lock.
        unsafe { self.smr.retire(ctx, leaf) };
        true
    }

    /// Splits the root when it is a full leaf.
    fn split_root_leaf(&self, ctx: &mut S::ThreadCtx, leaf: Shared<AbNode>, key: u64) -> bool {
        self.root_lock.lock();
        if !self.root.load(Ordering::Acquire).ptr_eq(leaf) {
            self.root_lock.unlock();
            return false;
        }
        // SAFETY: `leaf` is still the root (validated above under the root
        // lock), so it cannot have been retired.
        let leaf_ref = unsafe { leaf.deref() };
        let mut all: Vec<u64> = leaf_ref.leaf_keys().to_vec();
        match all.binary_search(&key) {
            Ok(_) => {
                self.root_lock.unlock();
                return true;
            }
            Err(pos) => all.insert(pos, key),
        }
        let mid = all.len() / 2;
        let left = self.smr.alloc(ctx, AbNode::new_leaf(&all[..mid]));
        let right = self.smr.alloc(ctx, AbNode::new_leaf(&all[mid..]));
        let new_root = self
            .smr
            .alloc(ctx, AbNode::new_internal(1, &[all[mid]], &[left, right]));
        self.root.store(new_root, Ordering::Release);
        leaf_ref.removed.store(true, Ordering::Release);
        self.root_lock.unlock();
        // SAFETY: unlinked above under the root lock.
        unsafe { self.smr.retire(ctx, leaf) };
        true
    }

    /// Ensures no internal node on the search path of `key` is full, splitting
    /// full ones top-down. Deep splits are rare; they are serialized behind
    /// `structure_lock` and only touch internal nodes (which are never
    /// reclaimed), so no read phase is needed here.
    fn split_full_ancestors(&self, ctx: &mut S::ThreadCtx, key: u64) {
        let _guard = self.structure_lock.lock().unwrap();
        loop {
            // Walk the internal path from the root, looking for the shallowest
            // full internal node.
            let root = self.root.load(Ordering::Acquire);
            // SAFETY: internal nodes are never reclaimed (only leaves are
            // retired; splits keep internal nodes linked), and the root slot
            // only ever grows new internal roots above the old one.
            let root_ref = unsafe { root.deref() };
            if root_ref.is_leaf() {
                return; // handled by split_root_leaf
            }
            let mut parent: Option<Shared<AbNode>> = None;
            let mut node = root;
            let full = loop {
                // SAFETY: as above — the walk only visits internal nodes,
                // which are never reclaimed.
                let node_ref = unsafe { node.deref() };
                let len = node_ref.int_len.load(Ordering::Acquire);
                if len >= INT_CAP {
                    break Some((parent, node));
                }
                if node_ref.height <= 1 {
                    break None; // children are leaves; nothing full above them
                }
                let idx = node_ref.route(key, len);
                let child = node_ref.children[idx].load(Ordering::Acquire);
                if child.is_null() {
                    break None;
                }
                parent = Some(node);
                node = child;
            };
            let Some((parent, full_node)) = full else {
                return;
            };
            self.split_internal(ctx, parent, full_node, key);
        }
    }

    /// Splits one full internal node, inserting the separator into its parent
    /// (which has room because splits proceed shallowest-first) or creating a
    /// new root. Holds `structure_lock` (caller) plus the affected node locks.
    fn split_internal(
        &self,
        ctx: &mut S::ThreadCtx,
        parent: Option<Shared<AbNode>>,
        node: Shared<AbNode>,
        _key: u64,
    ) {
        // SAFETY: `node` is an internal node; those are never reclaimed.
        let node_ref = unsafe { node.deref() };
        // Lock parent slot first (tree order), then the node.
        let slot_idx = match self.lock_parent_of(parent, node) {
            Ok(idx) => idx,
            Err(()) => return, // structure changed; caller loops and re-scans
        };
        node_ref.lock.lock();
        let len = node_ref.int_len.load(Ordering::Acquire);
        if len < INT_CAP {
            // Someone else already split it.
            node_ref.lock.unlock();
            self.unlock_parent(parent);
            return;
        }
        // Move the upper half (keys [mid+1, len) and children [mid+1, len]) to
        // a new right sibling; keys[mid] becomes the separator.
        let mid = len / 2;
        let mut sib_keys = Vec::with_capacity(len - mid - 1);
        let mut sib_children = Vec::with_capacity(len - mid);
        for i in (mid + 1)..len {
            sib_keys.push(node_ref.int_keys[i].load(Ordering::Acquire));
        }
        for i in (mid + 1)..=len {
            sib_children.push(node_ref.children[i].load(Ordering::Acquire));
        }
        let separator = node_ref.int_keys[mid].load(Ordering::Acquire);
        let sibling = self.smr.alloc(
            ctx,
            AbNode::new_internal(node_ref.height, &sib_keys, &sib_children),
        );
        // Shrink the node (readers that raced see the version bump and retry).
        node_ref.int_len.store(mid, Ordering::Release);
        node_ref.lock.unlock();

        match (parent, slot_idx) {
            (None, _) => {
                // The node was the root: grow the tree by one level.
                let new_root = self.smr.alloc(
                    ctx,
                    AbNode::new_internal(node_ref.height + 1, &[separator], &[node, sibling]),
                );
                self.root.store(new_root, Ordering::Release);
                self.unlock_parent(None);
            }
            (Some(p), Some(idx)) => {
                // SAFETY: `p` is an internal node (never reclaimed) and its
                // slot lock is held.
                let p_ref = unsafe { p.deref() };
                debug_assert!(p_ref.int_len.load(Ordering::Acquire) < INT_CAP);
                p_ref.insert_routing(idx, separator, sibling);
                self.unlock_parent(parent);
            }
            (Some(_), None) => unreachable!("validated parent must contain the node"),
        }
    }
}

impl<S: Smr> ConcurrentSet<S> for AbTree<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let found = loop {
            self.smr.begin_read_phase(ctx);
            match self.search(ctx, key) {
                SearchOutcome::Restart => continue,
                SearchOutcome::Found(r) => {
                    // SAFETY: `r.leaf` is still protected by its search slot.
                    let found = unsafe { r.leaf.deref() }.leaf_contains(key);
                    self.smr.end_read_phase(ctx, &[]);
                    break found;
                }
            }
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        found
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let inserted = loop {
            self.smr.begin_read_phase(ctx);
            let r = match self.search(ctx, key) {
                SearchOutcome::Restart => continue,
                SearchOutcome::Found(r) => r,
            };
            // SAFETY: `r.leaf` is still protected by its search slot.
            let leaf_ref = unsafe { r.leaf.deref() };
            if leaf_ref.leaf_contains(key) {
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }

            // Φ_write: reserve the parent (lock + pointer swing) and the leaf
            // (its keys are re-read to build the replacement).
            let mut reservations = [0usize; 2];
            reservations[0] = r.leaf.untagged_usize();
            if let Some(p) = r.parent {
                reservations[1] = p.untagged_usize();
            }
            self.smr.end_read_phase(ctx, &reservations);

            if leaf_ref.leaf_len < LEAF_CAP {
                // Common case: copy-on-write replacement of the leaf.
                let Ok(slot_idx) = self.lock_parent_of(r.parent, r.leaf) else {
                    continue;
                };
                let mut keys: Vec<u64> = leaf_ref.leaf_keys().to_vec();
                let pos = keys.binary_search(&key).unwrap_err();
                keys.insert(pos, key);
                let new_leaf = self.smr.alloc(ctx, AbNode::new_leaf(&keys));
                self.replace_child(ctx, r.parent, slot_idx, r.leaf, new_leaf);
                self.unlock_parent(r.parent);
                break true;
            }

            // The leaf is full: split it.
            match r.parent {
                None => {
                    if self.split_root_leaf(ctx, r.leaf, key) {
                        break true;
                    }
                    continue;
                }
                Some(p) => {
                    let Ok(slot_idx) = self.lock_parent_of(r.parent, r.leaf) else {
                        continue;
                    };
                    let idx = slot_idx.expect("parent slot");
                    if self.split_leaf_into_parent(ctx, p, idx, r.leaf, key) {
                        self.unlock_parent(r.parent);
                        break true;
                    }
                    // Parent itself is full: make room (rare path) and retry.
                    self.unlock_parent(r.parent);
                    self.split_full_ancestors(ctx, key);
                    continue;
                }
            }
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        inserted
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        self.smr.begin_op(ctx);
        let removed = loop {
            self.smr.begin_read_phase(ctx);
            let r = match self.search(ctx, key) {
                SearchOutcome::Restart => continue,
                SearchOutcome::Found(r) => r,
            };
            // SAFETY: `r.leaf` is still protected by its search slot.
            let leaf_ref = unsafe { r.leaf.deref() };
            if !leaf_ref.leaf_contains(key) {
                self.smr.end_read_phase(ctx, &[]);
                break false;
            }

            let mut reservations = [0usize; 2];
            reservations[0] = r.leaf.untagged_usize();
            if let Some(p) = r.parent {
                reservations[1] = p.untagged_usize();
            }
            self.smr.end_read_phase(ctx, &reservations);

            let Ok(slot_idx) = self.lock_parent_of(r.parent, r.leaf) else {
                continue;
            };
            let keys: Vec<u64> = leaf_ref
                .leaf_keys()
                .iter()
                .copied()
                .filter(|&k| k != key)
                .collect();
            // Relaxed (a,b)-tree: the replacement may be empty; it is kept in
            // place rather than merged (substitution S3).
            let new_leaf = self.smr.alloc(ctx, AbNode::new_leaf(&keys));
            self.replace_child(ctx, r.parent, slot_idx, r.leaf, new_leaf);
            self.unlock_parent(r.parent);
            break true;
        };
        self.smr.clear_protections(ctx);
        self.smr.end_op(ctx);
        removed
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.smr.begin_op(ctx);
        self.smr.begin_read_phase(ctx);
        let mut count = 0usize;
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: `size` runs inside a read phase; under the reclaimers
            // this structure is used with, every node reachable from the
            // root stays dereferenceable for the announced phase.
            let node_ref = unsafe { node.deref() };
            if node_ref.is_leaf() {
                count += node_ref.leaf_len;
            } else {
                let len = node_ref.int_len.load(Ordering::Acquire);
                for i in 0..=len {
                    stack.push(node_ref.children[i].load(Ordering::Acquire));
                }
            }
        }
        self.smr.end_read_phase(ctx, &[]);
        self.smr.end_op(ctx);
        count
    }

    fn name() -> &'static str {
        "ab-tree"
    }
}

impl<S: Smr> Drop for AbTree<S> {
    fn drop(&mut self) {
        let mut stack = vec![self.root.load(Ordering::Relaxed)];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: `&mut self` — no concurrent access remains; every
            // reachable node is exclusively ours and freed exactly once.
            let node_ref = unsafe { node.deref() };
            if !node_ref.is_leaf() {
                let len = node_ref.int_len.load(Ordering::Relaxed);
                for i in 0..=len {
                    stack.push(node_ref.children[i].load(Ordering::Relaxed));
                }
            }
            // SAFETY: as above.
            unsafe { recycle::free_node_raw(node.as_raw()) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::{Nbr, NbrPlus};
    use smr_baselines::{Debra, HazardEras, Leaky};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let tree = AbTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        assert!(!tree.contains(&mut ctx, 10));
        assert!(tree.insert(&mut ctx, 10));
        assert!(!tree.insert(&mut ctx, 10));
        assert!(tree.contains(&mut ctx, 10));
        assert!(tree.remove(&mut ctx, 10));
        assert!(!tree.remove(&mut ctx, 10));
        assert_eq!(tree.size(&mut ctx), 0);
        tree.smr().unregister(&mut ctx);
    }

    #[test]
    fn grows_through_leaf_and_internal_splits() {
        let tree = AbTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        let n = 5_000u64;
        for k in 1..=n {
            assert!(tree.insert(&mut ctx, k), "insert({k})");
        }
        assert_eq!(tree.size(&mut ctx), n as usize);
        for k in 1..=n {
            assert!(tree.contains(&mut ctx, k), "contains({k})");
        }
        for k in (1..=n).step_by(2) {
            assert!(tree.remove(&mut ctx, k), "remove({k})");
        }
        assert_eq!(tree.size(&mut ctx), (n / 2) as usize);
        tree.smr().unregister(&mut ctx);
    }

    #[test]
    fn descending_insertions_split_correctly() {
        let tree = AbTree::<Leaky>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        for k in (1..=2_000u64).rev() {
            assert!(tree.insert(&mut ctx, k));
        }
        assert_eq!(tree.size(&mut ctx), 2_000);
        for k in 1..=2_000u64 {
            assert!(tree.contains(&mut ctx, k));
        }
        tree.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_under_nbr_plus() {
        let tree = AbTree::<NbrPlus>::new(SmrConfig::for_tests());
        model_check(&tree, 6_000, 512, 31);
    }

    #[test]
    fn model_check_under_nbr() {
        let tree = AbTree::<Nbr>::new(SmrConfig::for_tests());
        model_check(&tree, 6_000, 512, 32);
    }

    #[test]
    fn model_check_under_debra() {
        let tree = AbTree::<Debra>::new(SmrConfig::for_tests());
        model_check(&tree, 6_000, 512, 33);
    }

    #[test]
    fn model_check_under_hazard_eras() {
        let tree = AbTree::<HazardEras>::new(SmrConfig::for_tests());
        model_check(&tree, 6_000, 512, 34);
    }

    #[test]
    fn concurrent_disjoint_stress_nbr_plus() {
        let tree = Arc::new(AbTree::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(tree, 4, 3_000);
    }

    #[test]
    fn concurrent_disjoint_stress_debra() {
        let tree = Arc::new(AbTree::<Debra>::new(SmrConfig::for_tests()));
        disjoint_key_stress(tree, 4, 3_000);
    }

    #[test]
    fn churn_reclaims_memory() {
        let tree = AbTree::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = tree.smr().register(0);
        for round in 0..100u64 {
            for k in 1..=64u64 {
                tree.insert(&mut ctx, k + round % 3);
            }
            for k in 1..=64u64 {
                tree.remove(&mut ctx, k + round % 3);
            }
        }
        tree.smr().flush(&mut ctx);
        let s = tree.smr().thread_stats(&ctx);
        assert!(
            s.retires > 2_000,
            "copy-on-write leaves must generate retires"
        );
        assert!(s.frees > s.retires / 2);
        tree.smr().unregister(&mut ctx);
    }
}
