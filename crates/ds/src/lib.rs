//! # conc-ds — concurrent set data structures, generic over an SMR scheme
//!
//! Rust reimplementations of the data structures used in the paper's
//! evaluation, each written **once** and instantiated with any reclaimer
//! implementing [`Smr`](smr_common::Smr) (NBR, NBR+, DEBRA, QSBR, RCU, HP,
//! IBR, HE, leaky):
//!
//! | module | structure | paper reference | synchronization |
//! |---|---|---|---|
//! | [`lazy_list`] | sorted linked list | Heller et al. (LL05) | per-node locks, wait-free contains |
//! | [`harris_list`] | sorted linked list | Harris (HL01) | lock-free, marked next pointers |
//! | [`hm_list`] | sorted linked list | Harris-Michael (HM04), plus the restart-from-root variant of experiment E4 | lock-free |
//! | [`hm_hashmap`] | fixed-size hash set, HM-list buckets | the HMLHT structure of the setbench-family benchmarks | lock-free |
//! | [`dgt_tree`] | external binary search tree | David, Guerraoui & Trigonakis (DGT15) | versioned locks, sync-free searches |
//! | [`ab_tree`] | leaf-oriented (a,b)-tree | stands in for Brown's ABTree (see DESIGN.md, substitution S3) | versioned locks, copy-on-write nodes, sync-free searches |
//!
//! Every structure implements the common [`ConcurrentSet`] trait used by the
//! benchmark harness and the cross-SMR stress tests.
//!
//! ## How the NBR phases map onto the code
//!
//! Each operation is a retry loop whose body begins with
//! `begin_read_phase`, traverses with one [`Smr::protect`] +
//! [`Smr::checkpoint`] pair per pointer hop, calls `end_read_phase(&[…])` with
//! the records its write phase will touch, performs the update (locks +
//! validation for the lock-based structures, CAS for the lock-free ones), and
//! `retire`s whatever it unlinked. A `checkpoint` returning `true`, a failed
//! validation, or a lost CAS sends the operation back to the top of the loop —
//! i.e. a fresh read phase starting from the root, exactly the discipline
//! Sections 4.1 and 5.2 of the paper require.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ab_tree;
pub mod dgt_tree;
pub mod harris_list;
pub mod hm_hashmap;
pub mod hm_list;
pub mod lazy_list;
pub mod memo;

pub use ab_tree::AbTree;
pub use dgt_tree::DgtTree;
pub use harris_list::HarrisList;
pub use hm_hashmap::HmHashMap;
pub use hm_list::HmList;
pub use lazy_list::LazyList;

use smr_common::Smr;

/// A concurrent set of `u64` keys managed by an SMR scheme `S`.
///
/// Keys must lie strictly between `KEY_MIN` and `KEY_MAX` (the sentinels used
/// by the list-based structures).
pub trait ConcurrentSet<S: Smr>: Send + Sync {
    /// The reclaimer instance owned by this structure; threads register with
    /// it to obtain their [`Smr::ThreadCtx`].
    fn smr(&self) -> &S;

    /// Returns `true` if `key` is in the set.
    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool;

    /// Inserts `key`; returns `true` if it was not already present.
    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool;

    /// Counts the keys currently in the set by traversal. Only meaningful when
    /// called while no other thread is mutating the structure (tests,
    /// post-trial verification).
    fn size(&self, ctx: &mut S::ThreadCtx) -> usize;

    /// Short, human-readable structure name used in benchmark output.
    fn name() -> &'static str
    where
        Self: Sized;
}

/// Smallest sentinel key (reserved; never inserted).
pub const KEY_MIN: u64 = 0;
/// Largest sentinel key (reserved; never inserted).
pub const KEY_MAX: u64 = u64::MAX;

/// Asserts that a key is in the insertable range.
#[inline]
pub(crate) fn check_key(key: u64) {
    assert!(
        key > KEY_MIN && key < KEY_MAX,
        "key {key} collides with a sentinel (valid range is ({KEY_MIN}, {KEY_MAX}) exclusive)"
    );
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers shared by the per-structure unit tests: a single-threaded
    //! model-based check and a small multi-threaded smoke test, both generic
    //! over the structure and the reclaimer.

    use super::ConcurrentSet;
    use smr_common::Smr;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    /// Deterministic pseudo-random sequence (SplitMix64).
    pub struct SplitMix(pub u64);
    impl SplitMix {
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Runs a randomized single-threaded workload against both the concurrent
    /// structure and a reference `BTreeSet`, checking every return value.
    pub fn model_check<S: Smr, DS: ConcurrentSet<S>>(
        ds: &DS,
        ops: usize,
        key_range: u64,
        seed: u64,
    ) {
        let mut ctx = ds.smr().register(0);
        let mut model = BTreeSet::new();
        let mut rng = SplitMix(seed);
        for _ in 0..ops {
            let key = 1 + rng.next() % key_range;
            match rng.next() % 3 {
                0 => {
                    let expected = model.insert(key);
                    assert_eq!(ds.insert(&mut ctx, key), expected, "insert({key}) mismatch");
                }
                1 => {
                    let expected = model.remove(&key);
                    assert_eq!(ds.remove(&mut ctx, key), expected, "remove({key}) mismatch");
                }
                _ => {
                    let expected = model.contains(&key);
                    assert_eq!(
                        ds.contains(&mut ctx, key),
                        expected,
                        "contains({key}) mismatch"
                    );
                }
            }
        }
        assert_eq!(ds.size(&mut ctx), model.len(), "final size mismatch");
        for &k in model.iter().take(64) {
            assert!(ds.contains(&mut ctx, k));
        }
        ds.smr().unregister(&mut ctx);
    }

    /// Multi-threaded smoke test: each thread owns a disjoint key range, so
    /// every operation's return value is deterministic and checkable, and the
    /// final size must equal the sum of per-thread survivors.
    pub fn disjoint_key_stress<S, DS>(ds: Arc<DS>, threads: usize, ops_per_thread: usize)
    where
        S: Smr,
        DS: ConcurrentSet<S> + 'static,
    {
        let barrier = Arc::new(Barrier::new(threads));
        let survivors = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..threads {
            let ds = Arc::clone(&ds);
            let barrier = Arc::clone(&barrier);
            let survivors = Arc::clone(&survivors);
            handles.push(std::thread::spawn(move || {
                let mut ctx = ds.smr().register(t);
                let base = 1 + (t as u64) * 1_000_000;
                let mut rng = SplitMix(0xC0FFEE + t as u64);
                let mut local = BTreeSet::new();
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let key = base + rng.next() % 512;
                    match rng.next() % 3 {
                        0 => {
                            let expected = local.insert(key);
                            assert_eq!(ds.insert(&mut ctx, key), expected);
                        }
                        1 => {
                            let expected = local.remove(&key);
                            assert_eq!(ds.remove(&mut ctx, key), expected);
                        }
                        _ => {
                            let expected = local.contains(&key);
                            assert_eq!(ds.contains(&mut ctx, key), expected);
                        }
                    }
                }
                survivors.fetch_add(local.len() as u64, Ordering::Relaxed);
                ds.smr().unregister(&mut ctx);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut ctx = ds.smr().register(0);
        assert_eq!(
            ds.size(&mut ctx) as u64,
            survivors.load(Ordering::Relaxed),
            "final size must equal the number of surviving keys"
        );
        ds.smr().unregister(&mut ctx);
    }
}
