//! Versioned spin locks for optimistic lock-based data structures.
//!
//! The DGT external BST (David, Guerraoui & Trigonakis) and the lazy list use
//! the pattern the paper calls "synchronization-free searches followed by
//! updates": a traversal reads nodes without any synchronization, then the
//! update locks its target nodes and *validates* that they have not changed
//! since they were read. [`SeqLock`] packs a lock bit and a version counter in
//! one word so that "lock only if unchanged since version `v`" is a single CAS
//! — which is exactly the validation step those structures need (and stands in
//! for the ticket-lock-plus-version scheme of the original DGT code).
//!
//! The low bit is the lock bit; the remaining bits are the version, which is
//! incremented on every unlock, so `version` values returned to optimistic
//! readers are always even… in spirit: concretely `read_version` returns the
//! full word and [`SeqLock::try_lock_at`] only succeeds if the word is both
//! unlocked and unchanged.

use crate::backoff::Backoff;
use std::sync::atomic::{AtomicU64, Ordering};

const LOCKED: u64 = 1;

/// A word-sized versioned spin lock.
#[derive(Debug, Default)]
pub struct SeqLock {
    state: AtomicU64,
}

impl SeqLock {
    /// A new, unlocked lock with version 0.
    pub const fn new() -> Self {
        Self {
            state: AtomicU64::new(0),
        }
    }

    /// Reads the current state word (version | lock bit). An odd value means
    /// the lock is currently held.
    #[inline]
    pub fn read_version(&self) -> u64 {
        self.state.load(Ordering::Acquire)
    }

    /// True when the lock is currently held.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.read_version() & LOCKED == LOCKED
    }

    /// True when `version` denotes a locked state.
    #[inline]
    pub fn version_is_locked(version: u64) -> bool {
        version & LOCKED == LOCKED
    }

    /// Attempts to acquire the lock if its state still equals `version`
    /// (which must be an unlocked version observed earlier). This is the
    /// "validate and lock" step of the optimistic update protocol.
    #[inline]
    pub fn try_lock_at(&self, version: u64) -> bool {
        if Self::version_is_locked(version) {
            return false;
        }
        self.state
            .compare_exchange(
                version,
                version | LOCKED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Attempts to acquire the lock regardless of the version.
    #[inline]
    pub fn try_lock(&self) -> bool {
        let v = self.read_version();
        !Self::version_is_locked(v) && self.try_lock_at(v)
    }

    /// Acquires the lock, spinning (with backoff) until it succeeds.
    pub fn lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            if self.try_lock() {
                return;
            }
            backoff.snooze();
        }
    }

    /// Releases the lock, bumping the version so concurrent optimistic readers
    /// observe the change.
    ///
    /// Panics in debug builds if the lock is not currently held.
    #[inline]
    pub fn unlock(&self) {
        let v = self.state.load(Ordering::Relaxed);
        debug_assert!(Self::version_is_locked(v), "unlock of an unlocked SeqLock");
        // +1 clears the lock bit and advances the version in one step
        // (v is odd, so v + 1 is the next even version).
        self.state.store(v.wrapping_add(1), Ordering::Release);
    }

    /// Checks that the state is still exactly `version` (unlocked and
    /// unchanged) — the pure validation used by lock-free readers.
    #[inline]
    pub fn validate(&self, version: u64) -> bool {
        !Self::version_is_locked(version) && self.read_version() == version
    }
}

/// RAII guard for scoped uses of [`SeqLock`] (tests, simple critical sections).
pub struct SeqLockGuard<'a> {
    lock: &'a SeqLock,
}

impl SeqLock {
    /// Acquires the lock and returns a guard that releases it on drop.
    pub fn guard(&self) -> SeqLockGuard<'_> {
        self.lock();
        SeqLockGuard { lock: self }
    }
}

impl Drop for SeqLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_bumps_version() {
        let l = SeqLock::new();
        let v0 = l.read_version();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        assert!(l.is_locked());
        l.unlock();
        let v1 = l.read_version();
        assert!(v1 > v0);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_at_fails_on_version_change() {
        let l = SeqLock::new();
        let v = l.read_version();
        l.lock();
        l.unlock();
        assert!(!l.try_lock_at(v), "stale version must fail validation");
        let v2 = l.read_version();
        assert!(l.try_lock_at(v2));
        l.unlock();
    }

    #[test]
    fn validate_detects_intervening_writer() {
        let l = SeqLock::new();
        let v = l.read_version();
        assert!(l.validate(v));
        l.lock();
        assert!(!l.validate(v), "locked state must fail validation");
        l.unlock();
        assert!(!l.validate(v), "changed version must fail validation");
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = SeqLock::new();
        {
            let _g = l.guard();
            assert!(l.is_locked());
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(SeqLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut unsynced = Box::new(0u64);
        let unsynced_ptr = &mut *unsynced as *mut u64 as usize;
        let threads = 4;
        let iters = 10_000u64;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..iters {
                    lock.lock();
                    // Non-atomic increment protected by the lock.
                    unsafe { *(unsynced_ptr as *mut u64) += 1 };
                    counter.fetch_add(1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*unsynced, threads as u64 * iters);
        assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    }
}
