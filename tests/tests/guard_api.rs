//! Integration tests for the high-level `SmrHandle` / `ReadPhase` API of the
//! `nbr` crate — the interface a downstream user integrates into their own
//! data structure (see `examples/custom_ds.rs`).

use nbr::{Nbr, NbrPlus, OpResult, SmrHandle};
use smr_common::{Atomic, NodeHeader, Shared, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

struct Rec {
    header: NodeHeader,
    value: u64,
}
smr_common::impl_smr_node!(Rec);

/// A one-slot shared cell protected by NBR, used by the tests below.
struct Cell {
    smr: NbrPlus,
    slot: Atomic<Rec>,
}

impl Cell {
    fn new(max_threads: usize) -> Self {
        Self {
            smr: NbrPlus::new(SmrConfig::for_tests().with_max_threads(max_threads)),
            slot: Atomic::null(),
        }
    }

    fn read(&self, handle: &mut SmrHandle<'_, NbrPlus>) -> Option<u64> {
        handle.run(|phase| {
            let p = phase.load(0, &self.slot)?;
            let v = unsafe { p.as_ref() }.map(|r| r.value);
            phase.reserve(&[]);
            OpResult::done(v)
        })
    }

    fn replace(&self, handle: &mut SmrHandle<'_, NbrPlus>, value: u64) -> Option<u64> {
        handle.run(|phase| {
            let old = phase.load(0, &self.slot)?;
            let old_value = unsafe { old.as_ref() }.map(|r| r.value);
            phase.reserve(&[old.untagged_usize()]);
            let new = phase.alloc(Rec {
                header: NodeHeader::new(),
                value,
            });
            match self
                .slot
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    if !old.is_null() {
                        unsafe { phase.retire(old) };
                    }
                    OpResult::done(old_value)
                }
                Err(_) => {
                    let (smr, ctx) = phase.raw();
                    unsafe { smr.dealloc_unpublished(ctx, new) };
                    OpResult::retry()
                }
            }
        })
    }
}

#[test]
fn single_thread_replace_chain() {
    let cell = Cell::new(4);
    let mut handle = SmrHandle::register(&cell.smr, 0);
    assert_eq!(cell.read(&mut handle), None);
    assert_eq!(cell.replace(&mut handle, 1), None);
    assert_eq!(cell.replace(&mut handle, 2), Some(1));
    assert_eq!(cell.replace(&mut handle, 3), Some(2));
    assert_eq!(cell.read(&mut handle), Some(3));
    let stats = handle.stats();
    assert_eq!(stats.allocs, 3);
    assert_eq!(stats.retires, 2);
}

#[test]
fn concurrent_replacers_never_lose_a_value() {
    let cell = Arc::new(Cell::new(8));
    let threads = 4;
    let per_thread = 5_000u64;
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let cell = Arc::clone(&cell);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut handle = SmrHandle::register(&cell.smr, t);
            barrier.wait();
            let mut observed = Vec::new();
            for i in 0..per_thread {
                let value = (t as u64) * per_thread + i + 1;
                if let Some(prev) = cell.replace(&mut handle, value) {
                    observed.push(prev);
                }
            }
            let stats = handle.stats();
            (observed, stats)
        }));
    }
    let mut all_observed = Vec::new();
    let mut retires = 0;
    let mut frees = 0;
    for h in handles {
        let (observed, stats) = h.join().unwrap();
        all_observed.extend(observed);
        retires += stats.retires;
        frees += stats.frees;
    }
    // Every replacement except the very first unlinked exactly one record.
    assert_eq!(retires, threads as u64 * per_thread - 1);
    assert!(frees > 0, "churn at this volume must trigger reclamation");
    // No observed value can exceed what was ever written.
    assert!(all_observed
        .iter()
        .all(|&v| v >= 1 && v <= threads as u64 * per_thread));
}

#[test]
fn reader_is_neutralized_by_concurrent_churn() {
    // A reader repeatedly loads through a read phase while writers churn the
    // cell hard enough to trigger neutralization broadcasts; the reader must
    // observe at least one restart and never read garbage.
    let cell = Arc::new(Cell::new(8));
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..2 {
        let cell = Arc::clone(&cell);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut handle = SmrHandle::register(&cell.smr, t);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cell.replace(&mut handle, i * 2 + t as u64 + 1);
                i += 1;
            }
        }));
    }
    let mut reader = SmrHandle::register(&cell.smr, 7);
    let mut reads = 0u64;
    while reads < 200_000 {
        if let Some(v) = cell.read(&mut reader) {
            assert!(v >= 1, "read a value that was never written");
        }
        reads += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    drop(reader);
}

#[test]
fn nbr_and_nbr_plus_handles_interoperate_with_raw_trait_calls() {
    // The handle API and the raw Smr hooks must be freely mixable.
    let smr = Nbr::new(SmrConfig::for_tests());
    let mut handle = SmrHandle::register(&smr, 0);
    let shared = Atomic::<Rec>::null();
    let node = handle.alloc(Rec {
        header: NodeHeader::new(),
        value: 9,
    });
    shared.store(node, Ordering::Release);

    // Raw usage of the same context.
    let (smr_ref, ctx) = handle.parts();
    smr_ref.begin_read_phase(ctx);
    let p = shared.load(Ordering::Acquire);
    assert_eq!(unsafe { p.deref().value }, 9);
    smr_ref.end_read_phase(ctx, &[p.untagged_usize()]);
    smr_ref.end_op(ctx);

    let old = shared.swap(Shared::null(), Ordering::AcqRel);
    unsafe { handle.retire(old) };
    handle.flush();
    assert_eq!(handle.stats().frees, 1);
}
