//! The deterministic schedule explorer: a seeded cooperative scheduler that
//! drives N scenario tasks on real OS threads with **exactly one task
//! runnable at a time**, context-switching only at the instrumentation
//! layer's [`preempt`](smr_common::check::preempt) points (every `Atomic`
//! load/store/CAS, ping poll/broadcast/ack-wait, and the scheme-specific
//! windows such as IBR's stamp-before-pop gap).
//!
//! Because every shared-memory step is serialized through the scheduler, an
//! interleaving is fully determined by the `(strategy, seed)` pair: the same
//! pair replays the same schedule, so a failure report printing the seed is a
//! replayable trace.
//!
//! Two strategies are provided:
//!
//! * [`Strategy::Random`] — at each step, switch to a uniformly chosen
//!   runnable task with probability `1/switch_one_in` (staying put is free:
//!   no condvar round-trip, so the explorer gets long deterministic bursts
//!   punctuated by random switches).
//! * [`Strategy::Pct`] — the priority-based PCT sampler (Burckhardt et al.):
//!   tasks get a random priority permutation, the highest-priority runnable
//!   task always runs, and at `depth` pre-drawn step indices the running
//!   task is demoted below everyone else. PCT finds bugs of preemption depth
//!   `d` with probability ≥ 1/(n·k^d) per schedule, which is why a handful
//!   of PCT schedules often beats thousands of uniformly random ones.
//!
//! A task that spins (e.g. a reclaimer awaiting ping acks) preempts on every
//! iteration, so the scheduler can interleave the thread it is waiting for;
//! the schemes' own `ack_spin_limit` bounds such loops, and a global step
//! [`budget`](run_schedule) backstops anything that still livelocks.

use smr_common::check::{self, Preemptor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// SplitMix64: the repo-standard deterministic sequence (also used by the
/// `ds` model checks and the vendored `rand`).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Scheduling strategy for one schedule run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Switch to a uniformly random runnable task with probability
    /// `1/switch_one_in` at each step.
    Random {
        /// Expected steps between switches (≥ 1; 1 = switch every step).
        switch_one_in: u64,
    },
    /// PCT with `depth` priority change points.
    Pct {
        /// Number of change points (the targeted preemption depth − 1).
        depth: usize,
    },
}

impl Strategy {
    /// Short label for failure reports.
    pub fn label(self) -> String {
        match self {
            Strategy::Random { switch_one_in } => format!("random/{switch_one_in}"),
            Strategy::Pct { depth } => format!("pct/{depth}"),
        }
    }
}

/// Outcome of one schedule run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Preemption points executed before the run ended.
    pub steps: u64,
    /// First worker panic (oracle violation or scenario assertion), if any.
    pub failure: Option<String>,
    /// The step budget ran out: the run was released to free-running mode to
    /// finish, and its tail is not schedule-deterministic. Not a failure by
    /// itself, but a sweep that mostly exhausts budgets explores poorly.
    pub budget_exhausted: bool,
}

enum StratState {
    Random {
        switch_one_in: u64,
    },
    Pct {
        /// Per-task priority; higher runs first. Demotions assign fresh
        /// all-time minima so the order of demotion is preserved. Signed so
        /// minima can keep descending below the initial `1..=n` band
        /// (an unsigned decrement from 0 would wrap to the *maximum* and
        /// turn every demotion into a promotion).
        prio: Vec<i64>,
        /// Sorted step indices at which the running task is demoted.
        change_at: Vec<u64>,
        next_change: usize,
        next_low: i64,
    },
}

/// Expected schedule length used to spread PCT change points. PCT's bug-find
/// probability depends on change points landing *inside* the run, so this
/// must track real schedule lengths: the matrix/resurrect scenarios measure
/// ~150-500 steps on the quiet config. Points past the run's end are wasted
/// (they never fire), which silently degrades PCT to static priorities —
/// exactly the failure mode that hid the stamp-before-pop resurrection until
/// this was lowered from 30_000.
const PCT_HORIZON: u64 = 512;

/// Forced-rotation backstop: a task that has run this many consecutive steps
/// is demoted (PCT) / forcibly switched away from (Random) so a spin that the
/// schemes' own bounds somehow miss cannot monopolize the schedule.
const ROTATE_AFTER: u64 = 50_000;

struct Core {
    current: usize,
    done: Vec<bool>,
    steps: u64,
    budget: u64,
    aborted: bool,
    failure: Option<String>,
    budget_exhausted: bool,
    rng: SplitMix64,
    strat: StratState,
    /// Consecutive steps by `current` without a switch.
    consec: u64,
}

impl Core {
    fn new(n: usize, strategy: Strategy, seed: u64, budget: u64) -> Self {
        let mut rng = SplitMix64(seed ^ 0xA5A5_5A5A_C3C3_3C3C);
        let strat = match strategy {
            Strategy::Random { switch_one_in } => StratState::Random {
                switch_one_in: switch_one_in.max(1),
            },
            Strategy::Pct { depth } => {
                // Random priority permutation via Fisher-Yates.
                let mut prio: Vec<i64> = (1..=n as i64).collect();
                for i in (1..n).rev() {
                    let j = rng.below(i as u64 + 1) as usize;
                    prio.swap(i, j);
                }
                let mut change_at: Vec<u64> =
                    (0..depth).map(|_| 1 + rng.below(PCT_HORIZON)).collect();
                change_at.sort_unstable();
                StratState::Pct {
                    prio,
                    change_at,
                    next_change: 0,
                    next_low: 0,
                }
            }
        };
        let mut core = Self {
            current: 0,
            done: vec![false; n],
            steps: 0,
            budget,
            aborted: false,
            failure: None,
            budget_exhausted: false,
            rng,
            strat,
            consec: 0,
        };
        core.current = core.pick_first();
        core
    }

    fn ready(&self) -> Vec<usize> {
        (0..self.done.len()).filter(|&i| !self.done[i]).collect()
    }

    fn pick_first(&mut self) -> usize {
        match &self.strat {
            StratState::Random { .. } => self.rng.below(self.done.len() as u64) as usize,
            StratState::Pct { prio, .. } => (0..prio.len())
                .max_by_key(|&i| prio[i])
                .expect("at least one task"),
        }
    }

    /// Picks who runs next, given that `me` just hit a preemption point.
    fn decide(&mut self, me: usize) -> usize {
        let force_rotate = self.consec >= ROTATE_AFTER;
        match &mut self.strat {
            StratState::Random { switch_one_in } => {
                let one_in = *switch_one_in;
                if force_rotate || self.rng.below(one_in) == 0 {
                    let ready = self.ready();
                    if force_rotate && ready.len() > 1 {
                        // Exclude `me` so the rotation actually rotates.
                        let others: Vec<usize> = ready.into_iter().filter(|&i| i != me).collect();
                        others[self.rng.below(others.len() as u64) as usize]
                    } else {
                        ready[self.rng.below(ready.len() as u64) as usize]
                    }
                } else {
                    me
                }
            }
            StratState::Pct {
                prio,
                change_at,
                next_change,
                next_low,
            } => {
                let mut demote = force_rotate;
                while *next_change < change_at.len() && self.steps >= change_at[*next_change] {
                    *next_change += 1;
                    demote = true;
                }
                if demote {
                    *next_low -= 1;
                    prio[me] = *next_low; // below every initial priority
                }
                let prio = &*prio;
                (0..self.done.len())
                    .filter(|&i| !self.done[i])
                    .max_by_key(|&i| prio[i])
                    .unwrap_or(me)
            }
        }
    }

    /// Picks a successor when `me` has finished (is already marked done).
    fn pick_next_ready(&mut self) -> Option<usize> {
        let ready = self.ready();
        if ready.is_empty() {
            return None;
        }
        Some(match &self.strat {
            StratState::Random { .. } => ready[self.rng.below(ready.len() as u64) as usize],
            StratState::Pct { prio, .. } => {
                *ready.iter().max_by_key(|&&i| prio[i]).expect("non-empty")
            }
        })
    }
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, Core> {
    shared.core.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The per-worker [`Preemptor`] installed for the duration of the task body.
struct TaskHandle {
    id: usize,
    shared: Arc<Shared>,
}

impl Preemptor for TaskHandle {
    fn preempt(&self, point: &'static str, _addr: usize) {
        let mut core = lock(&self.shared);
        if core.aborted {
            return;
        }
        core.steps += 1;
        if core.steps >= core.budget {
            // Release everyone to free-running mode so the scenario can
            // drain; the run is recorded as budget-exhausted, not failed.
            core.aborted = true;
            core.budget_exhausted = true;
            let _ = point;
            self.shared.cv.notify_all();
            return;
        }
        let next = core.decide(self.id);
        if next == self.id {
            core.consec += 1;
            return;
        }
        core.current = next;
        core.consec = 0;
        self.shared.cv.notify_all();
        while !core.aborted && core.current != self.id {
            core = self
                .shared
                .cv
                .wait(core)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Runs `tasks` to completion under one deterministic schedule drawn from
/// `(strategy, seed)`. Returns once every task has finished (a failed task
/// releases the others to free-running mode first, so teardown always
/// completes). `budget` bounds the number of preemption points before the
/// run degrades to free-running.
pub fn run_schedule(
    strategy: Strategy,
    seed: u64,
    budget: u64,
    tasks: Vec<Box<dyn FnOnce() + Send>>,
) -> Outcome {
    let n = tasks.len();
    assert!(n > 0, "a schedule needs at least one task");
    let shared = Arc::new(Shared {
        core: Mutex::new(Core::new(n, strategy, seed, budget)),
        cv: Condvar::new(),
    });
    let mut handles = Vec::with_capacity(n);
    for (id, body) in tasks.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            // Wait to be scheduled for the first time.
            {
                let mut core = lock(&shared);
                while !core.aborted && core.current != id {
                    core = shared.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
                }
            }
            check::set_preemptor(Some(Arc::new(TaskHandle {
                id,
                shared: Arc::clone(&shared),
            })));
            let result = catch_unwind(AssertUnwindSafe(body));
            check::set_preemptor(None);
            let mut core = lock(&shared);
            core.done[id] = true;
            if let Err(payload) = result {
                if core.failure.is_none() {
                    core.failure = Some(panic_message(payload));
                }
                core.aborted = true;
            } else if !core.aborted {
                if let Some(next) = core.pick_next_ready() {
                    core.current = next;
                    core.consec = 0;
                }
            }
            shared.cv.notify_all();
        }));
    }
    for h in handles {
        // A panicking worker was already caught by catch_unwind; join errors
        // would mean a panic in our own wrapper, which we surface as-is.
        h.join().expect("scheduler worker wrapper panicked");
    }
    let core = lock(&shared);
    Outcome {
        steps: core.steps,
        failure: core.failure.clone(),
        budget_exhausted: core.budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Three tasks, each recording its id at every step; the interleaving
    /// must be a pure function of the seed.
    fn trace_for(strategy: Strategy, seed: u64) -> Vec<usize> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for id in 0..3usize {
            let log = Arc::clone(&log);
            tasks.push(Box::new(move || {
                for _ in 0..40 {
                    check::preempt("test.step", 0);
                    log.lock().unwrap().push(id);
                }
            }));
        }
        let out = run_schedule(strategy, seed, 100_000, tasks);
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert!(!out.budget_exhausted);
        Arc::try_unwrap(log).unwrap().into_inner().unwrap()
    }

    #[test]
    fn same_seed_same_schedule() {
        for strategy in [
            Strategy::Random { switch_one_in: 3 },
            Strategy::Pct { depth: 4 },
        ] {
            let a = trace_for(strategy, 42);
            let b = trace_for(strategy, 42);
            assert_eq!(a, b, "schedule must be deterministic for {strategy:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = trace_for(Strategy::Random { switch_one_in: 2 }, 1);
        let b = trace_for(Strategy::Random { switch_one_in: 2 }, 2);
        assert_ne!(a, b, "distinct seeds should explore distinct interleavings");
    }

    #[test]
    fn only_one_task_runs_at_a_time() {
        // A data race on a plain (non-atomic, scheduler-protected) counter
        // would be flagged by the parity check below under free threading;
        // under the one-runnable-at-a-time scheduler the increments around
        // each preemption point are atomic with respect to task switches.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            tasks.push(Box::new(move || {
                for _ in 0..50 {
                    let before = counter.load(Ordering::Relaxed);
                    counter.store(before + 1, Ordering::Relaxed);
                    let after = counter.load(Ordering::Relaxed);
                    assert_eq!(after, before + 1, "another task ran inside our step");
                    check::preempt("test.step", 0);
                }
            }));
        }
        let out = run_schedule(Strategy::Random { switch_one_in: 1 }, 7, 100_000, tasks);
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn worker_panic_is_reported_and_others_drain() {
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        tasks.push(Box::new(|| {
            check::preempt("test.step", 0);
            panic!("scripted failure");
        }));
        for _ in 0..2 {
            tasks.push(Box::new(|| {
                for _ in 0..20 {
                    check::preempt("test.step", 0);
                }
            }));
        }
        let out = run_schedule(Strategy::Random { switch_one_in: 2 }, 3, 100_000, tasks);
        let failure = out.failure.expect("panic must be captured");
        assert!(failure.contains("scripted failure"), "got: {failure}");
    }

    #[test]
    fn budget_exhaustion_is_flagged_not_failed() {
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {
            for _ in 0..1000 {
                check::preempt("test.step", 0);
            }
        })];
        let out = run_schedule(Strategy::Random { switch_one_in: 2 }, 5, 100, tasks);
        assert!(out.budget_exhausted);
        assert!(out.failure.is_none());
    }
}
