//! Per-record SMR metadata.
//!
//! Interval-based reclaimers (IBR's 2GEIBR, hazard eras) need to know the
//! global era in which each record was *born*; they compare it against the
//! per-thread era intervals announced by readers. Following the IBR benchmark
//! (which the paper adapts its baselines from), every node embeds a small
//! [`NodeHeader`] that carries this metadata. For the other reclaimers (NBR,
//! DEBRA, QSBR, RCU, HP, leaky) the header is inert padding, uniformly across
//! all of them, so relative comparisons remain fair.

/// Per-record metadata embedded in every data-structure node.
#[derive(Debug, Default, Clone)]
pub struct NodeHeader {
    /// Global era at which the record was allocated (IBR / HE). Written once
    /// before the record is published, read only after the record is retired.
    birth_era: u64,
}

impl NodeHeader {
    /// A header with birth era 0 (used by reclaimers that do not track eras).
    pub const fn new() -> Self {
        Self { birth_era: 0 }
    }

    /// The era at which the record was allocated.
    #[inline]
    pub fn birth_era(&self) -> u64 {
        self.birth_era
    }

    /// Sets the birth era. Only called before the record is shared.
    #[inline]
    pub fn set_birth_era(&mut self, era: u64) {
        self.birth_era = era;
    }
}

/// Implemented by every data-structure node type managed by an [`Smr`]
/// reclaimer.
///
/// The only requirement is access to the embedded [`NodeHeader`]; the blanket
/// lifecycle machinery (type-erased deferred destruction in
/// [`Retired`](crate::Retired)) takes care of the rest.
///
/// # Safety-adjacent contract
/// `header`/`header_mut` must return the *same* embedded header for the
/// lifetime of the node, and the node must be `'static` (it is owned by the
/// data structure, not borrowed).
pub trait SmrNode: Send + Sized + 'static {
    /// Shared access to the embedded header.
    fn header(&self) -> &NodeHeader;
    /// Exclusive access to the embedded header (only used before publication).
    fn header_mut(&mut self) -> &mut NodeHeader;
}

/// Convenience macro implementing [`SmrNode`] for a node struct with a field
/// named `header` of type [`NodeHeader`].
#[macro_export]
macro_rules! impl_smr_node {
    ($ty:ident $(< $($gen:ident),+ >)?) => {
        impl $(< $($gen),+ >)? $crate::SmrNode for $ty $(< $($gen),+ >)?
        where
            $ty $(< $($gen),+ >)?: Send + 'static,
        {
            #[inline]
            fn header(&self) -> &$crate::NodeHeader {
                &self.header
            }
            #[inline]
            fn header_mut(&mut self) -> &mut $crate::NodeHeader {
                &mut self.header
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestNode {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    crate::impl_smr_node!(TestNode);

    #[test]
    fn header_default_era_is_zero() {
        let h = NodeHeader::new();
        assert_eq!(h.birth_era(), 0);
    }

    #[test]
    fn set_birth_era_roundtrip() {
        let mut h = NodeHeader::default();
        h.set_birth_era(42);
        assert_eq!(h.birth_era(), 42);
    }

    #[test]
    fn macro_implements_trait() {
        let mut n = TestNode {
            header: NodeHeader::new(),
            key: 1,
        };
        n.header_mut().set_birth_era(7);
        assert_eq!(n.header().birth_era(), 7);
    }
}
