//! Vendored, API-compatible stub for the subset of `rand` 0.8 used by this
//! workspace (see `vendor/README.md`). The generator is a SplitMix64 stream:
//! statistically fine for workload generation and fully deterministic.

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (SplitMix64 stream in this stub).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so nearby seeds give unrelated streams.
            let mut rng = SmallRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Distributions (only `Uniform` is provided).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Integer types `Uniform` can sample.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Widens to `u64` (all supported types fit).
        fn to_u64(self) -> u64;
        /// Narrows from `u64` (the value is known to fit).
        fn from_u64(v: u64) -> Self;
        /// The predecessor of `self` (used by the half-open constructor).
        fn pred(self) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn to_u64(self) -> u64 { self as u64 }
                fn from_u64(v: u64) -> Self { v as $t }
                fn pred(self) -> Self { self - 1 }
            }
        )*};
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize);

    /// Uniform distribution over a closed integer interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high_inclusive: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Self {
                low,
                high_inclusive: high.pred(),
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(
                low <= high,
                "Uniform::new_inclusive called with empty range"
            );
            Self {
                low,
                high_inclusive: high,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            let lo = self.low.to_u64();
            let span = self.high_inclusive.to_u64() - lo;
            if span == u64::MAX {
                return T::from_u64(rng.next_u64());
            }
            T::from_u64(lo + rng.next_u64() % (span + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let dist = Uniform::new_inclusive(1u64, 10);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn uniform_covers_range_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dist = Uniform::new_inclusive(0u64, 9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..=1300).contains(&c), "bucket {i} has {c} hits");
        }
    }
}
