//! Hazard pointers (Michael, 2004).
//!
//! The canonical bounded-garbage scheme and the paper's representative of the
//! "per-access overhead" family: before dereferencing a record a thread must
//! announce a hazard pointer to it, fence, and validate that the source still
//! points to it (re-reading until stable). That per-hop store + fence +
//! re-read is exactly the overhead the paper's list experiments show (HP up to
//! 2–3.4× slower than NBR+ on the lazy list).
//!
//! Validation here follows the IBR-benchmark convention the paper's artifact
//! uses for structures without a dedicated validation bit: a protection is
//! considered successful once the source field re-reads equal to the announced
//! value. Retired records are scanned against every announced hazard and freed
//! only when unprotected, which bounds garbage by `HiWatermark + K·N`.

use crate::util::OrphanPool;
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    Atomic, BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState,
    Shared, Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::Arc;

struct HazardSlots {
    slots: Box<[AtomicUsize]>,
}

/// Per-thread context for [`HazardPointers`].
pub struct HpCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch for the per-scan hazard snapshot (no allocation on
    /// the reclamation path).
    protected: Vec<usize>,
    mag: Magazine,
    stats: ThreadStats,
}

/// The hazard-pointer reclaimer.
pub struct HazardPointers {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    hazards: Vec<CachePadded<HazardSlots>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
}

impl HazardPointers {
    /// One pass over every active thread's hazard slots.
    fn collect_hazards(&self, out: &mut Vec<usize>) {
        for tid in self.registry.active_tids() {
            for h in self.hazards[tid].slots.iter() {
                let addr = h.load(Ordering::Acquire);
                if addr != 0 {
                    out.push(addr);
                }
            }
        }
    }

    fn scan_and_reclaim(&self, ctx: &mut HpCtx) {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, ctx.limbo.len() as u64, 0);
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag so they flow through the ordinary
        // protection-checked sweep below (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        // Single-fence scan: one SeqCst fence orders this scan against every
        // announcing thread's protect sequence (hazard store, then validating
        // load); the per-slot loads themselves only need Acquire. See
        // DESIGN.md, "Memory-ordering argument for single-fence scans".
        fence(Ordering::SeqCst);
        ctx.protected.clear();
        // Two collection passes close the `protect_copy` scan race (ROADMAP
        // item; argued in DESIGN.md, "Validate-after-copy for moved
        // hazards"): a hazard moved from slot `src` to slot `dst` mid-scan
        // can be missed by one pass (read `dst` before the copy, read `src`
        // after its overwrite), but the copy into `dst` is sequenced before
        // the overwrite of `src`, so a pass that starts after observing the
        // overwrite — pass 2 starts after pass 1 read it — sees `dst`
        // populated. Records protected in a stable slot are trivially seen
        // by both passes. This covers exactly ONE relocation of a
        // continuously-held record per scan, which is what the
        // `Smr::protect_copy` relocation contract licenses callers to do.
        self.collect_hazards(&mut ctx.protected);
        self.collect_hazards(&mut ctx.protected);
        ctx.protected.sort_unstable();
        ctx.protected.dedup();
        let before = ctx.limbo.len();
        // SAFETY: a retired record is unlinked; any thread that could still
        // dereference it must have announced (and validated) a hazard pointer
        // to it before our scan's fence, so records absent from `protected`
        // are safe (Michael's original argument; single-fence variant argued
        // in DESIGN.md).
        let freed = unsafe {
            ctx.limbo.reclaim_prefix_unreserved(
                usize::MAX,
                &ctx.protected,
                &mut ctx.stats,
                &mut ctx.mag,
            )
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    fn clear_slots(&self, tid: usize) {
        // Claims drop first: mirrored claims must stay a subset of the real
        // announcements (a claim outliving its slot would flag legal frees).
        smr_common::check::clear_claims(tid);
        for h in self.hazards[tid].slots.iter() {
            if h.load(Ordering::Relaxed) != 0 {
                h.store(0, Ordering::Release);
            }
        }
    }
}

impl Smr for HazardPointers {
    type ThreadCtx = HpCtx;

    const NAME: &'static str = "HP";
    const USES_PROTECTION: bool = true;
    // Protection is validated by re-reading the source field; once the source
    // record is marked its `next` is frozen, so the validation re-read can
    // never detect that the pointee was retired — and possibly freed and
    // recycled *before this thread ever loaded the pointer*, a window no
    // address-based hazard can cover (DESIGN.md, "Why the HP family keeps
    // the Harris-Michael fallback"). Traversing out of unlinked records is
    // therefore inherently unsafe for HP, unlike the interval family.
    const CAN_TRAVERSE_UNLINKED: bool = false;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let hazards = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(HazardSlots {
                    slots: (0..config.hazards_per_thread)
                        .map(|_| AtomicUsize::new(0))
                        .collect(),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            hazards,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> HpCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.clear_slots(tid);
        HpCtx {
            tid,
            limbo: LimboBag::with_capacity_and_batch(
                self.config.hi_watermark + 1,
                self.config.retire_batch_cap(),
            ),
            scan: ScanState::new(),
            protected: Vec::with_capacity(self.config.hazards_per_thread * self.config.max_threads),
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
        // Last chance to free what is already safe; the rest is orphaned.
        self.scan_and_reclaim(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut HpCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut HpCtx, slot: usize, src: &Atomic<T>) -> Shared<T> {
        let slots = &self.hazards[ctx.tid].slots;
        debug_assert!(slot < slots.len(), "hazard slot index out of range");
        // The slot is being repurposed: whatever it validated before stops
        // being protected at the first announcement store below, so the
        // mirrored claim must drop *now* (a claim outliving its slot would
        // flag legal frees of the abandoned record).
        smr_common::check::claim_addr(ctx.tid, slot, 0);
        let mut p = src.load(Ordering::Acquire);
        loop {
            // Announce, fence (SeqCst store), then validate against the source.
            slots[slot].store(p.untagged_usize(), Ordering::SeqCst);
            let q = src.load(Ordering::SeqCst);
            if q.ptr_eq(p) {
                // The claim is mirrored only for the *validated* value: a
                // failing iteration's transient announcement protects nothing
                // (the record may legitimately be freed while it is up).
                smr_common::check::claim_addr(ctx.tid, slot, q.untagged_usize());
                return q;
            }
            ctx.stats.protect_failures += 1;
            p = q;
        }
    }

    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        ctx: &mut HpCtx,
        dst_slot: usize,
        _src_slot: usize,
        ptr: Shared<T>,
    ) {
        // The record is covered by the caller's existing hazard in
        // `src_slot` (or is otherwise immune, e.g. a sentinel), so announcing
        // it in another slot cannot race with its reclamation — *provided* a
        // concurrent scan cannot read `dst_slot` before this store and
        // `src_slot` after the caller's next overwrite of it, missing both.
        // The slots are single-writer, so re-reading `src_slot` here
        // (writer-side "validate-after-copy") is vacuous — it can only
        // change under the owner's own later stores; the race is closed on
        // the scanner side instead, which collects every slot twice (see
        // `scan_and_reclaim` and DESIGN.md, "Validate-after-copy for moved
        // hazards").
        self.hazards[ctx.tid].slots[dst_slot].store(ptr.untagged_usize(), Ordering::SeqCst);
        smr_common::check::claim_addr(ctx.tid, dst_slot, ptr.untagged_usize());
    }

    #[inline]
    fn clear_protections(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
    }

    #[inline]
    fn end_op(&self, ctx: &mut HpCtx) {
        self.clear_slots(ctx.tid);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut HpCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        // Retire coalescing: the watermark trigger is consulted only when a
        // batch flushes, so the bound gains RETIRE_BATCH_CAP - 1 of slack.
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), 0));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
            if self.policy.scan_on_retire(ctx.limbo.len()) {
                trace::emit(
                    ctx.tid,
                    TraceKind::LimboHigh,
                    ctx.limbo.len() as u64,
                    self.config.hi_watermark as u64,
                );
                self.scan_and_reclaim(ctx);
            }
        }
    }

    fn flush(&self, ctx: &mut HpCtx) {
        self.scan_and_reclaim(ctx);
    }

    fn thread_stats(&self, ctx: &HpCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut HpCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &HpCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for HazardPointers {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    #[test]
    fn protected_record_is_not_freed() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut owner = smr.register(0);
        let mut reader = smr.register(1);

        let shared = Atomic::<Node>::null();
        let node = smr.alloc(
            &mut owner,
            Node {
                header: NodeHeader::new(),
                key: 7,
            },
        );
        shared.store(node, Ordering::Release);

        // Reader protects the record.
        let p = smr.protect(&mut reader, 0, &shared);
        assert_eq!(unsafe { p.deref().key }, 7);

        // Owner unlinks and retires it, plus filler to force scans.
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut owner, old) };
        for i in 0..(smr.config().hi_watermark * 2) {
            let f = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut owner, f) };
        }
        assert!(smr.thread_stats(&owner).frees > 0);
        // Protected record still readable (and still in limbo).
        assert_eq!(unsafe { p.deref().key }, 7);
        assert!(smr.limbo_len(&owner) >= 1);

        // Once the reader clears its hazards the record becomes reclaimable.
        smr.clear_protections(&mut reader);
        smr.flush(&mut owner);
        assert_eq!(smr.limbo_len(&owner), 0);

        smr.unregister(&mut reader);
        smr.unregister(&mut owner);
    }

    #[test]
    fn protect_validates_against_concurrent_change() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let a = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        shared.store(a, Ordering::Release);
        let p = smr.protect(&mut ctx, 0, &shared);
        assert!(p.ptr_eq(a));
        // The announced hazard must equal the validated pointer.
        let announced = smr.hazards[0].slots[0].load(Ordering::SeqCst);
        assert_eq!(announced, a.untagged_usize());
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.clear_protections(&mut ctx);
        smr.flush(&mut ctx);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn garbage_is_bounded_by_watermark_plus_hazards() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let cfg = smr.config().clone();
        let mut ctx = smr.register(0);
        // Coalescing slack: the watermark trigger is consulted only on batch
        // flush, so the bag may overshoot by one unfilled batch.
        let bound = cfg.hi_watermark
            + cfg.hazards_per_thread * cfg.max_threads
            + (smr_common::RETIRE_BATCH_CAP - 1);
        for i in 0..(cfg.hi_watermark * 8) {
            let p = smr.alloc(
                &mut ctx,
                Node {
                    header: NodeHeader::new(),
                    key: i as u64,
                },
            );
            unsafe { smr.retire(&mut ctx, p) };
            assert!(smr.limbo_len(&ctx) <= bound);
        }
        smr.unregister(&mut ctx);
    }

    /// Regression test for the `protect_copy` scan race (ROADMAP item): one
    /// thread continuously holds a record while *moving* its hazard from
    /// slot 1 to slot 0 and reusing slot 1 — the one relocation per held
    /// record the `Smr::protect_copy` contract licenses, and exactly the
    /// Harris list's `left`-promotion pattern — while another thread retires
    /// the record and scans concurrently. With a single collection pass a
    /// scan can read slot 0 before the copy and slot 1 after its overwrite
    /// and free the record mid-move; the double-collect scan must never free
    /// a record that is continuously covered. The dereferences below turn a
    /// premature free into a checkable wrong value (or an ASAN fault).
    #[test]
    fn moved_hazard_survives_concurrent_scans() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let smr = Arc::new(HazardPointers::new(
            SmrConfig::for_tests().with_max_threads(4),
        ));
        const ROUNDS: usize = 150;

        for round in 0..ROUNDS {
            let shared = Arc::new(Atomic::<Node>::null());
            let mut owner = smr.register(0);
            let node = smr.alloc(
                &mut owner,
                Node {
                    header: NodeHeader::new(),
                    key: round as u64,
                },
            );
            shared.store(node, Ordering::Release);

            let moving = Arc::new(AtomicBool::new(false));
            let done_moving = Arc::new(AtomicBool::new(false));
            let reader = {
                let smr = Arc::clone(&smr);
                let shared = Arc::clone(&shared);
                let moving = Arc::clone(&moving);
                let done_moving = Arc::clone(&done_moving);
                std::thread::spawn(move || {
                    let mut ctx = smr.register(1);
                    // Announce in slot 1 (the *higher* index: a scan reads
                    // slot 0 first, which is the racy direction for a
                    // 1→0 move), validated against the source.
                    let p = smr.protect(&mut ctx, 1, &shared);
                    moving.store(true, Ordering::SeqCst);
                    // The single relocation: copy 1 → 0, then reuse slot 1
                    // for unrelated announcements, exactly once per held
                    // record. The record stays continuously protected.
                    smr.protect_copy(&mut ctx, 0, 1, p);
                    smr.hazards[1].slots[1].store(0x1000, Ordering::SeqCst);
                    for i in 0..32u64 {
                        assert_eq!(
                            unsafe { p.deref().key },
                            round as u64,
                            "record freed while continuously protected (scan race)"
                        );
                        // Churn the reused source slot like a traversal would.
                        smr.hazards[1].slots[1].store(0x1000 + i as usize * 16, Ordering::SeqCst);
                        std::thread::yield_now();
                    }
                    done_moving.store(true, Ordering::SeqCst);
                    smr.clear_protections(&mut ctx);
                    smr.unregister(&mut ctx);
                })
            };

            while !moving.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // Retire the record and scan repeatedly while the reader holds
            // the moved hazard.
            let old = shared.swap(Shared::null(), Ordering::AcqRel);
            unsafe { smr.retire(&mut owner, old) };
            while !done_moving.load(Ordering::SeqCst) {
                smr.flush(&mut owner);
            }
            reader.join().unwrap();
            smr.flush(&mut owner);
            assert_eq!(smr.limbo_len(&owner), 0, "record reclaimed after release");
            smr.unregister(&mut owner);
        }
    }

    #[test]
    fn end_op_clears_hazards() {
        let smr = HazardPointers::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let shared = Atomic::<Node>::null();
        let a = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        shared.store(a, Ordering::Release);
        let _ = smr.protect(&mut ctx, 2, &shared);
        assert_ne!(smr.hazards[0].slots[2].load(Ordering::SeqCst), 0);
        smr.end_op(&mut ctx);
        assert_eq!(smr.hazards[0].slots[2].load(Ordering::SeqCst), 0);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.unregister(&mut ctx);
    }
}
