//! Result formatting: the tables/series the paper's figures plot.
//!
//! Each experiment runner returns a flat list of [`TrialResult`]s; this module
//! renders them either as a human-readable table (one row per trial, the
//! columns the relevant figure plots) or as CSV for external plotting, and can
//! pivot results into the "one series per reclaimer, one column per thread
//! count" layout that mirrors the paper's figures.

use crate::driver::TrialResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Formats a structured harness note: `@note[kind] message`.
///
/// Every advisory the harness emits alongside results (fault-plan banners,
/// "leaky never scans" caveats, replay hints) flows through this one shape so
/// scripts can grep `@note\[` and filter by kind instead of parsing ad-hoc
/// prose scattered across bench binaries.
pub fn format_note(kind: &str, msg: &str) -> String {
    format!("@note[{kind}] {msg}")
}

/// Prints a structured note to stderr (results stay clean on stdout).
pub fn note(kind: &str, msg: &str) {
    eprintln!("{}", format_note(kind, msg));
}

/// Renders trials as a markdown-style table.
pub fn to_table(title: &str, results: &[TrialResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "| structure | reclaimer | mix | key range | threads | stalled | Mops/s | retired | freed | unreclaimed | signals | neutralized | heartbeats | conceded | adopted | pool hit | op p50/p99/p999 ns | peak MiB |"
    );
    let _ = writeln!(
        out,
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
    );
    for r in results {
        let (p50, p99, p999) = r.smr_totals.tel.op.p50_p99_p999();
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {:.3} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1}% | {}/{}/{} | {:.2} |",
            r.ds,
            r.smr,
            r.mix,
            r.key_range,
            r.threads,
            if r.stalled_thread { "yes" } else { "no" },
            r.mops,
            r.smr_totals.retires,
            r.smr_totals.frees,
            r.outstanding_garbage(),
            r.smr_totals.signals_sent,
            r.smr_totals.neutralizations,
            r.smr_totals.heartbeat_scans,
            r.smr_totals.ping_concessions,
            r.smr_totals.orphan_adoptions,
            r.smr_totals.pool_hit_rate() * 100.0,
            p50,
            p99,
            p999,
            r.peak_mem_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    out
}

/// Renders trials as CSV (header + one row per trial).
pub fn to_csv(results: &[TrialResult]) -> String {
    let mut out = String::from(
        "structure,reclaimer,mix,key_range,threads,stalled,mops,total_ops,duration_ms,retired,freed,unreclaimed,signals,neutralizations,heartbeat_scans,ping_concessions,orphan_adoptions,pool_hit_rate,op_p50_ns,op_p99_ns,op_p999_ns,op_max_ns,scan_p50_ns,scan_p99_ns,scan_p999_ns,scan_max_ns,ping_rtt_p99_ns,ping_stall_p99_ns,peak_mem_bytes\n",
    );
    for r in results {
        let (op50, op99, op999) = r.smr_totals.tel.op.p50_p99_p999();
        let (sc50, sc99, sc999) = r.smr_totals.tel.scan.p50_p99_p999();
        let (_, rtt99, _) = r.smr_totals.tel.ping_rtt.p50_p99_p999();
        let (_, stall99, _) = r.smr_totals.tel.ping_stall.p50_p99_p999();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.4},{},{:.1},{},{},{},{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{},{},{},{}",
            r.ds,
            r.smr,
            r.mix,
            r.key_range,
            r.threads,
            r.stalled_thread,
            r.mops,
            r.total_ops,
            r.duration.as_secs_f64() * 1e3,
            r.smr_totals.retires,
            r.smr_totals.frees,
            r.outstanding_garbage(),
            r.smr_totals.signals_sent,
            r.smr_totals.neutralizations,
            r.smr_totals.heartbeat_scans,
            r.smr_totals.ping_concessions,
            r.smr_totals.orphan_adoptions,
            r.smr_totals.pool_hit_rate(),
            op50,
            op99,
            op999,
            r.smr_totals.tel.op.max(),
            sc50,
            sc99,
            sc999,
            r.smr_totals.tel.scan.max(),
            rtt99,
            stall99,
            r.peak_mem_bytes,
        );
    }
    out
}

/// Pivots results into the layout of the paper's throughput figures: one row
/// per reclaimer, one column per thread count, values in Mops/s.
pub fn to_throughput_series(title: &str, results: &[TrialResult]) -> String {
    let mut threads: Vec<usize> = results.iter().map(|r| r.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    let mut series: BTreeMap<&'static str, BTreeMap<usize, f64>> = BTreeMap::new();
    for r in results {
        series.entry(r.smr).or_default().insert(r.threads, r.mops);
    }
    let mut out = String::new();
    let _ = writeln!(out, "### {title} (Mops/s by thread count)");
    let mut header = String::from("| reclaimer |");
    for t in &threads {
        let _ = write!(header, " {t} |");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "|{}", "---|".repeat(threads.len() + 1));
    for (smr, by_threads) in &series {
        let mut row = format!("| {smr} |");
        for t in &threads {
            match by_threads.get(t) {
                Some(v) => {
                    let _ = write!(row, " {v:.3} |");
                }
                None => {
                    let _ = write!(row, " - |");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::ThreadStats;
    use std::time::Duration;

    fn fake(smr: &'static str, threads: usize, mops: f64) -> TrialResult {
        TrialResult {
            ds: "lazy-list",
            smr,
            mix: "50i-50d".to_string(),
            key_range: 1000,
            threads,
            total_ops: 1000,
            duration: Duration::from_millis(100),
            mops,
            smr_totals: ThreadStats::default(),
            peak_mem_bytes: 1024 * 1024,
            stalled_thread: false,
            injected_faults: 0,
            departed_workers: 0,
        }
    }

    #[test]
    fn table_contains_every_row() {
        let rows = vec![fake("NBR+", 2, 1.5), fake("DEBRA", 2, 1.2)];
        let t = to_table("Fig 3b", &rows);
        assert!(t.contains("Fig 3b"));
        assert!(t.contains("NBR+"));
        assert!(t.contains("DEBRA"));
        assert_eq!(t.lines().count(), 3 + rows.len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![fake("HP", 4, 0.7)];
        let c = to_csv(&rows);
        assert!(c.starts_with("structure,"));
        assert_eq!(c.lines().count(), 2);
        assert!(c.contains("HP"));
        // Header and row column counts must agree (the telemetry columns are
        // easy to desynchronize).
        let mut lines = c.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        let row_cols = lines.next().unwrap().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(c.contains("op_p50_ns"));
        assert!(c.contains("ping_concessions"));
        assert!(c.contains("pool_hit_rate"));
    }

    #[test]
    fn table_surfaces_latency_percentiles() {
        let mut row = fake("NBR", 2, 1.0);
        for v in [100u64, 200, 400, 800] {
            row.smr_totals.tel.op.record(v);
        }
        row.smr_totals.ping_concessions = 3;
        row.smr_totals.orphan_adoptions = 7;
        let t = to_table("cells", &[row]);
        // Percentile cells are bucket upper bounds clamped to the max.
        assert!(t.contains("op p50/p99/p999 ns"));
        assert!(t.contains("| 3 | 7 |"));
        // Header and row must have the same number of columns.
        let lines: Vec<&str> = t.lines().collect();
        let header_cols = lines[1].matches('|').count();
        let row_cols = lines[3].matches('|').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn note_channel_shape_is_greppable() {
        let n = format_note("fault-plan", "seed=0x1 [t2@512:stall(1024)]");
        assert_eq!(n, "@note[fault-plan] seed=0x1 [t2@512:stall(1024)]");
        assert!(n.starts_with("@note["));
    }

    #[test]
    fn series_pivot_orders_thread_counts() {
        let rows = vec![
            fake("NBR+", 4, 2.0),
            fake("NBR+", 1, 0.9),
            fake("DEBRA", 1, 0.8),
            fake("DEBRA", 4, 1.5),
        ];
        let s = to_throughput_series("Fig 3a", &rows);
        assert!(s.contains("| reclaimer | 1 | 4 |"));
        assert!(s.contains("| NBR+ | 0.900 | 2.000 |"));
    }
}
