//! Integrating NBR into *your own* data structure with the high-level
//! `SmrHandle` / `ReadPhase` API.
//!
//! The structure here is a tiny single-writer-per-slot "registry": an array of
//! atomic pointers to heap records, supporting lookup (read phase only) and
//! replace (read phase + reservation + write phase). It is deliberately
//! minimal so the NBR integration steps stand out:
//!
//! 1. traverse / read through [`ReadPhase::load`] (checkpointed),
//! 2. call [`ReadPhase::reserve`] with every record the write phase touches,
//! 3. perform the update, retire what was unlinked.
//!
//! Run with:
//! ```text
//! cargo run -p nbr-bench --release --example custom_ds
//! ```

use nbr::{NbrPlus, OpResult, SmrHandle};
use smr_common::{Atomic, NodeHeader, Smr, SmrConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A heap record managed by NBR.
struct Record {
    header: NodeHeader,
    value: u64,
}
smr_common::impl_smr_node!(Record);

/// A fixed-size registry of shared records.
struct Registry {
    smr: NbrPlus,
    slots: Vec<Atomic<Record>>,
}

impl Registry {
    fn new(slots: usize, config: SmrConfig) -> Self {
        Self {
            smr: NbrPlus::new(config),
            slots: (0..slots).map(|_| Atomic::null()).collect(),
        }
    }

    /// Reads the value stored in `slot` (None when empty).
    fn get(&self, handle: &mut SmrHandle<'_, NbrPlus>, slot: usize) -> Option<u64> {
        handle.run(|phase| {
            let p = phase.load(0, &self.slots[slot])?;
            let value = unsafe { p.as_ref() }.map(|r| r.value);
            phase.reserve(&[]); // read-only operation: nothing to reserve
            OpResult::done(value)
        })
    }

    /// Replaces the record in `slot` with a new one holding `value`,
    /// returning the previous value.
    fn replace(&self, handle: &mut SmrHandle<'_, NbrPlus>, slot: usize, value: u64) -> Option<u64> {
        let cell = &self.slots[slot];
        handle.run(|phase| {
            // Φ_read: observe the current record.
            let old = phase.load(0, cell)?;
            let old_value = unsafe { old.as_ref() }.map(|r| r.value);
            // Reservation: the write phase will CAS on `cell` with `old` as the
            // expected value and may re-read `old`'s fields.
            phase.reserve(&[old.untagged_usize()]);
            // Φ_write: allocation and CAS are permitted now.
            let new = phase.alloc(Record {
                header: NodeHeader::new(),
                value,
            });
            match cell.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if !old.is_null() {
                        // SAFETY: `old` was just unlinked by the CAS above.
                        unsafe { phase.retire(old) };
                    }
                    OpResult::done(old_value)
                }
                Err(_) => {
                    // Lost the race: discard the unpublished record and retry
                    // from a fresh read phase.
                    let (smr, ctx) = phase.raw();
                    unsafe { smr.dealloc_unpublished(ctx, new) };
                    OpResult::retry()
                }
            }
        })
    }
}

fn main() {
    let threads = 4usize;
    let registry = Arc::new(Registry::new(
        8,
        SmrConfig::default().with_max_threads(threads + 1),
    ));

    let mut handles = Vec::new();
    for t in 0..threads {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            let mut handle = SmrHandle::register(&registry.smr, t);
            let mut replaced = 0u64;
            for i in 0..50_000u64 {
                let slot = ((i * 7 + t as u64) % 8) as usize;
                if i % 3 == 0 {
                    let _ = registry.get(&mut handle, slot);
                } else {
                    registry.replace(&mut handle, slot, i * 10 + t as u64);
                    replaced += 1;
                }
            }
            let stats = handle.stats();
            (replaced, stats)
        }));
    }

    let mut total_replaced = 0u64;
    let mut totals = smr_common::ThreadStats::default();
    for h in handles {
        let (replaced, stats) = h.join().unwrap();
        total_replaced += replaced;
        totals += stats;
    }

    println!("custom registry protected by NBR+:");
    println!("  {total_replaced} replacements performed by {threads} threads");
    println!(
        "  {} records retired, {} freed, {} outstanding (bounded by the watermarks)",
        totals.retires,
        totals.frees,
        totals.outstanding()
    );
    println!(
        "  {} neutralization signals, {} read-phase restarts",
        totals.signals_sent, totals.neutralizations
    );
}
