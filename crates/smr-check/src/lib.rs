//! # smr-check: schedule exploration + lifetime oracle for the reclaimer matrix
//!
//! This crate is the checking half of the workspace: it drives the
//! `check`-feature instrumentation baked into `smr-common` (the shadow-heap
//! lifetime oracle and the per-scheme protection-contract mirrors) with a
//! deterministic, seeded cooperative scheduler, so that protection-contract
//! violations — premature frees, use-after-free derefs, overlapping recycled
//! incarnations — become immediate panics with a replayable
//! `(strategy, seed)` pair instead of one-in-a-billion memory corruption.
//!
//! Layout:
//!
//! * [`sched`] — the scheduler: real OS threads, exactly one runnable at a
//!   time, context switches only at instrumented preemption points, driven
//!   by seeded Random or PCT strategies.
//! * [`scenario`] — small list/hash scenarios over the full 11-scheme
//!   matrix, plus the replay-banner plumbing the integration tests use.
//!
//! The crate is **not** a workspace default-member: enabling it turns on the
//! `check` feature across every scheme crate, and feature unification would
//! otherwise leak instrumentation into release artifacts. Run it explicitly:
//!
//! ```text
//! cargo test -p smr-check                # full seeded sweep + resurrect suite
//! SMR_CHECK_SCHEDULES=500 cargo test -p smr-check   # deeper sweep
//! SMR_CHECK_SEED=0xdeadbeef cargo test -p smr-check # replay a reported seed
//! ```

pub mod scenario;
pub mod sched;

pub use scenario::{
    explore_one, quiet_config, replay_banner, run_matrix_one, Params, RunReport, Scheme, Structure,
};
pub use sched::{run_schedule, Outcome, SplitMix64, Strategy};

/// Compile-time proof that this crate really links against the instrumented
/// build: a stale feature graph (e.g. a dependency edge missing the `check`
/// forward) would turn every oracle into a no-op and the sweep into a
/// vacuous pass.
const _: () = assert!(
    smr_common::check::compiled_in(),
    "smr-check requires smr-common's `check` feature"
);
