//! Figure 6 (appendix): lazy-list throughput across small key-range sizes
//! (the paper sweeps 200 and 2 K). Prints one throughput table per size.

use smr_harness::experiments::{fig6_lazylist_sizes, ExperimentScale};
use smr_harness::report;

fn main() {
    let mut scale = ExperimentScale::smoke();
    scale.thread_counts = vec![2];
    let sizes = [200u64, 2_048u64];
    let results = fig6_lazylist_sizes(&scale, &sizes);
    for &size in &sizes {
        let rows: Vec<_> = results
            .iter()
            .filter(|r| r.key_range == size)
            .cloned()
            .collect();
        println!(
            "{}",
            report::to_table(&format!("Figure 6 — lazy list, key range {size}"), &rows)
        );
    }
}
