//! The Harris-Michael lock-free list (HM04) and its restart-from-root variant.
//!
//! Michael's refinement of the Harris list unlinks marked nodes one at a time
//! during traversal and — in its original form — *continues the traversal from
//! `pred`* after each unlink. That makes it incompatible with NBR (Table 1,
//! row HM04): the read phase that follows the auxiliary write phase does not
//! start from the root, so newly discovered records would be unreserved.
//!
//! Experiment E4 of the paper therefore modifies HM04 so that every unlink is
//! followed by a restart from the head, which makes NBR applicable, and then
//! measures the cost of those extra restarts by also running the modified list
//! under DEBRA ("debra-restarts") against the original under DEBRA
//! ("debra-norestarts"). [`HmList`] implements both behaviours behind the
//! [`RestartPolicy`] knob so the exact same comparison can be reproduced.
//!
//! The list logic itself lives in the crate-internal `HmCore`, which owns
//! the sentinels but *not* the reclaimer: several cores can share one `S`,
//! which is how the
//! fixed-size hash map of HM-list buckets
//! ([`HmHashMap`](crate::HmHashMap), the related repos' HMLHT structure)
//! composes out of this module.
//!
//! **Safety note:** the `ContinueFromPred` policy must only be paired with
//! reclaimers that do not rely on the NBR phase protocol (it is a documented
//! phase-rule violation for NBR/NBR+, exactly as the paper describes); the
//! benches only use it with DEBRA and the leaky reclaimer.

use crate::{check_key, memo, ConcurrentSet, KEY_MAX, KEY_MIN};
use smr_common::{recycle, Atomic, NodeHeader, Shared, Smr, SmrConfig};
use std::sync::atomic::Ordering;

const MARK: usize = 1;

/// What a traversal does after performing an auxiliary unlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart the search from the head (the paper's modified HM04; required
    /// for NBR/NBR+).
    FromRoot,
    /// Continue from `pred` (original HM04; only valid with EBR-family or
    /// leaky reclaimers).
    ContinueFromPred,
}

/// A node of the Harris-Michael list.
pub struct Node {
    header: NodeHeader,
    key: u64,
    next: Atomic<Node>,
}
smr_common::impl_smr_node!(Node);

impl Node {
    fn new(key: u64) -> Self {
        Self {
            header: NodeHeader::new(),
            key,
            next: Atomic::null(),
        }
    }
}

struct FindResult {
    pred: Shared<Node>,
    curr: Shared<Node>,
}

/// One Harris-Michael list instance: the sentinels and traversal/update
/// logic, decoupled from the reclaimer so that many cores can share a single
/// `S` (the [`HmHashMap`](crate::HmHashMap) buckets). The owning structure
/// supplies the reclaimer to every call; operations bracket themselves with
/// `begin_op`/`end_op` and follow the NBR phase discipline, with each core's
/// head sentinel acting as the operation's root.
pub(crate) struct HmCore {
    head: Box<Node>,
    tail: Shared<Node>,
    policy: RestartPolicy,
    /// Identity of this core in the thread-local lookup memo. Every bucket
    /// of an [`HmHashMap`](crate::HmHashMap) gets its own identity, so two
    /// buckets never serve each other's cached pointers.
    memo_id: u64,
}

impl HmCore {
    pub(crate) fn new(policy: RestartPolicy) -> Self {
        let tail = Shared::from_raw(recycle::alloc_node_raw(Node::new(KEY_MAX)));
        // lint:allow-box-node — head sentinel: owned by the core, never
        // published for retirement, freed by Box's own drop.
        let head = Box::new(Node {
            header: NodeHeader::new(),
            key: KEY_MIN,
            next: Atomic::new(tail),
        });
        Self {
            head,
            tail,
            policy,
            memo_id: memo::next_memo_id(),
        }
    }

    #[inline]
    fn head_shared(&self) -> Shared<Node> {
        Shared::from_raw(&*self.head as *const Node as *mut Node)
    }

    /// Michael's `find`: returns `(pred, curr)` with `pred.key < key <=
    /// curr.key`, both reachable and unmarked at the linearization point, and
    /// unlinks any marked node it encounters along the way. On return the
    /// thread is still inside a read phase with `pred`/`curr` protected.
    fn find<S: Smr>(&self, smr: &S, ctx: &mut S::ThreadCtx, key: u64) -> FindResult {
        'from_root: loop {
            smr.begin_read_phase(ctx);
            let mut pred = self.head_shared();
            // Rotating hazard slots: pred, curr, next.
            let mut pred_slot = 2usize;
            let mut curr_slot = 0usize;
            // SAFETY: `pred` is the head sentinel here, owned by the core.
            let mut curr = smr.protect(ctx, curr_slot, unsafe { &pred.deref().next });
            if smr.checkpoint(ctx) {
                continue 'from_root;
            }
            loop {
                debug_assert_eq!(curr.tag(), 0);
                if curr.ptr_eq(self.tail) {
                    return FindResult { pred, curr };
                }
                let next_slot = 3 - pred_slot - curr_slot; // the remaining slot of {0,1,2}
                                                           // SAFETY: `curr` is covered by `curr_slot` (the `protect`
                                                           // that returned it).
                let next = smr.protect(ctx, next_slot, unsafe { &curr.deref().next });
                if smr.checkpoint(ctx) {
                    continue 'from_root;
                }
                if next.tag() & MARK != 0 {
                    // `curr` is logically deleted: unlink it (auxiliary Φ_write
                    // on the reserved pred/curr pair), then resume according to
                    // the policy.
                    smr.end_read_phase(ctx, &[pred.untagged_usize(), curr.untagged_usize()]);
                    // SAFETY: `pred` was just reserved by `end_read_phase`.
                    let pred_ref = unsafe { pred.deref() };
                    let unlinked = pred_ref
                        .next
                        .compare_exchange(
                            curr,
                            next.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok();
                    if unlinked {
                        // SAFETY: unlinked by this thread's CAS just now.
                        unsafe { smr.retire(ctx, curr) };
                    }
                    match self.policy {
                        RestartPolicy::FromRoot => continue 'from_root,
                        RestartPolicy::ContinueFromPred => {
                            if !unlinked {
                                continue 'from_root;
                            }
                            // Original HM04: keep going from pred. Re-open a
                            // read phase so the phase brackets stay balanced
                            // (this path is never used with NBR).
                            smr.begin_read_phase(ctx);
                            curr = next.with_tag(0);
                            // pred keeps its slot; curr takes over next's slot.
                            curr_slot = next_slot;
                            continue;
                        }
                    }
                }
                // SAFETY: `curr` is covered by `curr_slot`.
                let curr_key = unsafe { curr.deref().key };
                if curr_key >= key {
                    return FindResult { pred, curr };
                }
                pred = curr;
                pred_slot = curr_slot;
                curr = next;
                curr_slot = next_slot;
            }
        }
    }

    pub(crate) fn contains<S: Smr>(&self, smr: &S, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        smr.begin_op(ctx);
        // Zipf-hot lookup memo: when the reclaimer clock can validate a
        // cached pointer (`validation_stamp`), a hit skips the traversal.
        let stamp = smr.validation_stamp(ctx);
        if let Some(stamp) = stamp {
            if let Some(addr) = memo::lookup(self.memo_id, key, stamp) {
                let node = addr as *const Node;
                // SAFETY: the entry was stored under an operation with the
                // same validation stamp, pointing at a node then observed
                // unmarked (hence reachable, not yet retired). By the
                // `validation_stamp` contract, stamp equality means no
                // record retired at or after that era has been freed, so
                // the memory is still this node.
                let next = unsafe { &(*node).next }.load(Ordering::Acquire);
                // SAFETY: as above — the node is still allocated.
                if next.tag() & MARK == 0 && unsafe { (*node).key } == key {
                    // Unmarked ⇒ still reachable (HM04 unlinks only after
                    // marking): the key is present, linearized at the load.
                    smr.thread_stats_mut(ctx).memo_hits += 1;
                    smr.end_op(ctx);
                    return true;
                }
                memo::invalidate(self.memo_id, key);
            }
            smr.thread_stats_mut(ctx).memo_misses += 1;
        }
        let r = self.find(smr, ctx, key);
        // SAFETY: `find` returned with `r.curr` still protected.
        let found = !r.curr.ptr_eq(self.tail) && unsafe { r.curr.deref() }.key == key;
        if found {
            if let Some(stamp) = stamp {
                // `find` observed `r.curr` unmarked at its linearization
                // point — the precondition for memoizing it.
                memo::store(self.memo_id, key, r.curr.untagged_usize(), stamp);
            }
        }
        smr.end_read_phase(ctx, &[]);
        smr.clear_protections(ctx);
        smr.end_op(ctx);
        found
    }

    pub(crate) fn insert<S: Smr>(&self, smr: &S, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        smr.begin_op(ctx);
        let inserted = loop {
            let r = self.find(smr, ctx, key);
            // SAFETY: `find` returned with `r.curr` still protected.
            if !r.curr.ptr_eq(self.tail) && unsafe { r.curr.deref() }.key == key {
                smr.end_read_phase(ctx, &[]);
                break false;
            }
            smr.end_read_phase(ctx, &[r.pred.untagged_usize(), r.curr.untagged_usize()]);
            let mut node = Node::new(key);
            node.next = Atomic::new(r.curr);
            let node = smr.alloc(ctx, node);
            // SAFETY: `r.pred` was reserved by `end_read_phase` above.
            let pred_ref = unsafe { r.pred.deref() };
            if pred_ref
                .next
                .compare_exchange(r.curr, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
            // SAFETY: never published.
            unsafe { smr.dealloc_unpublished(ctx, node) };
        };
        smr.clear_protections(ctx);
        smr.end_op(ctx);
        inserted
    }

    pub(crate) fn remove<S: Smr>(&self, smr: &S, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        check_key(key);
        smr.begin_op(ctx);
        let removed = loop {
            let r = self.find(smr, ctx, key);
            // SAFETY: `find` returned with `r.curr` still protected.
            if r.curr.ptr_eq(self.tail) || unsafe { r.curr.deref() }.key != key {
                smr.end_read_phase(ctx, &[]);
                break false;
            }
            smr.end_read_phase(ctx, &[r.pred.untagged_usize(), r.curr.untagged_usize()]);
            // SAFETY: `r.curr` was reserved by `end_read_phase` above.
            let curr_ref = unsafe { r.curr.deref() };
            let next = curr_ref.next.load(Ordering::Acquire);
            if next.tag() & MARK != 0 {
                // Someone else is deleting it; help by retrying (the next find
                // unlinks it) and report "not present".
                continue;
            }
            // Logical delete.
            if curr_ref
                .next
                .compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Eager memo invalidation: this thread just logically deleted
            // the node its memo may be caching for `key`. (Other threads'
            // entries die at the stamp/mark validation.)
            memo::invalidate(self.memo_id, key);
            // Physical delete: if our unlink fails, some traversal will do it
            // (and retire the node).
            // SAFETY: `r.pred` was reserved by `end_read_phase` above.
            let pred_ref = unsafe { r.pred.deref() };
            if pred_ref
                .next
                .compare_exchange(
                    r.curr,
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: unlinked by this thread's CAS; retired exactly once.
                unsafe { smr.retire(ctx, r.curr) };
            } else {
                let r2 = self.find(smr, ctx, key);
                let _ = r2;
                smr.end_read_phase(ctx, &[]);
            }
            break true;
        };
        smr.clear_protections(ctx);
        smr.end_op(ctx);
        removed
    }

    /// Counts the unmarked nodes by raw traversal (no protection — only
    /// meaningful while no other thread mutates the core).
    pub(crate) fn count<S: Smr>(&self, smr: &S, ctx: &mut S::ThreadCtx) -> usize {
        smr.begin_op(ctx);
        smr.begin_read_phase(ctx);
        let mut count = 0usize;
        let mut curr = self.head.next.load(Ordering::Acquire).with_tag(0);
        loop {
            if curr.ptr_eq(self.tail) {
                break;
            }
            // SAFETY: `count` runs inside a read phase; see its doc — only
            // meaningful while no other thread mutates the core.
            let next = unsafe { curr.deref() }.next.load(Ordering::Acquire);
            if next.tag() & MARK == 0 {
                count += 1;
            }
            curr = next.with_tag(0);
        }
        smr.end_read_phase(ctx, &[]);
        smr.end_op(ctx);
        count
    }
}

impl Drop for HmCore {
    fn drop(&mut self) {
        let mut curr = self.head.next.load(Ordering::Relaxed).with_tag(0);
        while !curr.is_null() {
            // SAFETY: `&mut self` — no concurrent access remains; every
            // node is exclusively ours and freed exactly once.
            let next = unsafe { curr.deref() }
                .next
                .load(Ordering::Relaxed)
                .with_tag(0);
            // SAFETY: as above.
            unsafe { recycle::free_node_raw(curr.as_raw()) };
            curr = next;
        }
    }
}

/// The Harris-Michael lock-free list-based set.
pub struct HmList<S: Smr> {
    smr: S,
    core: HmCore,
}

// SAFETY: the core owns its nodes through `Atomic` links; all shared access
// goes through the `Smr` protection protocol, and `Smr: Send + Sync`.
unsafe impl<S: Smr> Send for HmList<S> {}
// SAFETY: as above — all mutation is via atomics and CAS.
unsafe impl<S: Smr> Sync for HmList<S> {}

impl<S: Smr> HmList<S> {
    /// Creates an empty list with the given restart policy.
    pub fn with_policy(config: SmrConfig, policy: RestartPolicy) -> Self {
        Self {
            smr: S::new(config),
            core: HmCore::new(policy),
        }
    }

    /// Creates an empty list with the restart-from-root policy (the variant
    /// that is safe under every reclaimer, including NBR/NBR+).
    pub fn new(config: SmrConfig) -> Self {
        Self::with_policy(config, RestartPolicy::FromRoot)
    }

    /// The restart policy this list was created with.
    pub fn policy(&self) -> RestartPolicy {
        self.core.policy
    }
}

impl<S: Smr> ConcurrentSet<S> for HmList<S> {
    fn smr(&self) -> &S {
        &self.smr
    }

    fn contains(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.core.contains(&self.smr, ctx, key)
    }

    fn insert(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.core.insert(&self.smr, ctx, key)
    }

    fn remove(&self, ctx: &mut S::ThreadCtx, key: u64) -> bool {
        self.core.remove(&self.smr, ctx, key)
    }

    fn size(&self, ctx: &mut S::ThreadCtx) -> usize {
        self.core.count(&self.smr, ctx)
    }

    fn name() -> &'static str {
        "hm-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{disjoint_key_stress, model_check};
    use nbr::NbrPlus;
    use smr_baselines::{Debra, HazardPointers, Leaky};
    use std::sync::Arc;

    #[test]
    fn sequential_basics_restart_variant() {
        let list = HmList::<NbrPlus>::new(SmrConfig::for_tests());
        let mut ctx = list.smr().register(0);
        assert!(list.insert(&mut ctx, 4));
        assert!(list.insert(&mut ctx, 2));
        assert!(!list.insert(&mut ctx, 2));
        assert!(list.contains(&mut ctx, 2));
        assert!(list.remove(&mut ctx, 2));
        assert!(!list.contains(&mut ctx, 2));
        assert_eq!(list.size(&mut ctx), 1);
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn sequential_basics_norestart_variant() {
        let list =
            HmList::<Debra>::with_policy(SmrConfig::for_tests(), RestartPolicy::ContinueFromPred);
        assert_eq!(list.policy(), RestartPolicy::ContinueFromPred);
        let mut ctx = list.smr().register(0);
        for k in 1..=32u64 {
            assert!(list.insert(&mut ctx, k));
        }
        for k in (1..=32u64).step_by(2) {
            assert!(list.remove(&mut ctx, k));
        }
        assert_eq!(list.size(&mut ctx), 16);
        list.smr().unregister(&mut ctx);
    }

    #[test]
    fn model_check_restart_under_nbr_plus() {
        let list = HmList::<NbrPlus>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 11);
    }

    #[test]
    fn model_check_restart_under_hp() {
        let list = HmList::<HazardPointers>::new(SmrConfig::for_tests());
        model_check(&list, 4_000, 64, 12);
    }

    #[test]
    fn model_check_norestart_under_debra() {
        let list =
            HmList::<Debra>::with_policy(SmrConfig::for_tests(), RestartPolicy::ContinueFromPred);
        model_check(&list, 4_000, 64, 13);
    }

    #[test]
    fn model_check_norestart_under_leaky() {
        let list =
            HmList::<Leaky>::with_policy(SmrConfig::for_tests(), RestartPolicy::ContinueFromPred);
        model_check(&list, 4_000, 64, 14);
    }

    #[test]
    fn concurrent_disjoint_stress_restart_nbr_plus() {
        let list = Arc::new(HmList::<NbrPlus>::new(SmrConfig::for_tests()));
        disjoint_key_stress(list, 4, 3_000);
    }

    #[test]
    fn concurrent_disjoint_stress_norestart_debra() {
        let list = Arc::new(HmList::<Debra>::with_policy(
            SmrConfig::for_tests(),
            RestartPolicy::ContinueFromPred,
        ));
        disjoint_key_stress(list, 4, 3_000);
    }
}
