//! Harris-Michael hash map throughput under the three operation mixes, one
//! Criterion series per reclaimer. Short per-bucket chains make this the
//! opposite regime from the long-traversal lists: protection-per-hop schemes
//! (HP, IBR, HE/WFE) close most of their gap here, so the figure brackets
//! the traversal-cost story from the other side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::HmHashMapFamily;
use smr_harness::WorkloadMix;

const KEY_RANGE: u64 = 8_192;

fn bench_hmhashmap(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    // One prefilled map per reclaimer, shared across the three mix groups
    // and every Criterion sample.
    let runners = helpers::prefilled_runners::<HmHashMapFamily>(KEY_RANGE, threads);
    for (mix, mix_label) in [
        (WorkloadMix::UPDATE_HEAVY, "50i-50d"),
        (WorkloadMix::BALANCED, "25i-25d"),
        (WorkloadMix::READ_HEAVY, "5i-5d"),
    ] {
        let mut group = c.benchmark_group(format!("fig_hmhashmap_{mix_label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for (kind, runner) in &runners {
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter_custom(|iters| {
                    let spec = helpers::spec_for_iters(mix, KEY_RANGE, threads, iters);
                    runner.run(&spec).duration
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hmhashmap);
criterion_main!(benches);
