//! The paper's worked example (Algorithm 3): the Harris lock-free list with
//! multiple read-write phases under NBR+, compared side by side with DEBRA and
//! hazard pointers on the exact same workload.
//!
//! This is the scenario Section 5.2 discusses: every search may perform
//! auxiliary unlink CASes (write phases) and then restart its read phase from
//! the head, so the structure exercises NBR's "(Φ_read Φ_write)+" pattern.
//!
//! Run with:
//! ```text
//! cargo run -p nbr-bench --release --example harris_list_nbr
//! ```

use smr_common::SmrConfig;
use smr_harness::families::HarrisListFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};
use std::time::Duration;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        2_000,
        threads,
        StopCondition::Duration(Duration::from_millis(400)),
    );
    let config = SmrConfig::default()
        .with_max_threads(threads + 4)
        .with_watermarks(1024, 256);

    println!("Harris list, 50% insert / 50% delete, key range 2000, {threads} threads\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "Mops/s", "retired", "freed", "unreclaimed", "signals"
    );
    for kind in [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Leaky,
    ] {
        let r = run_with::<HarrisListFamily>(kind, &spec, config.clone());
        println!(
            "{:<8} {:>10.3} {:>12} {:>12} {:>12} {:>10}",
            r.smr,
            r.mops,
            r.smr_totals.retires,
            r.smr_totals.frees,
            r.outstanding_garbage(),
            r.smr_totals.signals_sent
        );
    }
    println!("\nExpected shape (paper Fig. 7): NBR+ ≈ DEBRA ≫ HP; `none` is the upper bound;");
    println!("NBR+ and NBR keep `unreclaimed` bounded, the leaky scheme never frees anything.");
}
