//! Figures 4c and 4d (experiment E2): peak memory of the DGT tree under the
//! update-intensive workload, with one thread stalled inside an operation
//! (4c) and without (4d).
//!
//! This target is not a timing benchmark: it installs the counting global
//! allocator, runs one trial per reclaimer for each scenario and prints the
//! peak-live-heap table. Expected shape (paper): with a stalled thread the
//! unbounded schemes (DEBRA, QSBR, RCU) keep growing, while NBR+, HP and IBR
//! stay flat; without a stalled thread everyone is flat.

use smr_harness::experiments::{e2_peak_memory, ExperimentScale};
use smr_harness::report;

#[global_allocator]
static ALLOC: smr_harness::alloc_track::CountingAlloc = smr_harness::alloc_track::CountingAlloc;

fn main() {
    // `cargo bench` passes `--bench`; accept and ignore any arguments.
    let mut scale = ExperimentScale::quick();
    scale.thread_counts = vec![2];
    println!("Running E2 peak-memory experiment (this is a measurement, not a Criterion bench)\n");

    let stalled = e2_peak_memory(&scale, true);
    println!(
        "{}",
        report::to_table("Figure 4c — peak memory WITH one stalled thread", &stalled)
    );

    let unstalled = e2_peak_memory(&scale, false);
    println!(
        "{}",
        report::to_table("Figure 4d — peak memory with NO stalled thread", &unstalled)
    );

    // Headline check mirrored from the paper: bounded schemes must not blow up
    // when a thread stalls.
    let get = |rows: &[smr_harness::TrialResult], name: &str| {
        rows.iter()
            .find(|r| r.smr == name)
            .map(|r| r.outstanding_garbage())
            .unwrap_or(0)
    };
    let nbr_garbage = get(&stalled, "NBR+");
    let debra_garbage = get(&stalled, "DEBRA");
    println!(
        "unreclaimed records with a stalled thread: NBR+ = {nbr_garbage}, DEBRA = {debra_garbage}"
    );
    if debra_garbage > nbr_garbage {
        println!("OK: NBR+ bounds garbage while DEBRA does not (paper's E2 conclusion).");
    } else {
        println!("WARNING: expected DEBRA to accumulate more garbage than NBR+ in this scenario.");
    }
}
