//! Per-thread limbo bags (Algorithm 1, line 2).
//!
//! Each thread accumulates the records it has unlinked in a private
//! [`LimboBag`]. When the bag grows past the reclaimer's scan trigger (see
//! [`ScanPolicy`](crate::ScanPolicy)) the reclaimer runs its scan (signals +
//! reservation scan for NBR, epoch scan for DEBRA, hazard scan for HP, …) and
//! frees every record the scan proves safe.
//!
//! The bag is a *segmented batch list*: records live in fixed-capacity
//! segments, so the retire fast path never pays a reallocate-and-copy of the
//! whole bag, and a reclamation sweep compacts each segment in place instead
//! of allocating a fresh vector per scan (which the pre-segmented bag did on
//! every scan — a malloc/free pair plus a full copy of up to `HiWatermark`
//! records on the hottest path in the tree).
//!
//! The bag preserves retire order, which NBR+ relies on: a thread at the
//! LoWatermark bookmarks the current tail and may later free exactly the
//! prefix retired before the bookmark (Algorithm 2, lines 14/19). Segments are
//! kept in retire order and in-place compaction never reorders survivors.
//!
//! Reclamation is *sort-then-sweep*: the caller sorts its snapshot of the
//! announced protections once (hazard addresses, eras, or interval bounds) and
//! the sweep tests each retired record with a binary search — so the
//! interval-based schemes (IBR, HE) go from O(records × threads) per scan to
//! O((records + threads) · log threads), and the address-based schemes (HP,
//! NBR) keep their binary search without any per-record indirection.

use crate::recycle::Magazine;
use crate::retired::Retired;
use crate::stats::ThreadStats;

/// Records per segment. Large enough that segment allocation is amortized
/// over hundreds of retires, small enough that a partially reclaimed bag
/// returns memory to the allocator in useful chunks.
const SEGMENT_CAPACITY: usize = 256;

/// Capacity of the per-thread retire staging buffer (the `RetireBatch`):
/// 8 × 16-byte [`Retired`] entries — a cache-line-sized batch that amortizes
/// the segment bookkeeping and the flush-gated policy checks over eight
/// retires. Also the slack the robust garbage bounds gain when coalescing is
/// on: at most `RETIRE_BATCH_CAP - 1` records sit staged past a watermark
/// check, because the check that would trigger a scan runs on every flush.
pub const RETIRE_BATCH_CAP: usize = 8;

/// An ordered bag of retired records owned by a single thread.
pub struct LimboBag {
    /// Non-empty segments in retire order (older segments first). Each
    /// segment is filled exactly to its capacity before a new one is started,
    /// so pushes never reallocate an existing segment.
    segments: Vec<Vec<Retired>>,
    /// One empty segment buffer salvaged from the last sweep, reused by the
    /// next push that needs a segment — a sweep that empties the bag would
    /// otherwise free every buffer and the next retire burst would pay a
    /// fresh allocation per segment, putting malloc back on the very path
    /// the recycling pool takes it off.
    spare: Vec<Retired>,
    /// Total records held, staged entries included.
    len: usize,
    /// The `RetireBatch`: the newest retires, staged ahead of the segments
    /// until a flush moves them over. Always the suffix of the retire order,
    /// so flushing preserves order and prefix bookmarks taken from [`len`]
    /// stay valid across flushes.
    stage: Vec<Retired>,
    /// Flush threshold for [`stage`](LimboBag::stage); `1` disables staging
    /// (every record goes straight to the segments, as before coalescing).
    batch_cap: usize,
}

impl Default for LimboBag {
    fn default() -> Self {
        Self {
            segments: Vec::new(),
            spare: Vec::new(),
            len: 0,
            stage: Vec::new(),
            batch_cap: 1,
        }
    }
}

impl LimboBag {
    /// An empty bag with staging disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bag with room for `capacity` records (avoids growth in the
    /// retire fast path).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut segments = Vec::with_capacity(capacity.div_ceil(SEGMENT_CAPACITY).max(1));
        segments.push(Vec::with_capacity(capacity.clamp(1, SEGMENT_CAPACITY)));
        Self {
            segments,
            spare: Vec::new(),
            len: 0,
            stage: Vec::new(),
            batch_cap: 1,
        }
    }

    /// An empty bag whose [`stage`](LimboBag::stage) buffers up to
    /// `batch_cap` records before touching the segments. `batch_cap <= 1`
    /// disables staging entirely.
    pub fn with_batch(batch_cap: usize) -> Self {
        let batch_cap = batch_cap.max(1);
        Self {
            stage: Vec::with_capacity(if batch_cap > 1 { batch_cap } else { 0 }),
            batch_cap,
            ..Self::default()
        }
    }

    /// [`LimboBag::with_capacity`] combined with [`LimboBag::with_batch`].
    pub fn with_capacity_and_batch(capacity: usize, batch_cap: usize) -> Self {
        let batch_cap = batch_cap.max(1);
        Self {
            stage: Vec::with_capacity(if batch_cap > 1 { batch_cap } else { 0 }),
            batch_cap,
            ..Self::with_capacity(capacity)
        }
    }

    /// Appends a retired record (Algorithm 1, line 19) directly to the
    /// segments. Any staged records flush first so the bag's global retire
    /// order is preserved — orphan adoption pushes, for instance, must land
    /// after the adopter's own earlier (staged) retires.
    #[inline]
    pub fn push(&mut self, retired: Retired) {
        if !self.stage.is_empty() {
            self.flush_stage();
        }
        self.push_seg(retired);
        self.len += 1;
    }

    /// Stages a retired record in the `RetireBatch`, flushing to the
    /// segments when the batch fills. Returns `true` when a flush happened
    /// (immediately, with staging disabled) — the caller's cue to run its
    /// watermark/policy checks, which is what bounds the staged overshoot to
    /// `RETIRE_BATCH_CAP - 1` records.
    #[inline]
    pub fn stage(&mut self, retired: Retired) -> bool {
        if self.batch_cap <= 1 {
            self.push(retired);
            return true;
        }
        self.stage.push(retired);
        self.len += 1;
        if self.stage.len() >= self.batch_cap {
            self.flush_stage();
            true
        } else {
            false
        }
    }

    /// Moves every staged record into the segments, in retire order. Called
    /// on batch fill, and by every sweep/drain entry point so no staged
    /// record can be skipped by a scan or stranded at departure.
    pub fn flush_stage(&mut self) {
        if self.stage.is_empty() {
            return;
        }
        crate::check::preempt("limbo.flush-stage", 0);
        let mut staged = core::mem::take(&mut self.stage);
        for r in staged.drain(..) {
            self.push_seg(r);
        }
        // Keep the allocation for the next batch.
        self.stage = staged;
    }

    /// Records currently sitting in the staging buffer (diagnostics/tests).
    #[inline]
    pub fn staged_len(&self) -> usize {
        self.stage.len()
    }

    /// Segment append without touching `len` (shared by push and flush).
    #[inline]
    fn push_seg(&mut self, retired: Retired) {
        match self.segments.last_mut() {
            Some(seg) if seg.len() < seg.capacity() => seg.push(retired),
            _ => {
                let mut seg = if self.spare.capacity() > 0 {
                    core::mem::take(&mut self.spare)
                } else {
                    Vec::with_capacity(SEGMENT_CAPACITY)
                };
                seg.push(retired);
                self.segments.push(seg);
            }
        }
    }

    /// Number of unreclaimed records currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bag holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the held records in retire order, staged records last
    /// (used by interval-based scans that need eras rather than addresses).
    pub fn iter(&self) -> impl Iterator<Item = &Retired> {
        self.segments.iter().flatten().chain(self.stage.iter())
    }

    /// The core sweep: frees every record in the prefix `[0, up_to)` whose
    /// fate `decide` approves, compacting each segment in place so survivors
    /// (and the suffix past `up_to`) keep their retire order. Returns the
    /// number of records freed.
    ///
    /// # Safety
    /// The caller must guarantee that any record for which `decide` returns
    /// `true` is safe in the sense of Section 3: unlinked and unreachable from
    /// every thread's private pointers.
    unsafe fn sweep_prefix(
        &mut self,
        up_to: usize,
        mut decide: impl FnMut(&Retired) -> bool,
        mag: &mut Magazine,
    ) -> usize {
        // Staged records are part of `len` (watermark triggers count them),
        // so a sweep must see them in the segments: callers capture prefix
        // bookmarks from `len`, and the staged suffix flushes to exactly the
        // indices those bookmarks assume.
        self.flush_stage();
        let limit = up_to.min(self.len);
        if limit == 0 {
            return 0;
        }
        let mut freed = 0usize;
        let mut start = 0usize; // global index of the current segment's head
        for seg in &mut self.segments {
            let seg_len = seg.len();
            if start >= limit {
                break;
            }
            let seg_limit = (limit - start).min(seg_len);
            freed += compact_segment(seg, seg_limit, &mut decide, mag);
            start += seg_len;
        }
        self.len -= freed;
        let spare = &mut self.spare;
        self.segments.retain_mut(|s| {
            if s.is_empty() {
                // Salvage the largest emptied buffer for the next burst.
                if spare.capacity() < s.capacity() {
                    *spare = core::mem::take(s);
                }
                false
            } else {
                true
            }
        });
        freed
    }

    /// Frees every record in the prefix `[0, up_to)` whose fate `decide`
    /// approves, retaining (in order) the survivors and the suffix.
    ///
    /// `decide` receives each candidate and returns `true` if the record is
    /// *safe* to free now (not reserved / not protected / outside every active
    /// interval). Returns the number of records freed.
    ///
    /// # Safety
    /// The caller must guarantee that any record for which `decide` returns
    /// `true` is safe in the sense of Section 3: unlinked and unreachable from
    /// every thread's private pointers.
    pub unsafe fn reclaim_prefix_if(
        &mut self,
        up_to: usize,
        decide: impl FnMut(&Retired) -> bool,
        stats: &mut ThreadStats,
        mag: &mut Magazine,
    ) -> usize {
        let freed = self.sweep_prefix(up_to, decide, mag);
        stats.frees += freed as u64;
        freed
    }

    /// Frees every record in the bag whose fate `decide` approves.
    ///
    /// # Safety
    /// Same contract as [`LimboBag::reclaim_prefix_if`].
    pub unsafe fn reclaim_if(
        &mut self,
        decide: impl FnMut(&Retired) -> bool,
        stats: &mut ThreadStats,
        mag: &mut Magazine,
    ) -> usize {
        self.reclaim_prefix_if(usize::MAX, decide, stats, mag)
    }

    /// Frees every record in the prefix `[0, up_to)` whose address is absent
    /// from `reserved`, which **must be sorted** (binary search per record).
    /// This is the NBR/NBR+/HP sweep: one sorted snapshot of the announced
    /// reservations or hazards, swept against the batch in a single pass.
    ///
    /// # Safety
    /// `reserved` must contain every address a registered thread may still
    /// dereference; beyond that, same contract as
    /// [`LimboBag::reclaim_prefix_if`].
    pub unsafe fn reclaim_prefix_unreserved(
        &mut self,
        up_to: usize,
        reserved: &[usize],
        stats: &mut ThreadStats,
        mag: &mut Magazine,
    ) -> usize {
        debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
        let freed = self.sweep_prefix(
            up_to,
            |r| reserved.binary_search(&r.address()).is_err(),
            mag,
        );
        stats.frees += freed as u64;
        freed
    }

    /// Frees every record whose lifetime `[birth, retire]` is disjoint from
    /// every announced interval, given the interval **lower bounds and upper
    /// bounds each sorted separately** — the sweep both interval-based
    /// schemes share: IBR (2GEIBR) passes its announced `[lower, upper]`
    /// pairs, hazard eras the per-thread hull `[min slot era, max slot era]`.
    ///
    /// There is deliberately no point-era ("outside eras") sweep any more:
    /// sweeping announced eras as points instead of intervals frees records
    /// whose lifetimes fall *between* two of a traversing thread's
    /// announcements, which is unsound the moment a traversal follows a
    /// frozen pointer out of an unlinked record (the marked-chain race —
    /// DESIGN.md, "Traversals through unlinked records under the interval
    /// reclaimers").
    ///
    /// An interval `[lo, up]` overlaps `[birth, retire]` iff
    /// `lo ≤ retire ∧ up ≥ birth`. Since every valid interval has `lo ≤ up`,
    /// the intervals with `up < birth` are a subset of those with
    /// `lo ≤ retire`, so the overlap count is
    /// `|{lo ≤ retire}| − |{up < birth}|` — two binary searches per record
    /// instead of a walk over every announced interval.
    ///
    /// # Safety
    /// `lowers`/`uppers` must cover every interval announced by a registered
    /// thread at the scan's linearization point; same overall contract as
    /// [`LimboBag::reclaim_prefix_if`].
    pub unsafe fn reclaim_disjoint_intervals(
        &mut self,
        lowers: &[u64],
        uppers: &[u64],
        stats: &mut ThreadStats,
        mag: &mut Magazine,
    ) -> usize {
        debug_assert_eq!(lowers.len(), uppers.len());
        debug_assert!(lowers.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(uppers.windows(2).all(|w| w[0] <= w[1]));
        let freed = self.sweep_prefix(
            usize::MAX,
            |r| {
                let starts_at_or_before = lowers.partition_point(|&lo| lo <= r.retire_era());
                let ends_before = uppers.partition_point(|&up| up < r.birth_era());
                starts_at_or_before == ends_before
            },
            mag,
        );
        stats.frees += freed as u64;
        freed
    }

    /// Frees everything unconditionally. Used at shutdown, after all threads
    /// have deregistered (when every record is trivially safe), and by the
    /// leaky reclaimer's drop path in tests.
    ///
    /// # Safety
    /// No thread may still hold a reference to any record in the bag.
    pub unsafe fn reclaim_all(&mut self, stats: &mut ThreadStats, mag: &mut Magazine) -> usize {
        self.reclaim_if(|_| true, stats, mag)
    }

    /// Removes and returns all records without freeing them (ownership moves
    /// to the caller, e.g. a global pool at thread deregistration). Staged
    /// records flush first, so departure/unregister hand-offs that drain the
    /// bag can never strand a staged node.
    pub fn drain(&mut self) -> Vec<Retired> {
        self.flush_stage();
        self.len = 0;
        let mut out = Vec::new();
        for mut seg in self.segments.drain(..) {
            out.append(&mut seg);
        }
        out
    }
}

/// Compacts one segment in place: frees every record in `[0, limit)` that
/// `decide` approves, shifting survivors (and the suffix `[limit, len)`) left
/// without reordering. Returns the number of records freed.
///
/// `Retired` has no `Drop` glue (dropping one leaks rather than frees), so the
/// raw moves below are plain bit copies. The segment length is zeroed for the
/// duration of the sweep: if `decide` panics, the in-flight records leak —
/// which is safe — instead of being double-freed by an unwinding caller.
unsafe fn compact_segment(
    seg: &mut Vec<Retired>,
    limit: usize,
    decide: &mut impl FnMut(&Retired) -> bool,
    mag: &mut Magazine,
) -> usize {
    let len = seg.len();
    debug_assert!(limit <= len);
    let ptr = seg.as_mut_ptr();
    seg.set_len(0);
    let mut write = 0usize;
    for read in 0..len {
        let rec = ptr.add(read);
        if read < limit && decide(&*rec) {
            core::ptr::read(rec).reclaim_into(mag);
        } else {
            if write != read {
                core::ptr::copy_nonoverlapping(rec, ptr.add(write), 1);
            }
            write += 1;
        }
    }
    seg.set_len(write);
    len - write
}

impl core::fmt::Debug for LimboBag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LimboBag")
            .field("len", &self.len)
            .field("segments", &self.segments.len())
            .field("staged", &self.stage.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;
    use crate::recycle::alloc_node_raw;

    struct N {
        header: NodeHeader,
        #[allow(dead_code)]
        k: u64,
    }
    crate::impl_smr_node!(N);

    fn retire_one(k: u64, era: u64) -> Retired {
        let raw = alloc_node_raw(N {
            header: NodeHeader::new(),
            k,
        });
        unsafe { Retired::new(raw, era) }
    }

    fn retire_interval(k: u64, birth: u64, retire: u64) -> Retired {
        let mut node = N {
            header: NodeHeader::new(),
            k,
        };
        use crate::header::SmrNode;
        node.header_mut().set_birth_era(birth);
        let raw = alloc_node_raw(node);
        unsafe { Retired::new(raw, retire) }
    }

    #[test]
    fn push_and_len() {
        let mut bag = LimboBag::with_capacity(4);
        assert!(bag.is_empty());
        for i in 0..4 {
            bag.push(retire_one(i, i));
        }
        assert_eq!(bag.len(), 4);
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
        assert_eq!(stats.frees, 4);
        assert!(bag.is_empty());
    }

    #[test]
    fn reclaim_prefix_respects_bookmark_and_reservations() {
        let mut bag = LimboBag::new();
        let mut addrs = Vec::new();
        for i in 0..6 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.push(r);
        }
        let reserved = addrs[1];
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // Bookmark at 4: only records 0..4 are candidates; record 1 is reserved.
        let freed =
            unsafe { bag.reclaim_prefix_if(4, |r| r.address() != reserved, &mut stats, &mut mag) };
        assert_eq!(freed, 3);
        assert_eq!(bag.len(), 3); // reserved survivor + 2 past the bookmark
        assert_eq!(stats.frees, 3);
        // Survivors keep their order: reserved record first, then the suffix.
        let remaining: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(remaining, vec![addrs[1], addrs[4], addrs[5]]);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn reclaim_if_scans_entire_bag() {
        let mut bag = LimboBag::new();
        for i in 0..10 {
            bag.push(retire_one(i, i));
        }
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        let freed = unsafe { bag.reclaim_if(|r| r.retire_era() % 2 == 0, &mut stats, &mut mag) };
        assert_eq!(freed, 5);
        assert_eq!(bag.len(), 5);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
        assert_eq!(stats.frees, 10);
    }

    #[test]
    fn drain_transfers_ownership_without_freeing() {
        let mut bag = LimboBag::new();
        for i in 0..3 {
            bag.push(retire_one(i, i));
        }
        let drained = bag.drain();
        assert_eq!(drained.len(), 3);
        assert!(bag.is_empty());
        let mut stats = ThreadStats::default();
        for r in drained {
            unsafe { r.reclaim() };
            stats.frees += 1;
        }
        assert_eq!(stats.frees, 3);
    }

    #[test]
    fn segmented_push_crosses_segment_boundaries_in_order() {
        let mut bag = LimboBag::new();
        let n = SEGMENT_CAPACITY * 2 + 17;
        let mut addrs = Vec::new();
        for i in 0..n {
            let r = retire_one(i as u64, i as u64);
            addrs.push(r.address());
            bag.push(r);
        }
        assert_eq!(bag.len(), n);
        assert!(bag.segments.len() >= 3);
        let seen: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(seen, addrs, "retire order must survive segmentation");
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // Free every third record across segment boundaries; survivors stay
        // ordered.
        let victims: Vec<usize> = addrs.iter().copied().step_by(3).collect();
        let freed =
            unsafe { bag.reclaim_if(|r| victims.contains(&r.address()), &mut stats, &mut mag) };
        assert_eq!(freed, victims.len());
        let survivors: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        let expect: Vec<usize> = addrs
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, a)| a)
            .collect();
        assert_eq!(survivors, expect);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
        assert_eq!(stats.frees as usize, n);
    }

    #[test]
    fn reclaim_prefix_unreserved_uses_sorted_addresses() {
        let mut bag = LimboBag::new();
        let mut addrs = Vec::new();
        for i in 0..8 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.push(r);
        }
        let mut reserved = vec![addrs[2], addrs[5], addrs[7]];
        reserved.sort_unstable();
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // Prefix of 6: records 0..6 except the reserved 2 and 5 are freed;
        // 6, 7 lie past the bookmark.
        let freed = unsafe { bag.reclaim_prefix_unreserved(6, &reserved, &mut stats, &mut mag) };
        assert_eq!(freed, 4);
        let survivors: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(survivors, vec![addrs[2], addrs[5], addrs[6], addrs[7]]);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    /// The hazard-eras hull sweep is the interval sweep with degenerate
    /// (single-era) hulls allowed: a point hull pins exactly the lifetimes
    /// containing it, and a record strictly *between* two hulls is freed.
    #[test]
    fn degenerate_hulls_behave_like_point_eras() {
        let mut bag = LimboBag::new();
        // Lifetimes: [0,1] [2,4] [5,5] [3,8] [9,10]
        for &(k, b, r) in &[(0, 0, 1), (1, 2, 4), (2, 5, 5), (3, 3, 8), (4, 9, 10)] {
            bag.push(retire_interval(k, b, r));
        }
        // Two single-era hulls: [4,4] and [9,9].
        let bounds = vec![4, 9];
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // Era 4 pins [2,4] and [3,8]; era 9 pins [9,10]. [0,1] and [5,5] free.
        let freed =
            unsafe { bag.reclaim_disjoint_intervals(&bounds, &bounds, &mut stats, &mut mag) };
        assert_eq!(freed, 2);
        let remaining: Vec<(u64, u64)> = bag
            .iter()
            .map(|r| (r.birth_era(), r.retire_era()))
            .collect();
        assert_eq!(remaining, vec![(2, 4), (3, 8), (9, 10)]);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn staging_counts_toward_len_and_flushes_on_fill() {
        let mut bag = LimboBag::with_batch(RETIRE_BATCH_CAP);
        let mut addrs = Vec::new();
        for i in 0..RETIRE_BATCH_CAP - 1 {
            let r = retire_one(i as u64, i as u64);
            addrs.push(r.address());
            assert!(!bag.stage(r), "batch must not flush before it fills");
        }
        assert_eq!(bag.len(), RETIRE_BATCH_CAP - 1);
        assert_eq!(bag.staged_len(), RETIRE_BATCH_CAP - 1);
        let r = retire_one(99, 99);
        addrs.push(r.address());
        assert!(bag.stage(r), "the filling record must flush the batch");
        assert_eq!(bag.staged_len(), 0);
        assert_eq!(bag.len(), RETIRE_BATCH_CAP);
        let seen: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(seen, addrs, "flush must preserve retire order");
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn stage_with_batch_cap_one_behaves_like_push() {
        let mut bag = LimboBag::with_batch(1);
        for i in 0..3 {
            assert!(bag.stage(retire_one(i, i)), "cap 1: every stage flushes");
        }
        assert_eq!(bag.staged_len(), 0);
        assert_eq!(bag.len(), 3);
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn push_after_staging_flushes_first_to_keep_order() {
        let mut bag = LimboBag::with_batch(RETIRE_BATCH_CAP);
        let mut addrs = Vec::new();
        for i in 0..3 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.stage(r);
        }
        // An orphan-adoption-style direct push: the staged suffix must land
        // before it.
        let orphan = retire_one(50, 50);
        addrs.push(orphan.address());
        bag.push(orphan);
        assert_eq!(bag.staged_len(), 0);
        let seen: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(seen, addrs);
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn sweeps_and_drain_observe_staged_records() {
        let mut bag = LimboBag::with_batch(RETIRE_BATCH_CAP);
        for i in 0..4 {
            bag.stage(retire_one(i, i));
        }
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // A full-bag sweep must flush and free the staged records.
        let freed = unsafe { bag.reclaim_if(|_| true, &mut stats, &mut mag) };
        assert_eq!(freed, 4);
        assert!(bag.is_empty());

        for i in 0..3 {
            bag.stage(retire_one(i, i));
        }
        let drained = bag.drain();
        assert_eq!(drained.len(), 3, "drain must not strand staged records");
        assert!(bag.is_empty());
        for r in drained {
            unsafe { r.reclaim() };
        }
    }

    #[test]
    fn prefix_bookmark_taken_over_staged_records_stays_valid() {
        // NBR+'s bookmark is an index into the retire order captured from
        // `len()`; flushing the staged suffix must keep it pointing at the
        // same records.
        let mut bag = LimboBag::with_batch(RETIRE_BATCH_CAP);
        let mut addrs = Vec::new();
        for i in 0..5 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.stage(r);
        }
        let bookmark = bag.len(); // 5, of which 5 staged
        for i in 5..10 {
            let r = retire_one(i, i);
            addrs.push(r.address());
            bag.stage(r);
        }
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        let freed = unsafe { bag.reclaim_prefix_if(bookmark, |_| true, &mut stats, &mut mag) };
        assert_eq!(freed, 5);
        let survivors: Vec<usize> = bag.iter().map(|r| r.address()).collect();
        assert_eq!(survivors, addrs[5..].to_vec());
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }

    #[test]
    fn reclaim_disjoint_intervals_matches_linear_check() {
        let mut bag = LimboBag::new();
        // Lifetimes: [0,1] [2,4] [6,7] [3,8] [12,14]
        for &(k, b, r) in &[(0, 0, 1), (1, 2, 4), (2, 6, 7), (3, 3, 8), (4, 12, 14)] {
            bag.push(retire_interval(k, b, r));
        }
        // Announced intervals (already per-bound sorted): [3,5] and [9,13].
        let lowers = vec![3, 9];
        let uppers = vec![5, 13];
        let mut stats = ThreadStats::default();
        let mut mag = Magazine::disabled();
        // [3,5] overlaps [2,4] and [3,8]; [9,13] overlaps [12,14].
        // [0,1] and [6,7] are disjoint from both and must be freed.
        let freed =
            unsafe { bag.reclaim_disjoint_intervals(&lowers, &uppers, &mut stats, &mut mag) };
        assert_eq!(freed, 2);
        let remaining: Vec<(u64, u64)> = bag
            .iter()
            .map(|r| (r.birth_era(), r.retire_era()))
            .collect();
        assert_eq!(remaining, vec![(2, 4), (3, 8), (12, 14)]);
        unsafe { bag.reclaim_all(&mut stats, &mut mag) };
    }
}
