//! Type-erased retired records.
//!
//! When a data structure unlinks a node it calls [`Smr::retire`](crate::Smr::retire);
//! the reclaimer wraps the node in a [`Retired`] — a type-erased
//! destroy-and-recycle function plus the metadata reclaimers need (the
//! record's address for hazard/reservation comparison, its birth/retire eras
//! for interval-based schemes) — and
//! stashes it in a per-thread [`LimboBag`](crate::LimboBag) until it is
//! proven *safe* (Section 3 of the paper: unlinked and referenced by no
//! thread).

use crate::header::SmrNode;
use crate::recycle::{node_layout, Magazine};

/// A retired (unlinked, not yet reclaimed) record awaiting safe destruction.
///
/// Dropping a `Retired` does **not** free the record (that would make it far
/// too easy to cause a use-after-free by accident); records are only freed by
/// the explicit, `unsafe` [`Retired::reclaim`] / [`Retired::reclaim_into`].
/// A `Retired` that is never reclaimed is a memory leak, which is safe.
pub struct Retired {
    ptr: *mut u8,
    /// Type-erased destructor-and-free: runs `drop_in_place`, then returns
    /// the block to the given magazine (or the global allocator when `None`).
    /// The node-heap-ABI layout is *not* stored per record — it is a pure
    /// function of the erased type, so the monomorphized [`destroy_erased`]
    /// recomputes it for free and `Retired` stays at 32 bytes (limbo bags
    /// hold up to a HiWatermark of these, and the sweep copies survivors).
    destroy_fn: unsafe fn(*mut u8, Option<&mut Magazine>),
    birth_era: u64,
    retire_era: u64,
}

// SAFETY: a retired record is exclusively owned by the limbo bag holding
// it; the underlying node type is required to be `Send` by `SmrNode`.
unsafe impl Send for Retired {}

unsafe fn destroy_erased<T: SmrNode>(ptr: *mut u8, mag: Option<&mut Magazine>) {
    // The single reclamation funnel: the owning scheme's scan just declared
    // this record safe, which is exactly what the shadow-heap oracle checks
    // against every thread's standing protection claims.
    crate::check::on_reclaim(ptr as usize);
    core::ptr::drop_in_place(ptr.cast::<T>());
    match mag {
        Some(mag) => mag.release(ptr, node_layout::<T>()),
        None => std::alloc::dealloc(ptr, node_layout::<T>()),
    }
}

impl Retired {
    /// Wraps an unlinked node for deferred destruction.
    ///
    /// # Safety
    /// `ptr` must point to a valid node of type `T` allocated with the
    /// node-heap ABI ([`Smr::alloc`](crate::Smr::alloc) or
    /// [`recycle::alloc_node_raw`](crate::recycle::alloc_node_raw)) that has
    /// been unlinked from the data structure and will not be retired again
    /// (single-retire rule, Lemma 10 of the paper).
    pub unsafe fn new<T: SmrNode>(ptr: *mut T, retire_era: u64) -> Self {
        debug_assert!(!ptr.is_null());
        let birth_era = (*ptr).header().birth_era();
        crate::check::on_retire(ptr as usize, birth_era, retire_era);
        Self {
            ptr: ptr.cast(),
            destroy_fn: destroy_erased::<T>,
            birth_era,
            retire_era,
        }
    }

    /// The record's address, used to compare against hazard pointers /
    /// NBR reservations.
    #[inline]
    pub fn address(&self) -> usize {
        self.ptr as usize
    }

    /// Era at which the record was allocated (from its [`NodeHeader`](crate::NodeHeader)).
    #[inline]
    pub fn birth_era(&self) -> u64 {
        self.birth_era
    }

    /// Era at which the record was retired.
    #[inline]
    pub fn retire_era(&self) -> u64 {
        self.retire_era
    }

    /// Destroys the record, returning its memory to the global allocator.
    ///
    /// # Safety
    /// The caller must have established that the record is *safe*: it is
    /// unlinked and no thread can still dereference a pointer to it (this is
    /// precisely what each SMR algorithm's scan establishes).
    #[inline]
    pub unsafe fn reclaim(self) {
        (self.destroy_fn)(self.ptr, None);
    }

    /// Destroys the record and hands its block to `mag` for recycling (which
    /// falls back to the global allocator when recycling is disabled or the
    /// block's layout is not pooled).
    ///
    /// # Safety
    /// Same contract as [`Retired::reclaim`].
    #[inline]
    pub unsafe fn reclaim_into(self, mag: &mut Magazine) {
        (self.destroy_fn)(self.ptr, Some(mag));
    }
}

impl core::fmt::Debug for Retired {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Retired")
            .field("address", &format_args!("{:#x}", self.address()))
            .field("birth_era", &self.birth_era)
            .field("retire_era", &self.retire_era)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;
    use crate::recycle::{alloc_node_raw, free_node_raw};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Probe {
        header: NodeHeader,
        _payload: Arc<()>,
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    crate::impl_smr_node!(Probe);

    #[test]
    fn reclaim_runs_destructor_exactly_once() {
        DROPS.store(0, Ordering::SeqCst);
        let payload = Arc::new(());
        let mut node = Probe {
            header: NodeHeader::new(),
            _payload: Arc::clone(&payload),
        };
        node.header_mut().set_birth_era(3);
        let raw = alloc_node_raw(node);
        let retired = unsafe { Retired::new(raw, 9) };
        assert_eq!(retired.address(), raw as usize);
        assert_eq!(retired.birth_era(), 3);
        assert_eq!(retired.retire_era(), 9);
        assert_eq!(Arc::strong_count(&payload), 2);
        unsafe { retired.reclaim() };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn dropping_retired_does_not_free() {
        DROPS.store(0, Ordering::SeqCst);
        let node = Probe {
            header: NodeHeader::new(),
            _payload: Arc::new(()),
        };
        let raw = alloc_node_raw(node);
        let retired = unsafe { Retired::new(raw, 0) };
        let _ = retired;
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "drop must not reclaim");
        // Clean up manually so the test itself does not leak.
        unsafe { free_node_raw(raw) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reclaim_into_recycles_the_block() {
        use crate::recycle::BlockPool;
        use crate::smr::SmrConfig;
        DROPS.store(0, Ordering::SeqCst);
        let config = SmrConfig::for_tests();
        let pool = BlockPool::from_config(&config);
        let mut mag = Magazine::from_config(&pool, &config);
        let raw = alloc_node_raw(Probe {
            header: NodeHeader::new(),
            _payload: Arc::new(()),
        });
        let addr = raw as usize;
        let retired = unsafe { Retired::new(raw, 0) };
        unsafe { retired.reclaim_into(&mut mag) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "dtor runs before pooling");
        assert_eq!(mag.recycled(), 1);
        // The very next allocation of the same class reuses the block.
        let p = mag.alloc_node(Probe {
            header: NodeHeader::new(),
            _payload: Arc::new(()),
        });
        assert_eq!(p as usize, addr);
        unsafe { free_node_raw(p) };
    }
}
