//! The [`Smr`] trait — the single interface every reclaimer implements and
//! every data structure is instrumented against.
//!
//! The hook set is the union of what the reclaimers compared in the paper
//! need (Section 2's taxonomy):
//!
//! | family | hooks used |
//! |---|---|
//! | EBR family (DEBRA, QSBR, RCU) | `begin_op` / `end_op`, `retire` |
//! | interval family (IBR 2GEIBR, HE) | `begin_op`/`end_op`, `protect`, `retire`, birth eras |
//! | hazard pointers | `protect` / `clear_protections`, `retire` |
//! | **NBR / NBR+** | `begin_read_phase` / `checkpoint` / `end_read_phase`, `retire` |
//! | leaky (none) | nothing |
//!
//! Hooks a reclaimer does not need default to inlined no-ops, so the same
//! data-structure source compiles down to per-reclaimer specialized code via
//! monomorphization (no virtual dispatch in the hot loop).

use crate::atomic::{Atomic, Shared};
use crate::header::SmrNode;
use crate::recycle::{self, Magazine};
use crate::stats::ThreadStats;
use std::sync::atomic::Ordering;

/// Tuning knobs shared by all reclaimers.
///
/// Defaults are scaled for the small CI machines this reproduction runs on;
/// the paper's original values are noted per field.
#[derive(Debug, Clone)]
pub struct SmrConfig {
    /// Maximum number of concurrently registered threads (`N` in Algorithm 1).
    pub max_threads: usize,
    /// Maximum records a thread reserves before a write phase (`R`). The paper
    /// observes at most 3 for its data structures; the (a,b)-tree substitute
    /// needs up to 4 (parent, leaf, sibling, spare).
    pub max_reservations: usize,
    /// Hazard-pointer slots per thread (HP / HE).
    pub hazards_per_thread: usize,
    /// Limbo-bag HiWatermark (`S`): retire triggers a reclamation scan once the
    /// bag reaches this size. Paper: 32 768; scaled default: 1 024.
    pub hi_watermark: usize,
    /// NBR+ LoWatermark: once the bag reaches this size the thread starts
    /// watching for relaxed grace periods. Paper: half/quarter of Hi.
    pub lo_watermark: usize,
    /// EBR/IBR: operations between epoch-advance attempts.
    pub epoch_freq: usize,
    /// EBR/IBR: retires between empty (reclaim) attempts.
    pub empty_freq: usize,
    /// Cooperative neutralization: bounded number of spin iterations a
    /// reclaimer waits for acknowledgements before conceding the round
    /// (substitution S1 in DESIGN.md).
    pub ack_spin_limit: usize,
    /// Simulated cost of delivering one neutralization signal, in nanoseconds.
    /// Models the user↔kernel transition of a real POSIX signal so the
    /// NBR-vs-NBR+ signal-count trade-off remains measurable. 0 disables it.
    pub signal_cost_ns: u64,
    /// Operation-exit heartbeat: a thread holding any unreclaimed garbage
    /// runs one reclamation scan every this many completed operations, so
    /// short-lived threads return memory even when they never reach the
    /// HiWatermark (see [`ScanPolicy`](crate::ScanPolicy)). 0 disables the
    /// heartbeat (restoring the paper's fixed-watermark behaviour).
    pub scan_heartbeat_ops: usize,
    /// Recycle reclaimed node blocks through the thread-local magazines +
    /// shared depot of [`recycle`](crate::recycle) instead of returning them
    /// to the global allocator (`--no-recycle` in the bench bins turns this
    /// off for A/B comparisons).
    pub recycle: bool,
    /// Maximum free blocks a thread's magazine holds per size class before
    /// spilling half to the shared depot (which itself holds up to
    /// `magazine_cap × max_threads + 2 × hi_watermark` blocks per class —
    /// steady-state circulation plus one full reclamation burst).
    pub magazine_cap: usize,
    /// Tier-1 telemetry: time reclamation scans, ping handshakes and helping
    /// slow paths into the per-thread latency histograms
    /// ([`telemetry`](crate::telemetry)). These sit off the operation fast
    /// path, but `false` bypasses even their clock reads — the same-binary
    /// A/B the bench bins use (`--no-telemetry`) to prove tier 1 costs
    /// nothing measurable.
    pub telemetry: bool,
    /// Retire coalescing: stage retires in a per-thread cache-line-sized
    /// `RetireBatch` (see [`RETIRE_BATCH_CAP`](crate::limbo::RETIRE_BATCH_CAP))
    /// and run the watermark/policy checks only on flush. `false` restores
    /// the one-record-per-retire path (`--ab-arm no-coalesce` in the bench).
    pub coalesce: bool,
    /// Flat-combined scan publication: when a scan triggers while a peer's
    /// scan is mid-flight in the same ping domain, publish this thread's
    /// limbo to a combiner slot and let the active scanner sweep it in the
    /// same ping round instead of stacking a second ping storm. Only the
    /// ping-based schemes (NBR, NBR+, EpochPOP, HP-POP, WFE) consult this.
    pub combine: bool,
    /// Epoch-stamped lookup memo: lets the `ds` crate cache Zipf-hot lookup
    /// results keyed by [`Smr::validation_stamp`]. Schemes whose clock
    /// cannot validate a cached pointer (see that method) ignore this flag
    /// and keep returning `None`.
    pub memo: bool,
}

impl Default for SmrConfig {
    fn default() -> Self {
        Self {
            max_threads: 64,
            max_reservations: 8,
            hazards_per_thread: 8,
            hi_watermark: 1024,
            lo_watermark: 256,
            epoch_freq: 32,
            empty_freq: 64,
            ack_spin_limit: 4096,
            signal_cost_ns: 0,
            scan_heartbeat_ops: 1024,
            recycle: true,
            magazine_cap: 128,
            telemetry: true,
            coalesce: true,
            combine: true,
            memo: true,
        }
    }
}

impl SmrConfig {
    /// Config sized for unit tests: tiny bags so reclamation paths are hit
    /// constantly.
    pub fn for_tests() -> Self {
        Self {
            max_threads: 16,
            max_reservations: 4,
            hazards_per_thread: 4,
            hi_watermark: 32,
            lo_watermark: 8,
            epoch_freq: 4,
            empty_freq: 8,
            ack_spin_limit: 1 << 14,
            signal_cost_ns: 0,
            scan_heartbeat_ops: 64,
            recycle: true,
            magazine_cap: 8,
            telemetry: true,
            coalesce: true,
            combine: true,
            memo: true,
        }
    }

    /// Builder-style setter for [`SmrConfig::max_threads`].
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Builder-style setter for the Hi/Lo watermarks.
    pub fn with_watermarks(mut self, hi: usize, lo: usize) -> Self {
        assert!(lo <= hi, "LoWatermark must not exceed HiWatermark");
        self.hi_watermark = hi;
        self.lo_watermark = lo;
        self
    }

    /// Builder-style setter for [`SmrConfig::max_reservations`].
    pub fn with_max_reservations(mut self, r: usize) -> Self {
        self.max_reservations = r;
        self
    }

    /// Builder-style setter for [`SmrConfig::signal_cost_ns`].
    pub fn with_signal_cost_ns(mut self, ns: u64) -> Self {
        self.signal_cost_ns = ns;
        self
    }

    /// Builder-style setter for [`SmrConfig::scan_heartbeat_ops`]
    /// (0 disables the operation-exit heartbeat).
    pub fn with_scan_heartbeat_ops(mut self, ops: usize) -> Self {
        self.scan_heartbeat_ops = ops;
        self
    }

    /// Builder-style setter for [`SmrConfig::recycle`] (false bypasses the
    /// block pool entirely, restoring plain global-allocator behaviour).
    pub fn with_recycle(mut self, recycle: bool) -> Self {
        self.recycle = recycle;
        self
    }

    /// Builder-style setter for [`SmrConfig::magazine_cap`].
    pub fn with_magazine_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "magazine capacity must be positive");
        self.magazine_cap = cap;
        self
    }

    /// Builder-style setter for [`SmrConfig::telemetry`] (false bypasses the
    /// tier-1 latency histograms' clock reads).
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style setter for the EBR/IBR frequencies.
    pub fn with_epoch_freqs(mut self, epoch_freq: usize, empty_freq: usize) -> Self {
        self.epoch_freq = epoch_freq.max(1);
        self.empty_freq = empty_freq.max(1);
        self
    }

    /// Builder-style setter for [`SmrConfig::coalesce`].
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Builder-style setter for [`SmrConfig::combine`].
    pub fn with_combine(mut self, combine: bool) -> Self {
        self.combine = combine;
        self
    }

    /// Builder-style setter for [`SmrConfig::memo`].
    pub fn with_memo(mut self, memo: bool) -> Self {
        self.memo = memo;
        self
    }

    /// Staging capacity the schemes hand to
    /// [`LimboBag::with_batch`](crate::LimboBag::with_batch):
    /// [`RETIRE_BATCH_CAP`](crate::limbo::RETIRE_BATCH_CAP) when coalescing
    /// is on, 1 (staging disabled) otherwise.
    pub fn retire_batch_cap(&self) -> usize {
        if self.coalesce {
            crate::limbo::RETIRE_BATCH_CAP
        } else {
            1
        }
    }

    /// Validates internal consistency (used by constructors).
    pub fn validate(&self) {
        assert!(self.max_threads > 0);
        assert!(self.magazine_cap > 0, "magazine capacity must be positive");
        assert!(self.lo_watermark <= self.hi_watermark);
        assert!(
            self.max_reservations * self.max_threads
                < self.hi_watermark.max(1) * self.max_threads.max(1) + self.hi_watermark,
            "total reservations must be smaller than limbo capacity (Section 4.4)"
        );
    }
}

/// A safe-memory-reclamation algorithm.
///
/// # Integration contract (mirrors Section 4.1 of the paper)
///
/// A data-structure operation instrumented for this trait has the shape:
///
/// ```text
/// begin_op();
/// 'restart: loop {
///     begin_read_phase();                 // Φ_read begins (NBR checkpoint 0)
///     …traverse, calling protect()/checkpoint() per pointer hop…
///     if checkpoint() { continue 'restart }   // neutralized → restart from root
///     end_read_phase(&[r1, r2, …]);       // reserve records for Φ_write
///     …Φ_write: lock/validate/CAS only the reserved records…
///     retire(unlinked);                   // for every unlinked record
///     break;
/// }
/// clear_protections();
/// end_op();
/// ```
///
/// # Safety
/// Implementations promise that [`Smr::retire`]d records are freed only when no
/// registered thread can still dereference them, *provided* the data structure
/// obeys the phase rules above (the per-method docs state each side's
/// obligations). That is exactly the reader/writer/reclaimer handshake argument
/// of Section 6.
pub trait Smr: Send + Sync + Sized + 'static {
    /// Per-thread mutable context (limbo bag, counters, cached slot pointers).
    type ThreadCtx: Send;

    /// Human-readable algorithm name (used in benchmark output).
    const NAME: &'static str;

    /// True for reclaimers that implement the NBR phase protocol; data
    /// structures may use it to skip work that only matters for NBR (none do
    /// today — the hooks are free for the others — but the harness reports it).
    const USES_PHASES: bool = false;

    /// True for reclaimers that require per-access protection (HP/IBR/HE).
    const USES_PROTECTION: bool = false;

    /// Whether it is safe to follow a pointer read out of an *unlinked*
    /// (but not yet reclaimed) record.
    ///
    /// Epoch/era-based schemes (EBR family, NBR — within a read phase)
    /// allow this: the whole chain is quiesced together. The interval
    /// schemes (IBR, hazard eras with the era-hull scan) allow it too: the
    /// contiguous announced interval pins every record on a frozen marked
    /// chain, including lifetimes lying strictly between two access eras
    /// (DESIGN.md, "Traversals through unlinked records under the interval
    /// reclaimers"). Address-validation protection (HP, HP-POP) cannot: the
    /// pointee may have been retired and freed *before the pointer was ever
    /// loaded*, and the validating re-read targets a frozen field that
    /// still holds the stale pointer. Data structures whose traversals can
    /// pass through unlinked records (e.g. the Harris list's marked chains)
    /// consult this flag and fall back to unlinking one record at a time —
    /// exactly the applicability distinction Table 1 of the paper draws.
    const CAN_TRAVERSE_UNLINKED: bool = true;

    /// Creates the shared state for up to `config.max_threads` threads.
    fn new(config: SmrConfig) -> Self;

    /// The configuration this instance was created with.
    fn config(&self) -> &SmrConfig;

    /// Registers the calling thread under slot `tid` (distinct per thread,
    /// `< config.max_threads`), returning its thread context.
    fn register(&self, tid: usize) -> Self::ThreadCtx;

    /// Deregisters a thread. Remaining limbo records are either handed to the
    /// shared pool or freed if provably safe; the context's counters remain
    /// readable afterwards.
    fn unregister(&self, ctx: &mut Self::ThreadCtx);

    // ------------------------------------------------------------------
    // Operation brackets (EBR / QSBR / RCU / IBR / HE).
    // ------------------------------------------------------------------

    /// Marks the start of a data-structure operation.
    #[inline]
    fn begin_op(&self, _ctx: &mut Self::ThreadCtx) {}

    /// Marks the end of a data-structure operation (quiescent from here on).
    #[inline]
    fn end_op(&self, _ctx: &mut Self::ThreadCtx) {}

    // ------------------------------------------------------------------
    // NBR phase protocol.
    // ------------------------------------------------------------------

    /// Begins a read phase (Φ_read). For NBR this clears the thread's
    /// reservations and makes it *restartable* (Algorithm 1, lines 6–9); it is
    /// also the point the operation restarts from when neutralized.
    #[inline]
    fn begin_read_phase(&self, _ctx: &mut Self::ThreadCtx) {}

    /// Ends the read phase, announcing the records the upcoming write phase
    /// will access (Algorithm 1, lines 10–13). After this call the thread is
    /// non-restartable and may freely access exactly the reserved records.
    #[inline]
    fn end_read_phase(&self, _ctx: &mut Self::ThreadCtx, _reservations: &[usize]) {}

    /// Neutralization checkpoint. Data structures call this after every shared
    /// pointer load inside a read phase, **before** dereferencing the loaded
    /// pointer. Returns `true` when the operation must discard all pointers
    /// obtained in the current read phase and restart it from the root (the
    /// cooperative analogue of the `siglongjmp` in the paper's signal handler).
    #[inline]
    fn checkpoint(&self, _ctx: &mut Self::ThreadCtx) -> bool {
        false
    }

    // ------------------------------------------------------------------
    // Per-access protection (HP / IBR / HE).
    // ------------------------------------------------------------------

    /// Protects and loads a pointer from `src` using hazard slot `slot`.
    ///
    /// For hazard-pointer-style reclaimers this announces the pointer and
    /// validates it against `src` (retrying internally until stable); for
    /// era-based reclaimers it refreshes the announced era; for everything
    /// else it is a plain `Acquire` load.
    #[inline]
    fn protect<T: SmrNode>(
        &self,
        _ctx: &mut Self::ThreadCtx,
        _slot: usize,
        src: &Atomic<T>,
    ) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    /// Copies an existing protection into another slot.
    ///
    /// `ptr` must currently be protected via `src_slot` (or otherwise be
    /// immune from reclamation); hazard-pointer-style reclaimers re-announce it
    /// under `dst_slot` (no validation needed — a record cannot be freed while
    /// an existing announcement covers it), era-based reclaimers copy the
    /// announced era. Used by traversals that need to pin more than two nodes
    /// (e.g. `left` in the Harris list) without re-validating.
    ///
    /// **Relocation contract:** while a record is continuously held, it may
    /// be moved between slots (copied, then its source slot reused) **at
    /// most once**. The scanner-side defence against the copy/scan race (the
    /// double-collect pass in HP/HE — DESIGN.md, "Validate-after-copy for
    /// moved hazards") is provably sufficient for a single relocation but
    /// not for a record bounced between slots repeatedly while one scan
    /// runs; a structure that needs more relocations must re-validate via
    /// [`Smr::protect`] instead. Every workspace structure satisfies this
    /// (the Harris list promotes each node into the `left` slot once).
    #[inline]
    fn protect_copy<T: SmrNode>(
        &self,
        _ctx: &mut Self::ThreadCtx,
        _dst_slot: usize,
        _src_slot: usize,
        _ptr: Shared<T>,
    ) {
    }

    /// Clears all protection slots owned by the thread.
    #[inline]
    fn clear_protections(&self, _ctx: &mut Self::ThreadCtx) {}

    // ------------------------------------------------------------------
    // Record lifecycle.
    // ------------------------------------------------------------------

    /// Current global era (0 for reclaimers that do not track eras).
    #[inline]
    fn global_era(&self) -> u64 {
        0
    }

    /// The stamp a lookup memo must validate cached pointers against, or
    /// `None` when this reclaimer cannot support stamp-validated caching.
    ///
    /// # Contract
    /// Called only *inside* an operation (after [`Smr::begin_op`]). A
    /// returned stamp must satisfy: if the stamp equals the one recorded
    /// when a node pointer was cached (by the same thread, inside an
    /// earlier operation), then no record retired at or after the recorded
    /// stamp's era has been freed in between — so dereferencing the cached
    /// pointer is as safe as it was when it was cached, *without*
    /// re-traversing or re-protecting. That holds exactly for schemes where
    /// (a) a free of a record retired at era `e` requires the reclamation
    /// clock to have advanced past `e`, and (b) the calling thread's
    /// reservation is already visible to every reclaimer at `begin_op`.
    /// Epoch schemes with announce-at-begin (DEBRA, QSBR, RCU) qualify and
    /// return the epoch their current operation is pinned at. The interval
    /// family (IBR, HE, WFE) frees on interval *disjointness* — records die
    /// with no clock advance — and the address/phase families (HP, HP-POP,
    /// NBR, NBR+) and EpochPOP (reservations invisible until pinged) cannot
    /// give the memo a reachability argument, so all of them return `None`
    /// and the memo stays off.
    #[inline]
    fn validation_stamp(&self, _ctx: &mut Self::ThreadCtx) -> Option<u64> {
        None
    }

    /// The thread's node-block recycling [`Magazine`], if this reclaimer
    /// carries one in its context (all workspace reclaimers do). `None`
    /// routes every allocation and free through the global allocator.
    #[inline]
    fn magazine_mut<'a>(&self, _ctx: &'a mut Self::ThreadCtx) -> Option<&'a mut Magazine> {
        None
    }

    /// Allocates a node, stamping its birth era for interval-based schemes.
    ///
    /// When recycling is enabled the block is popped from the thread's
    /// magazine if possible; a fresh birth-era stamp before publication is
    /// what keeps address reuse ABA-safe for the interval-based schemes
    /// (see `recycle`, "Recycling is downstream of safety"). Those schemes
    /// (IBR, HE) override this method and stamp **after** the pop — the pop
    /// happens-after the block's free, so the clock read there is never
    /// older than any era observed while the previous incarnation was being
    /// swept and the re-stamped lifetime can never be mistaken for the old
    /// one. This default keeps the stamp on the stack value: no scheme that
    /// uses it consults birth eras in its reclamation sweep (only the
    /// interval sweeps do), so the cheaper shape is equivalent — and it
    /// keeps the alloc fast path of the epoch/hazard families byte-for-byte
    /// what it was before the interval overrides were tightened.
    fn alloc<T: SmrNode>(&self, ctx: &mut Self::ThreadCtx, mut value: T) -> Shared<T> {
        value.header_mut().set_birth_era(self.global_era());
        let raw = match self.magazine_mut(ctx) {
            Some(mag) => mag.alloc_node(value),
            None => recycle::alloc_node_raw(value),
        };
        // SAFETY: `raw` was just allocated above and is exclusively owned
        // until returned; reading its freshly-written header is sound.
        crate::check::on_node_alloc(raw as usize, unsafe { (*raw).header().birth_era() });
        self.thread_stats_mut(ctx).allocs += 1;
        Shared::from_raw(raw)
    }

    /// Frees a node that was allocated with [`Smr::alloc`] but never published
    /// (e.g. an insert that lost its CAS). Immediate destruction is safe
    /// because no other thread ever saw the pointer, and the block can be
    /// recycled immediately for the same reason.
    ///
    /// # Safety
    /// `ptr` must come from [`Smr::alloc`] on this reclaimer and must never
    /// have been made reachable from the data structure.
    unsafe fn dealloc_unpublished<T: SmrNode>(&self, ctx: &mut Self::ThreadCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        match self.magazine_mut(ctx) {
            Some(mag) => mag.free_node(ptr.as_raw()),
            None => recycle::free_node_raw(ptr.as_raw()),
        }
        self.thread_stats_mut(ctx).allocs = self.thread_stats_mut(ctx).allocs.saturating_sub(1);
    }

    /// Retires an unlinked record for deferred, safe destruction.
    ///
    /// # Safety
    /// `ptr` must be unlinked (unreachable from every root), must have been
    /// allocated via [`Smr::alloc`] (or
    /// [`recycle::alloc_node_raw`](crate::recycle::alloc_node_raw) — the
    /// node-heap ABI), and must be retired exactly once across all threads.
    unsafe fn retire<T: SmrNode>(&self, ctx: &mut Self::ThreadCtx, ptr: Shared<T>);

    /// Attempts to reclaim whatever is provably safe right now (used at
    /// shutdown, between benchmark trials, and by tests).
    fn flush(&self, _ctx: &mut Self::ThreadCtx) {}

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// The thread's counters.
    fn thread_stats(&self, ctx: &Self::ThreadCtx) -> ThreadStats;

    /// Mutable access to the thread's counters (used by default methods).
    fn thread_stats_mut<'a>(&self, ctx: &'a mut Self::ThreadCtx) -> &'a mut ThreadStats;

    /// Number of records currently sitting in the thread's limbo bag.
    fn limbo_len(&self, ctx: &Self::ThreadCtx) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = SmrConfig::default();
        c.validate();
        assert!(c.lo_watermark <= c.hi_watermark);
    }

    #[test]
    fn test_config_is_small() {
        let c = SmrConfig::for_tests();
        c.validate();
        assert!(c.hi_watermark <= 64);
    }

    #[test]
    fn builder_setters_apply() {
        let c = SmrConfig::default()
            .with_max_threads(8)
            .with_watermarks(100, 10)
            .with_max_reservations(3)
            .with_signal_cost_ns(1500)
            .with_epoch_freqs(16, 32);
        assert_eq!(c.max_threads, 8);
        assert_eq!(c.hi_watermark, 100);
        assert_eq!(c.lo_watermark, 10);
        assert_eq!(c.max_reservations, 3);
        assert_eq!(c.signal_cost_ns, 1500);
        assert_eq!(c.epoch_freq, 16);
        assert_eq!(c.empty_freq, 32);
    }

    #[test]
    fn batching_flags_default_on_and_toggle() {
        let c = SmrConfig::default();
        assert!(c.coalesce && c.combine && c.memo);
        assert_eq!(c.retire_batch_cap(), crate::limbo::RETIRE_BATCH_CAP);
        let c = c.with_coalesce(false).with_combine(false).with_memo(false);
        assert!(!c.coalesce && !c.combine && !c.memo);
        assert_eq!(c.retire_batch_cap(), 1);
    }

    #[test]
    #[should_panic(expected = "LoWatermark")]
    fn watermark_order_enforced() {
        let _ = SmrConfig::default().with_watermarks(10, 100);
    }
}
